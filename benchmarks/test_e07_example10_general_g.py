"""E7 — Example 10: non-unimodular and singular reference matrices.

Paper claims:
  1. B class: ``G = [[1,1],[1,-1]]`` is nonsingular but NOT unimodular;
     ``â = (4,2) = 3·(1,1) + 1·(1,-1)`` so ``u = (3,1)``; Theorem 4 gives
     ``(L_i+1)(L_j+1) + 3(L_j+1) + (L_i+1)``.
  2. C class: ``C(i,2i,i+2j-1)`` and ``C(i,2i,i+2j+1)`` are uniformly
     intersecting; ``C(i+1,2i+2,i+2j+1)`` is uniformly generated with them
     but does NOT intersect (Theorem 3); G is singular — pick columns
     (1st, 3rd) and apply Theorem 4: ``(L_i+1)(L_j+1) + (L_i+1)``.
  3. Total objective ``2(L_i+1) + 3(L_j+1)``; optimum ``2L_i = 3L_j + 1``
     (i.e. tile sides in ratio 3:2).
"""

import numpy as np
import pytest

from repro.core import (
    RectangularTile,
    cumulative_footprint_rect,
    cumulative_footprint_size_exact,
    optimize_rectangular,
    partition_references,
    uniformly_generated,
    uniformly_intersecting,
)
from repro.core.cumulative import spread_coefficients
from repro.sim import format_table, simulate_nest

from .paper_programs import example10


def test_u_decomposition(benchmark):
    nest = example10()
    sets = partition_references(nest.accesses)
    bset = next(s for s in sets if s.array == "B")
    u = benchmark(lambda: spread_coefficients(bset))
    assert u.tolist() == [3.0, 1.0]


def test_class_structure(benchmark):
    nest = example10()
    sets = benchmark(lambda: partition_references(nest.accesses))
    shapes = [(s.array, s.size) for s in sets]
    assert shapes == [("A", 1), ("B", 2), ("C", 2), ("C", 1)]
    refs = {repr(a.ref): a.ref for a in nest.accesses}
    c1 = refs["C[i1, 2*i1, i1+2*i2-1]"]
    c2 = refs["C[i1+1, 2*i1+2, i1+2*i2+1]"]
    c3 = refs["C[i1, 2*i1, i1+2*i2+1]"]
    assert uniformly_generated(c1, c2)
    assert not uniformly_intersecting(c1, c2)   # Theorem 3 verdict
    assert uniformly_intersecting(c1, c3)


def test_footprint_expressions(benchmark):
    nest = example10()
    sets = partition_references(nest.accesses)
    bset = next(s for s in sets if s.array == "B")
    cpair = next(s for s in sets if s.array == "C" and s.size == 2)

    def run():
        rows = []
        for sides in ([6, 4], [12, 8], [18, 12]):
            si, sj = sides
            t = RectangularTile(sides)
            b = cumulative_footprint_rect(bset, t)
            c = cumulative_footprint_rect(cpair, t)
            rows.append((tuple(sides), b, si * sj + 3 * sj + si, c, si * sj + si))
        return rows

    rows = benchmark(run)
    for sides, b, b_paper, c, c_paper in rows:
        assert b == b_paper
        assert c == c_paper
    print()
    print(format_table(["sides", "B ours", "B paper", "C ours", "C paper"], rows))


def test_exact_vs_theorem4_nonunimodular(benchmark):
    """The exact lattice union agrees with Theorem 4 up to the dropped
    cross term, even though G is non-unimodular."""
    nest = example10()
    sets = partition_references(nest.accesses)
    bset = next(s for s in sets if s.array == "B")
    t = RectangularTile([18, 12])

    def run():
        return (
            cumulative_footprint_rect(bset, t),
            cumulative_footprint_size_exact(bset, t),
        )

    approx, exact = benchmark(run)
    assert approx - exact == 3 * 1  # the Π|u_i| cross term


def test_optimum_ratio(benchmark):
    """2L_i = 3L_j + 1 → sides ratio 3:2 (grid (2,3) for P=6 on 36x36)."""
    nest = example10()
    res = benchmark(
        lambda: optimize_rectangular(
            partition_references(nest.accesses), nest.space, 6
        )
    )
    assert res.grid == (2, 3)
    assert res.tile.sides.tolist() == [18, 12]
    si, sj = res.tile.sides
    assert 2 * si == 3 * sj  # sides = λ+1 form of 2L_i = 3L_j + 1


def test_simulation_confirms(benchmark):
    nest = example10()

    def run():
        out = {}
        for grid, sides in [((2, 3), [18, 12]), ((6, 1), [6, 36]), ((1, 6), [36, 6]), ((3, 2), [12, 18])]:
            out[grid] = simulate_nest(nest, RectangularTile(sides), 6).total_misses
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out[(2, 3)] == min(out.values())
    print()
    print(format_table(["grid", "total misses"], sorted(out.items())))
