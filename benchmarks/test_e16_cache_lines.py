"""E16 — cache lines > 1 (Section 2.2's closing remark).

"We assume that cache lines are of unit length.  The effect of larger
cache lines can be included as suggested in [6]."  This experiment does
the including: with ``line_size``-element lines along each array's last
dimension,

  * miss counts drop by up to the line factor for contiguous tiles;
  * the optimal aspect ratio shifts toward tiles wide in the contiguous
    dimension (the analytic line-footprint model and the simulator agree
    on the crossover);
  * false sharing appears when two processors write the same line.
"""

import numpy as np
import pytest

from repro.core import (
    AffineRef,
    LoopNest,
    RectangularTile,
    cumulative_line_footprint_exact,
    partition_references,
)
from repro.sim import Machine, MachineConfig, format_table, simulate_nest


def stencil_nest(n=16):
    return LoopNest.from_subscripts(
        {"i": (1, n), "j": (1, n)},
        [
            ("A", [{"i": 1}, {"j": 1}], "write"),
            ("B", [{"i": 1, "": -1}, {"j": 1}], "read"),
            ("B", [{"i": 1, "": 1}, {"j": 1}], "read"),
            ("B", [{"i": 1}, {"j": 1, "": -1}], "read"),
            ("B", [{"i": 1}, {"j": 1, "": 1}], "read"),
        ],
    )


def test_miss_reduction_with_lines(benchmark):
    nest = stencil_nest()
    tile = RectangularTile([4, 16])

    def run():
        rows = []
        for ls in (1, 2, 4, 8):
            r = simulate_nest(nest, tile, 4, line_size=ls)
            rows.append([ls, r.total_misses])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    misses = [r[1] for r in rows]
    assert misses == sorted(misses, reverse=True)
    assert misses[0] / misses[-1] > 3  # close to the 8x line factor
    print()
    print(format_table(["line size", "total misses"], rows))


def test_optimal_shape_shifts(benchmark):
    """Unit lines: square-ish tiles win; long lines: j-wide tiles win."""
    nest = stencil_nest(16)
    tall = RectangularTile([16, 4])
    wide = RectangularTile([4, 16])

    def run():
        out = {}
        for ls in (1, 8):
            out[ls] = (
                simulate_nest(nest, tall, 4, line_size=ls).total_misses,
                simulate_nest(nest, wide, 4, line_size=ls).total_misses,
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    tall1, wide1 = out[1]
    tall8, wide8 = out[8]
    assert tall1 == wide1          # symmetric stencil: shape-neutral at ls=1
    assert wide8 < tall8           # long lines favour contiguous-wide tiles
    print()
    print(format_table(
        ["line size", "tall (16,4)", "wide (4,16)"],
        [[1, tall1, wide1], [8, tall8, wide8]],
    ))


def test_analytic_model_tracks_simulator(benchmark):
    nest = stencil_nest(16)
    sets = partition_references(nest.accesses)
    tile = RectangularTile([4, 16])

    def run():
        rows = []
        for ls in (1, 2, 4):
            pred = sum(
                cumulative_line_footprint_exact(
                    s, tile, ls, origin=nest.space.lower
                )
                for s in sets
            )
            meas = simulate_nest(nest, tile, 4, line_size=ls)
            rows.append([ls, pred, meas.mean_misses_per_processor()])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for ls, pred, meas in rows:
        assert pred == meas, ls
    print()
    print(format_table(["line size", "predicted/proc", "measured/proc"], rows))


def test_false_sharing(benchmark):
    """Cutting inside a line makes two processors write-share it."""
    def run():
        m = Machine(MachineConfig(processors=2, line_size=8))
        # proc 0 writes columns 0-3, proc 1 columns 4-7: same lines.
        for step in range(4):
            m.access(0, "A", (0, step), "write")
            m.access(1, "A", (0, 4 + step), "write")
        return m.directory.stats.invalidations

    inval = benchmark.pedantic(run, rounds=1, iterations=1)
    assert inval >= 7  # ping-pong nearly every access
