"""E27 — dataflow co-partitioning: co vs independent tile selection.

Not a paper figure: this benchmark guards the flow frontend's central
claim.  For a two-statement stencil pipeline whose handoff array ``T``
is consumed with a spread along ``i`` (so mismatched statement grids
force inter-tile traffic), it partitions the program both ways and
replays each on the MSI machine:

* schedule/replay parity holds for both strategies — the line-exact
  communication schedule and the event-level simulator agree on every
  (consumer, processor) distinct-remote-line count;
* co-partitioning moves strictly fewer handoff lines than independent
  partitioning, on both the schedule and the measured replay;
* the co grids are actually aligned (one shared grid), so the win is
  attributable to alignment, not luck.

With ``REPRO_BENCH_REPORTS`` set the numbers land in
``BENCH_flow.json``.
"""

from __future__ import annotations

from repro.flow import build_schedule, compile_flow, partition_flow, simulate_flow

from .reporting import write_bench_report

PROCESSORS = 8
LINE_SIZE = 4

#: Stencil producer feeding a reduction-style consumer whose T-spread is
#: along i only: an unaligned consumer grid pays for every tile row.
PIPELINE = (
    "Doall (i, 0, 31)\n  Doall (j, 0, 7)\n"
    "    T[i, j] = A[i, j] + A[i + 1, j] + A[i, j + 1]\n"
    "  EndDoall\nEndDoall\n"
    "Doall (i, 0, 31)\n  Doall (j, 0, 7)\n"
    "    B[i, j] = T[i, j] + T[i + 1, j] + T[i + 2, j]\n"
    "  EndDoall\nEndDoall\n"
)


def run_flow_bench() -> dict:
    graph = compile_flow(PIPELINE, {})
    rows = {}
    for strategy in ("independent", "co"):
        part = partition_flow(graph, PROCESSORS, strategy=strategy)
        sched = build_schedule(
            graph, part, processors=PROCESSORS, line_size=LINE_SIZE
        )
        sim = simulate_flow(
            graph, part, processors=PROCESSORS, line_size=LINE_SIZE
        )
        rows[strategy] = {
            "grids": sorted({sp.result.grid for sp in part.statements}),
            "candidates_scored": part.candidates_scored,
            "scheduled_lines": sched["totals"]["remote_lines"],
            "scheduled_per_consumer": sched["totals"]["per_consumer"],
            "measured_per_consumer": sim.transfers["per_consumer"],
            "coherence_misses": sum(p.coherence_misses for p in sim.phases),
            "network_messages": sum(p.network_messages for p in sim.phases),
            "digest": sched["digest"],
        }
    return rows


def test_co_partitioning_beats_independent(benchmark):
    rows = benchmark.pedantic(run_flow_bench, rounds=1, iterations=1)
    indep, co = rows["independent"], rows["co"]

    # Parity: the schedule and the replay are independent code paths.
    for row in (indep, co):
        assert row["scheduled_per_consumer"] == row["measured_per_consumer"]

    # The gate: alignment must pay, on the authoritative line-exact
    # counts.  (Analytic proxies are not comparable across strategies —
    # the transfer proxy assumes aligned tiles, which only co guarantees.)
    assert indep["scheduled_lines"] > 0, "pipeline must transfer when misaligned"
    assert co["scheduled_lines"] < indep["scheduled_lines"], rows
    assert len(co["grids"]) == 1, "co must share one grid"
    assert co["candidates_scored"] > 0

    # Anchor the report on the co producer's partition (the schema needs
    # one); the E27 numbers themselves live in ``meta``.
    part = partition_flow(compile_flow(PIPELINE, {}), PROCESSORS, strategy="co")
    write_bench_report(
        "flow",
        processors=PROCESSORS,
        partition=part.statements[0].result,
        program={"program": "flow", "source": "benchmarks/e27", "statements": 2},
        meta={
            "experiment": "E27",
            "line_size": LINE_SIZE,
            "strategies": rows,
            "lines_saved": indep["scheduled_lines"] - co["scheduled_lines"],
        },
    )
