"""E24 — structure-keyed plan cache: solve once per shape, instantiate per request.

Not a paper figure: this benchmark guards the plan-cache claims from the
Sec 3.6 closed-form tier.  A 50-request sweep over one loop *shape* — the
matmul-like nest ``C[i,j] = C[i,j] + A[i,k] + B[k,j]`` at varying N and P
— shares a single structure key, so the plan tier pays one symbolic solve
and then answers every request by O(1) closed-form instantiation:

* every plan answer must match the numeric Theorem-4 optimizer exactly
  (cost and grid) — the tier is an accelerator, not an approximation;
* the warm structure-hit path must beat per-request numeric optimisation
  by ≥ 20× in aggregate over the sweep;
* the sweep itself must be fallback-free (one miss, then all hits).

A second mixed pass runs the paper-example corpus through the same cache
to record the fallback taxonomy — which structures the closed forms
decline and why — so the report shows coverage, not just the happy path.

With ``REPRO_BENCH_REPORTS`` set the numbers land in
``BENCH_plan_cache.json``.
"""

from __future__ import annotations

import time

from repro.core import partition_references
from repro.core.optimize import optimize_rectangular
from repro.core.plan import PlanCache, plan_optimize, structure_key
from repro.lang import compile_nest

from .paper_programs import example2, example3, example6, example8
from .reporting import write_bench_report

REQUESTS = 50
MIN_PLAN_SPEEDUP = 20.0

MATMUL_SOURCE = """
Doall (i, 1, N)
  Doall (j, 1, N)
    Doall (k, 1, N)
      C[i,j] = C[i,j] + A[i,k] + B[k,j]
    EndDoall
  EndDoall
EndDoall
"""

#: Processor counts cycled across the sweep — each pairs with several N.
SWEEP_PS = [4, 8, 16, 6, 12]


def _family_variants(requests: int = REQUESTS) -> list[tuple]:
    """The 50-request sweep: one structure, many (N, P) instantiations."""
    variants = []
    for k in range(requests):
        n = 16 + 2 * (k % 10)
        p = SWEEP_PS[k % len(SWEEP_PS)]
        nest = compile_nest(MATMUL_SOURCE, bindings={"N": n})
        variants.append((nest, partition_references(nest.accesses), p))
    return variants


def run_plan_bench() -> dict:
    variants = _family_variants()

    # One structure key across the whole sweep — that is the family claim.
    keys = {structure_key(sets, nest.space.depth) for nest, sets, p in variants}
    assert len(keys) == 1, f"sweep spans {len(keys)} structures, expected 1"

    # Numeric baseline: per-request Theorem-4 optimisation, no plan tier.
    t0 = time.perf_counter()
    numeric = [
        optimize_rectangular(sets, nest.space, p, scoring="theorem4")
        for nest, sets, p in variants
    ]
    numeric_s = time.perf_counter() - t0

    # Plan path: pay the one symbolic solve up front, then time the warm
    # structure-hit sweep — the per-request cost a steady-state server sees.
    cache = PlanCache()
    nest0, sets0, p0 = variants[0]
    t0 = time.perf_counter()
    optimize_rectangular(sets0, nest0.space, p0, scoring="theorem4", plan_cache=cache)
    solve_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    plan = [
        optimize_rectangular(sets, nest.space, p, scoring="theorem4", plan_cache=cache)
        for nest, sets, p in variants
    ]
    plan_s = time.perf_counter() - t0

    mismatches = [
        {
            "request": i,
            "numeric": {"cost": num.predicted_cost, "grid": list(num.grid)},
            "plan": {"cost": pl.predicted_cost, "grid": list(pl.grid)},
        }
        for i, (num, pl) in enumerate(zip(numeric, plan))
        if num.predicted_cost != pl.predicted_cost or tuple(num.grid) != tuple(pl.grid)
    ]
    sweep_stats = cache.stats()

    # Mixed corpus: the paper examples exercise other structure classes;
    # whatever the closed forms decline lands in the fallback taxonomy.
    taxonomy_cache = PlanCache()
    corpus = [
        ("example2", example2(), 100),
        ("example3", example3(36), 9),
        ("example6", example6(), 25),
        ("example8", example8(24), 8),
    ]
    corpus_outcomes = {}
    for label, nest, p in corpus:
        sets = partition_references(nest.accesses)
        result = plan_optimize(sets, nest.space, p, cache=taxonomy_cache)
        corpus_outcomes[label] = "plan" if result is not None else "fallback"

    return {
        "workload": f"matmul family, {REQUESTS} requests, N in 16..34, P in {SWEEP_PS}",
        "requests": REQUESTS,
        "distinct_structures": len(keys),
        "numeric_total_s": numeric_s,
        "plan_solve_s": solve_s,
        "plan_warm_total_s": plan_s,
        "numeric_per_request_ms": numeric_s / REQUESTS * 1000,
        "plan_per_request_ms": plan_s / REQUESTS * 1000,
        "warm_hit_speedup": numeric_s / plan_s,
        "mismatches": mismatches,
        "sweep_cache": sweep_stats,
        "corpus_outcomes": corpus_outcomes,
        "corpus_cache": taxonomy_cache.stats(),
        "corpus_fallback_reasons": dict(taxonomy_cache.fallback_reasons()),
    }


def test_plan_cache_speedup(benchmark):
    results = benchmark.pedantic(run_plan_bench, rounds=1, iterations=1)

    # Exact parity on every request: the plan tier may never change answers.
    assert not results["mismatches"], results["mismatches"]
    # The family sweep is one miss then all hits, no fallbacks.
    assert results["sweep_cache"]["entries"] == 1, results["sweep_cache"]
    assert results["sweep_cache"]["fallbacks"] == 0, results["sweep_cache"]
    assert results["sweep_cache"]["hits"] >= results["requests"], results["sweep_cache"]
    # The headline claim: warm structure hits beat numeric by ≥ 20×.
    assert results["warm_hit_speedup"] >= MIN_PLAN_SPEEDUP, results

    from repro.core import estimate_traffic

    nest = compile_nest(MATMUL_SOURCE, bindings={"N": 32})
    sets = partition_references(nest.accesses)
    opt = optimize_rectangular(sets, nest.space, 16, scoring="theorem4")
    write_bench_report(
        "plan_cache",
        processors=16,
        estimate=estimate_traffic(sets, opt.tile),
        program={
            "workload": results["workload"],
            "source": "C[i,j] = C[i,j] + A[i,k] + B[k,j]",
        },
        meta={
            "plan_cache": results,
            "required_min_speedup": MIN_PLAN_SPEEDUP,
        },
    )


def test_plan_cache_smoke():
    """Marker-free quick check for CI's timing guard: one solve, one hit,
    exact parity against the numeric optimizer, no wall-clock assertions."""
    nest = compile_nest(MATMUL_SOURCE, bindings={"N": 16})
    sets = partition_references(nest.accesses)
    cache = PlanCache()
    first = optimize_rectangular(sets, nest.space, 8, scoring="theorem4", plan_cache=cache)
    second = optimize_rectangular(sets, nest.space, 8, scoring="theorem4", plan_cache=cache)
    numeric = optimize_rectangular(sets, nest.space, 8, scoring="theorem4")
    assert first.predicted_cost == numeric.predicted_cost
    assert tuple(first.grid) == tuple(numeric.grid)
    assert second.predicted_cost == first.predicted_cost
    assert cache.stats()["hits"] >= 1
    assert cache.stats()["fallbacks"] == 0
