"""E4 — Example 8: the 2:3:4 rectangular optimum and the Abraham-Hudak
equivalence.

Paper claims:
  * cumulative footprint of B = ``L_iL_jL_k + 2L_jL_k + 3L_iL_k + 4L_iL_j``;
  * minimised at ``L_i : L_j : L_k :: 2 : 3 : 4``;
  * "Abraham and Hudak's algorithm gives an identical partition."

Regenerated: the Lagrange optimum, the integer grid search, the A&H
baseline, and a figure-style aspect-ratio sweep (simulated misses per
grid) whose minimum falls on the chosen grid.
"""

import numpy as np
import pytest

from repro.baselines.abraham_hudak import abraham_hudak_partition
from repro.core import (
    RectangularTile,
    optimize_rectangular,
    partition_references,
)
from repro.core.optimize import factorizations
from repro.lang import compile_nest
from repro.sim import format_table, simulate_nest

from .paper_programs import example8


def ah_variant(n=24):
    """Example 8 body with B renamed to A so it fits A&H's single-array,
    G = I domain (the paper compares in that domain)."""
    return compile_nest(
        """
        Doall (i, 1, N)
         Doall (j, 1, N)
          Doall (k, 1, N)
           A(i,j,k) = A(i-1,j,k+1) + A(i,j+1,k) + A(i+1,j-2,k-3)
          EndDoall
         EndDoall
        EndDoall
        """,
        {"N": n},
    )


def test_continuous_ratio(benchmark):
    nest = example8()
    sets = partition_references(nest.accesses)
    res = benchmark(lambda: optimize_rectangular(sets, nest.space, 8))
    c = res.continuous_sides
    assert c[0] / 2 == pytest.approx(c[1] / 3)
    assert c[1] / 3 == pytest.approx(c[2] / 4)
    assert res.coefficients.tolist() == [2.0, 3.0, 4.0]


def test_footprint_expression(benchmark):
    """B's Theorem-4 footprint == the paper's polynomial."""
    from repro.core import cumulative_footprint_rect

    nest = example8()
    bset = next(s for s in partition_references(nest.accesses) if s.array == "B")

    def run():
        rows = []
        for sides in ([12, 12, 12], [24, 12, 6], [6, 12, 24], [8, 12, 18]):
            si, sj, sk = sides
            paper = si * sj * sk + 2 * sj * sk + 3 * si * sk + 4 * si * sj
            got = cumulative_footprint_rect(bset, RectangularTile(sides))
            rows.append((tuple(sides), paper, got))
        return rows

    rows = benchmark(run)
    for sides, paper, got in rows:
        assert got == paper, sides


def test_abraham_hudak_identical(benchmark):
    nest = ah_variant()
    def run():
        ah = abraham_hudak_partition(nest, 8)
        fw = optimize_rectangular(partition_references(nest.accesses), nest.space, 8)
        return ah, fw

    ah, fw = benchmark(run)
    assert ah.grid == fw.grid == (2, 2, 2)
    assert ah.tile.sides.tolist() == fw.tile.sides.tolist() == [12, 12, 12]


def test_aspect_ratio_sweep_minimum(benchmark):
    """Figure-style series: simulated misses per processor grid; the
    framework's grid is the global minimum."""
    nest = example8(12)
    p = 8

    def run():
        rows = []
        for grid in factorizations(p, 3):
            if any(g > 12 for g in grid):
                continue
            sides = [-(-12 // g) for g in grid]
            r = simulate_nest(nest, RectangularTile(sides), p)
            rows.append((grid, tuple(sides), r.total_misses))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    best = min(rows, key=lambda t: t[2])
    chosen = optimize_rectangular(
        partition_references(nest.accesses), nest.space, p
    )
    assert best[0] == chosen.grid == (2, 2, 2)
    print()
    print(format_table(["grid", "tile sides", "simulated total misses"], rows))
