"""E10 — Figure 11 / Appendix A: matmul with fine-grain synchronization.

Paper claims:
  * Section 1: "matrix multiply distributed to the processors by square
    blocks has a much higher degree of reuse than ... by rows or columns";
  * Section 2.1: matmul does not fit Abraham & Hudak's restrictions;
  * Appendix A: the ``l$`` accumulates "are both treated as writes by the
    coherence system" — modelled as slightly more expensive communication.

Regenerated: simulated misses for block vs row vs column partitions of
the Figure 11 nest; the framework picks a k-uncut block grid (keeping C
private); cutting k instead triggers invalidation ping-pong.
"""

import pytest

from repro.baselines.abraham_hudak import abraham_hudak_partition
from repro.core import LoopPartitioner, RectangularTile
from repro.exceptions import PartitionError
from repro.sim import format_table, simulate_nest

from .paper_programs import matmul_sync

N = 8
P = 4

PARTITIONS = {
    "blocks (2,2,1)": [4, 4, 8],
    "rows (4,1,1)": [2, 8, 8],
    "cols (1,4,1)": [8, 2, 8],
    "k-cut (1,1,4)": [8, 8, 2],
}


def test_blocks_beat_strips(benchmark):
    nest = matmul_sync(N)

    def run():
        return {
            name: simulate_nest(nest, RectangularTile(sides), P)
            for name, sides in PARTITIONS.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    blocks = results["blocks (2,2,1)"]
    assert blocks.total_misses < results["rows (4,1,1)"].total_misses
    assert blocks.total_misses < results["cols (1,4,1)"].total_misses
    assert blocks.total_misses < results["k-cut (1,1,4)"].total_misses
    rows = [
        [name, r.total_misses, r.invalidations, r.shared_elements.get("C", 0)]
        for name, r in results.items()
    ]
    print()
    print(format_table(["partition", "total misses", "invalidations", "shared C"], rows))


def test_framework_picks_blocks(benchmark):
    nest = matmul_sync(N)
    part = benchmark(lambda: LoopPartitioner(nest, P).partition())
    assert part.grid is not None
    assert part.grid[2] == 1  # never cut k: C stays private
    assert sorted(part.grid[:2]) == [2, 2]
    r = simulate_nest(nest, part.tile, P)
    assert r.shared_elements["C"] == 0
    assert r.invalidations == 0


def test_k_cut_causes_invalidations(benchmark):
    nest = matmul_sync(N)
    r = benchmark.pedantic(
        lambda: simulate_nest(nest, RectangularTile([8, 8, 2]), P),
        rounds=1,
        iterations=1,
    )
    assert r.shared_elements["C"] == N * N
    assert r.invalidations > 0
    assert r.coherence_misses > 0


def test_outside_abraham_hudak_domain(benchmark):
    """Section 2.1's complaint about prior work, mechanically."""
    nest = matmul_sync(N)

    def run():
        try:
            abraham_hudak_partition(nest, P)
            return False
        except PartitionError:
            return True

    assert benchmark(run)


def test_sync_counted_as_writes(benchmark):
    nest = matmul_sync(N)
    r = benchmark.pedantic(
        lambda: simulate_nest(nest, RectangularTile([4, 4, 8]), P),
        rounds=1,
        iterations=1,
    )
    writes = sum(p.write_misses + p.write_upgrades for p in r.processors)
    assert writes > 0  # the l$C accumulates took the write path
    for p in r.processors:
        # each processor writes its own 4x4 C block once (then hits)
        assert p.footprint["C"] == 16
