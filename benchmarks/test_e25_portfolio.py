"""E25 — optimizer portfolio: SLSQP + simulated annealing over Theorem 2.

Not a paper figure: this benchmark guards the parallelepiped portfolio
claims.  For each paper program it runs the Theorem-2 optimizer three
ways — SLSQP-alone, anneal-alone, and the full portfolio — and records
objectives and per-member latency:

* the portfolio is never Theorem-2-costlier than either member alone or
  the rectangular baseline (the merge keeps the cheapest *feasible*
  candidate, rectangular diagonal included);
* on at least one paper program where SLSQP previously fell back — the
  pinned witness is Example 8's 2:3:4 stencil at N=24, P=500, where
  SLSQP's continuous optimum has no feasible integer rounding and the
  pre-portfolio optimizer raised ``OptimizationError`` — the anneal
  member (and hence the portfolio) must win with a *strictly lower*
  objective than SLSQP-alone delivers;
* every reported improvement is >= 0.

With ``REPRO_BENCH_REPORTS`` set the numbers land in
``BENCH_portfolio.json``.
"""

from __future__ import annotations

import numpy as np

from repro.core import partition_references
from repro.core.optimize import optimize_parallelepiped
from repro.exceptions import OptimizationError, SingularMatrixError

from .paper_programs import example3, example6, example8, example9, example10, figure9
from .reporting import write_bench_report

#: (label, nest factory args, processors).  The last entry is the pinned
#: SLSQP-fallback witness: at N=24, P=500 the continuous SLSQP optimum
#: cannot be rounded to a feasible integer tile.
PROGRAMS = [
    ("example3", lambda: example3(36), 16),
    ("example6", lambda: example6(), 25),
    ("example8", lambda: example8(24), 8),
    ("example9", lambda: example9(36), 16),
    ("example10", lambda: example10(36), 16),
    ("figure9", lambda: figure9(8), 8),
    ("example8_p500", lambda: example8(24), 500),
]

FALLBACK_WITNESS = "example8_p500"


def _run_variant(uisets, nest, processors, members=None):
    kwargs = {"members": members} if members else {}
    try:
        return optimize_parallelepiped(
            uisets,
            nest.space.volume / processors,
            depth=nest.depth,
            max_extents=nest.space.extents,
            **kwargs,
        )
    except (OptimizationError, SingularMatrixError):
        return None


def run_portfolio_bench() -> dict:
    rows = {}
    for label, make, processors in PROGRAMS:
        nest = make()
        uisets = partition_references(nest.accesses)
        slsqp = _run_variant(uisets, nest, processors, members=("slsqp",))
        anneal = _run_variant(uisets, nest, processors, members=("anneal",))
        full = _run_variant(uisets, nest, processors)
        row = {"processors": processors}
        for name, res in (("slsqp", slsqp), ("anneal", anneal), ("portfolio", full)):
            if res is None:
                row[name] = None
                continue
            row[name] = {
                "objective": float(res.objective),
                "rectangular_objective": float(res.rectangular_objective),
                "improvement": float(res.improvement),
                "winner": res.winner,
                "member_seconds": dict(res.member_seconds),
                "tile_det": abs(float(np.linalg.det(res.tile.l_matrix.astype(float)))),
            }
        rows[label] = row
    return rows


def _check_portfolio_dominates(rows: dict) -> list[str]:
    problems = []
    for label, row in rows.items():
        full = row["portfolio"]
        if full is None:
            continue
        if full["improvement"] < 0:
            problems.append(f"{label}: improvement {full['improvement']} < 0")
        if full["objective"] > full["rectangular_objective"] * (1 + 1e-9) + 1e-9:
            problems.append(
                f"{label}: portfolio {full['objective']} costlier than "
                f"rectangular {full['rectangular_objective']}"
            )
        for member in ("slsqp", "anneal"):
            alone = row[member]
            if alone is not None and full["objective"] > alone["objective"] * (1 + 1e-9) + 1e-9:
                problems.append(
                    f"{label}: portfolio {full['objective']} costlier than "
                    f"{member}-alone {alone['objective']}"
                )
    return problems


def test_portfolio_never_loses_and_rescues_fallback(benchmark):
    rows = benchmark.pedantic(run_portfolio_bench, rounds=1, iterations=1)

    problems = _check_portfolio_dominates(rows)
    assert not problems, problems

    # The gate: on the pinned program where SLSQP previously fell back
    # (the pre-portfolio code raised — no integer rounding of its
    # continuous optimum exists), anneal and the portfolio must beat what
    # SLSQP-alone now delivers, strictly.
    witness = rows[FALLBACK_WITNESS]
    assert witness["slsqp"] is not None and witness["portfolio"] is not None
    assert witness["slsqp"]["winner"] == "rectangular", (
        "witness drifted: SLSQP found a roundable optimum",
        witness["slsqp"],
    )
    assert witness["portfolio"]["objective"] < witness["slsqp"]["objective"], witness
    assert witness["anneal"]["objective"] < witness["slsqp"]["objective"], witness
    assert witness["portfolio"]["winner"] == "anneal", witness

    from repro.core import estimate_traffic

    label, make, processors = PROGRAMS[-1]
    nest = make()
    uisets = partition_references(nest.accesses)
    full = _run_variant(uisets, nest, processors)
    write_bench_report(
        "portfolio",
        processors=500,
        estimate=estimate_traffic(uisets, full.tile),
        program={
            "workload": "paper-program portfolio sweep "
            f"({len(PROGRAMS)} programs; witness {FALLBACK_WITNESS})",
            "source": "B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)",
        },
        meta={
            "portfolio": rows,
            "fallback_witness": FALLBACK_WITNESS,
        },
    )


def test_portfolio_smoke():
    """Marker-free quick check for CI's timing guard: the witness program
    alone — portfolio feasible, strictly beating SLSQP-alone, no
    wall-clock assertions."""
    label, make, processors = PROGRAMS[-1]
    assert label == FALLBACK_WITNESS
    nest = make()
    uisets = partition_references(nest.accesses)
    slsqp = _run_variant(uisets, nest, processors, members=("slsqp",))
    full = _run_variant(uisets, nest, processors)
    assert slsqp is not None and full is not None
    assert slsqp.winner == "rectangular"  # SLSQP optimum unroundable here
    assert full.objective < slsqp.objective
    assert full.improvement >= 0.0
