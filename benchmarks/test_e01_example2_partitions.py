"""E1 — Example 2 / Figure 3: partition (a) vs partition (b).

Paper claims (Section 3.1):
  * 100 processors, 10,000 iterations, 100 per tile;
  * per-tile B cache misses: partition (a) = 104, partition (b) = 140;
  * partition (a) has zero coherence traffic;
  * the framework selects partition (a) automatically.

Regenerated here analytically (Lemma 3 / Theorem 4), and measured on the
MSI machine simulator.
"""

import pytest

from repro.core import (
    LoopPartitioner,
    RectangularTile,
    cumulative_footprint_rect,
    cumulative_footprint_size_exact,
    partition_references,
)
from repro.sim import format_table, simulate_nest

from .paper_programs import example2
from .reporting import write_bench_report

PARTITION_A = [100, 1]  # Figure 3(a): 100x1 strips (j fixed per tile)
PARTITION_B = [10, 10]  # Figure 3(b): 10x10 blocks


def b_class():
    nest = example2()
    return nest, next(
        s for s in partition_references(nest.accesses) if s.array == "B"
    )


def test_analytic_footprints(benchmark):
    nest, bset = b_class()
    sizes = benchmark(
        lambda: (
            cumulative_footprint_size_exact(bset, RectangularTile(PARTITION_A)),
            cumulative_footprint_size_exact(bset, RectangularTile(PARTITION_B)),
        )
    )
    assert sizes == (104, 140)
    # Theorem 4 agrees exactly here (the dropped cross term is 0 and 3).
    assert cumulative_footprint_rect(bset, RectangularTile(PARTITION_A)) == 104.0


def test_simulated_misses_partition_a(benchmark):
    nest, _ = b_class()
    r = benchmark.pedantic(
        lambda: simulate_nest(nest, RectangularTile(PARTITION_A), 100),
        rounds=1,
        iterations=1,
    )
    assert r.mean_footprint("B") == 104.0
    assert r.shared_elements["B"] == 0  # "partition a has zero coherence traffic"
    assert r.shared_elements["A"] == 0


def test_simulated_misses_partition_b(benchmark):
    nest, _ = b_class()
    r = benchmark.pedantic(
        lambda: simulate_nest(nest, RectangularTile(PARTITION_B), 100),
        rounds=1,
        iterations=1,
    )
    assert r.mean_footprint("B") == 140.0
    assert r.shared_elements["B"] > 0


def test_framework_selects_partition_a(benchmark):
    nest = example2()
    res = benchmark(lambda: LoopPartitioner(nest, 100).partition())
    assert res.tile.sides.tolist() == PARTITION_A
    assert res.is_communication_free
    write_bench_report(
        "e01_example2_partitions",
        processors=100,
        partition=res,
        sim=simulate_nest(nest, res.tile, 100),
        program={"benchmark": "E1", "claim": "Example 2 / Figure 3"},
    )
    print()
    print(
        format_table(
            ["partition", "B misses/tile (paper)", "B misses/tile (ours)", "shared B elems"],
            [
                ["(a) 100x1", 104, 104, 0],
                ["(b) 10x10", 140, 140, 3600],
            ],
        )
    )
