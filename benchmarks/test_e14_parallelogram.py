"""E14 — Example 3: parallelogram tiles beat every rectangle.

Paper claim: "For Example 3, parallelogram tiles result in a lower cost
of memory access compared to any rectangular partition since most of the
inter iteration communication is internalized to within a processor."

Regenerated three ways:
  1. the Theorem-2 objective at the optimizer's parallelogram vs the best
     rectangle (continuous);
  2. exact footprints of an integer skewed tile vs the best rectangle of
     equal volume;
  3. simulated per-processor misses under both tilings.
"""

import numpy as np
import pytest

from repro.core import (
    ParallelepipedTile,
    RectangularTile,
    estimate_traffic,
    optimize_parallelepiped,
    optimize_rectangular,
    partition_references,
)
from repro.sim import format_table, simulate_nest

from .paper_programs import example3


def test_continuous_optimizer_improvement(benchmark):
    nest = example3(36)
    sets = partition_references(nest.accesses)
    res = benchmark(
        lambda: optimize_parallelepiped(
            sets, volume=36 * 36 / 4, max_extents=nest.space.extents, seed=1
        )
    )
    assert res.objective < res.rectangular_objective
    assert res.improvement > 0.03
    # The winning tile's long edge is aligned with the spread â = (1,3).
    lm = res.l_matrix
    rows = lm / np.linalg.norm(lm, axis=1, keepdims=True)
    target = np.array([1, 3]) / np.sqrt(10)
    assert max(abs(rows @ target)) > 0.97


def test_exact_footprints_skew_vs_rect(benchmark):
    """Integer tiles of equal volume: skewed tile along (1,3) has a
    smaller cumulative footprint than any same-volume rectangle."""
    from repro.core import cumulative_footprint_size_exact

    nest = example3(36)
    sets = partition_references(nest.accesses)
    skew = ParallelepipedTile([[12, 36], [9, 0]])  # volume 324, row ∝ (1,3)

    def run():
        # Half-open tiles: every candidate holds exactly 324 iterations,
        # so per-tile footprints are directly comparable.
        skew_cost = sum(
            cumulative_footprint_size_exact(s, skew, closed=False) for s in sets
        )
        rect_costs = {}
        for sides in ([18, 18], [9, 36], [36, 9], [12, 27], [27, 12]):
            t = RectangularTile(sides)
            rect_costs[tuple(sides)] = sum(
                cumulative_footprint_size_exact(s, t) for s in sets
            )
        return skew_cost, rect_costs

    skew_cost, rect_costs = benchmark.pedantic(run, rounds=1, iterations=1)
    # Footprints are per-tile; volumes equal (324), so comparable.
    best_rect = min(rect_costs.values())
    assert skew_cost < best_rect
    rows = [["skew [[12,36],[9,0]]", skew_cost]] + [
        [str(k), v] for k, v in rect_costs.items()
    ]
    print()
    print(format_table(["tile", "per-tile footprint"], rows))


def test_simulated_misses_skew_vs_rect(benchmark):
    nest = example3(36)
    skew = ParallelepipedTile([[12, 36], [9, 0]])
    rect = RectangularTile([18, 18])

    def run():
        s = simulate_nest(nest, skew, 4)
        r = simulate_nest(nest, rect, 4)
        return s, r

    s, r = benchmark.pedantic(run, rounds=1, iterations=1)
    assert s.total_misses < r.total_misses
    # Sharing internalized: fewer B elements touched by 2+ processors.
    assert s.shared_elements["B"] < r.shared_elements["B"]


def test_rectangular_baseline_for_reference(benchmark):
    nest = example3(36)
    sets = partition_references(nest.accesses)
    res = benchmark(lambda: optimize_rectangular(sets, nest.space, 4))
    # With â = (1,3), rectangles cut i finely: grid (4,1) or (2,2).
    assert res.coefficients.tolist() == [1.0, 3.0]
