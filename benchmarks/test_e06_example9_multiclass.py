"""E6 — Example 9: multiple uniformly intersecting classes add.

Paper setup: ``A(i,j) = B(i-2,j) + B(i,j-1) + C(i+j,j) + C(i+j+1,j+3)``,
rectangular tiles (``L12 = L21 = 0``).

Paper expressions (its own determinants):
  * B class: ``L11·L22 + 2·L22 + 1·L11``;
  * C class: ``L11·L22 + 2·L22 + 3·L11``;
  * total  : ``2·L11·L22 + 4·L11 + 4·L22``.

**Erratum**: the paper's prose then states "simplifies to
``2L11L22 + 4L11 + 6L22``" and "optimal ... ``4L11 = 6L22``", which is
inconsistent with its own displayed determinant expressions.  Following
the determinants (and Theorems 2/4, and the exact union), the total is
``2L11L22 + 4L11 + 4L22`` and the optimum is ``L11 = L22``.  We reproduce
the determinant expressions exactly and record the discrepancy.
"""

import pytest

from repro.core import (
    RectangularTile,
    cumulative_footprint_rect,
    optimize_rectangular,
    partition_references,
)
from repro.core.optimize import rect_cost_coefficients
from repro.sim import format_table, simulate_nest

from .paper_programs import example9


def classes():
    nest = example9()
    sets = partition_references(nest.accesses)
    return nest, {s.array: s for s in sets}


def test_per_class_expressions(benchmark):
    nest, by = classes()

    def run():
        rows = []
        for sides in ([6, 6], [12, 6], [6, 12], [9, 4]):
            s1, s2 = sides
            t = RectangularTile(sides)
            b = cumulative_footprint_rect(by["B"], t)
            c = cumulative_footprint_rect(by["C"], t)
            rows.append((tuple(sides), b, s1 * s2 + 2 * s2 + s1, c, s1 * s2 + 2 * s2 + 3 * s1))
        return rows

    rows = benchmark(run)
    for sides, b, b_paper, c, c_paper in rows:
        assert b == b_paper, ("B", sides)
        assert c == c_paper, ("C", sides)
    print()
    print(format_table(["sides", "B (ours)", "B (paper det)", "C (ours)", "C (paper det)"], rows))


def test_total_coefficients_and_erratum(benchmark):
    nest, _ = classes()
    coeffs = benchmark(
        lambda: rect_cost_coefficients(partition_references(nest.accesses), 2)
    )
    # Following the paper's own determinant expressions: 4 L11 + 4 L22.
    assert coeffs.tolist() == [4.0, 4.0]
    # The prose claim 4L11 = 6L22 would need coefficients (4, 6) — it does
    # not follow from the determinants above (paper erratum, see module
    # docstring).


def test_optimum_square(benchmark):
    nest, _ = classes()
    res = benchmark(
        lambda: optimize_rectangular(
            partition_references(nest.accesses), nest.space, 9
        )
    )
    # coefficients (4,4) -> L11 = L22
    assert res.grid == (3, 3)
    assert res.tile.sides.tolist() == [12, 12]


def test_simulation_confirms_square(benchmark):
    """Simulated misses across grids: the square grid wins."""
    nest, _ = classes()

    def run():
        out = {}
        for grid, sides in [((3, 3), [12, 12]), ((9, 1), [4, 36]), ((1, 9), [36, 4])]:
            r = simulate_nest(nest, RectangularTile(sides), 9)
            out[grid] = r.total_misses
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out[(3, 3)] == min(out.values())
