"""E15 — ablations of the design choices DESIGN.md calls out.

Not a paper table: each ablation removes one ingredient of our
implementation and shows what breaks, quantifying why the ingredient is
there.

  A. **write-sharing (kernel) penalty** in the rectangular score: without
     it, matmul's footprint model ties the k-cut and block grids and the
     partitioner can pick a grid with 2x the measured misses.
  B. **exact vs Theorem-4 scoring**: on every paper example the cheaper
     Theorem-4 scoring selects the same grid as exact scoring (that is
     why it is the default).
  C. **cache spread â vs data spread a⁺**: identical for ≤3 references
     per class (the paper's examples), diverging beyond — data
     partitioning pays for every copy.
  D. **column reduction**: without the Section 3.4.1 reduction the
     Theorem-4 path simply has no answer for singular G (Example 10's C
     class) — the exact-union fallback agrees with the reduced closed
     form, so reduction costs nothing.
"""

import numpy as np
import pytest

from repro.core import (
    AffineRef,
    RectangularTile,
    optimize_rectangular,
    partition_references,
)
from repro.core.cumulative import (
    cumulative_footprint_rect,
    cumulative_footprint_size_exact,
    spread_coefficients,
)
from repro.core.datapart import data_spread_coefficients
from repro.core.optimize import factorizations
from repro.sim import format_table, simulate_nest

from .paper_programs import example8, example10, matmul_sync


def test_ablation_a_sharing_penalty(benchmark):
    """Footprints alone cannot rank matmul grids; the penalty can."""
    nest = matmul_sync(8)
    sets = partition_references(nest.accesses)

    def run():
        rows = []
        # Both grids have per-tile footprint 80: (2,2,1) -> C:16+A:32+B:32,
        # (1,2,2) -> C:32+A:32+B:16 — but the latter cuts k, write-sharing C.
        for grid in [(2, 2, 1), (1, 2, 2)]:
            sides = [-(-8 // g) for g in grid]
            tile = RectangularTile(sides)
            fp = sum(cumulative_footprint_size_exact(s, tile) for s in sets)
            sim = simulate_nest(nest, tile, 4)
            rows.append([grid, fp, sim.total_misses])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    (g1, fp1, m1), (g2, fp2, m2) = rows
    assert fp1 == fp2          # footprint model is blind to the difference
    assert m1 < m2             # the machine is not
    # The full optimizer (with the penalty) picks the right grid:
    res = optimize_rectangular(sets, nest.space, 4)
    assert res.grid == (2, 2, 1)
    print()
    print(format_table(["grid", "footprint/tile", "simulated misses"], rows))


@pytest.mark.parametrize("maker,p", [(example8, 8), (example10, 6)])
def test_ablation_b_scoring_method(benchmark, maker, p):
    """Theorem-4 scoring and exact scoring select the same grid."""
    nest = maker()
    sets = partition_references(nest.accesses)

    def run():
        t4 = optimize_rectangular(sets, nest.space, p, scoring="theorem4")
        ex = optimize_rectangular(sets, nest.space, p, scoring="exact")
        return t4, ex

    t4, ex = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t4.grid == ex.grid
    assert t4.tile.sides.tolist() == ex.tile.sides.tolist()


def test_ablation_c_spread_vs_cumulative_spread(benchmark):
    """â == a⁺ up to 3 members; beyond that they diverge."""
    I2 = np.eye(2, dtype=np.int64)

    def run():
        rows = []
        for offsets in (
            [[0, 0], [4, 0]],
            [[0, 0], [2, 0], [4, 0]],
            [[0, 0], [1, 0], [2, 0], [9, 0]],
            [[0, 0], [1, 0], [2, 0], [3, 0], [9, 0]],
        ):
            s = partition_references([AffineRef("B", I2, o) for o in offsets])[0]
            a_hat = spread_coefficients(s)[0]
            a_plus = data_spread_coefficients(s)[0]
            rows.append([len(offsets), a_hat, a_plus])
        return rows

    rows = benchmark(run)
    assert rows[0][1] == rows[0][2]
    assert rows[1][1] == rows[1][2]
    assert rows[2][2] > rows[2][1]
    assert rows[3][2] > rows[3][1]
    print()
    print(format_table(["#refs", "cache spread â", "data spread a⁺"], rows))


def test_ablation_d_column_reduction(benchmark):
    """Example 10's C class: reduced Theorem 4 == exact union; the
    unreduced G is singular and Theorem 4 would be undefined."""
    nest = example10()
    sets = partition_references(nest.accesses)
    cpair = next(s for s in sets if s.array == "C" and s.size == 2)

    def run():
        rows = []
        for sides in ([6, 4], [12, 8], [18, 12]):
            t = RectangularTile(sides)
            red = cumulative_footprint_rect(cpair, t)     # via reduction
            exact = cumulative_footprint_size_exact(cpair, t)
            rows.append([tuple(sides), red, exact])
        return rows

    rows = benchmark(run)
    for sides, red, exact in rows:
        assert red == exact  # u=(0,1): no dropped cross term here
    # the unreduced matrix really is singular
    from repro._util import int_rank

    assert int_rank(cpair.g[:, :2]) == 1
