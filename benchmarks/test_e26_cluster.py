"""E26 — cluster serving: shard-affine routing, failover, replica scaling.

Not a paper figure: this benchmark guards the PR-9 cluster-tier claims
over real sockets (router subprocess + N server subprocesses):

* responses through the router are *identical* (timings aside) to a
  single directly-driven server — the router is a pass-through, not a
  reimplementation;
* a full cluster load pass completes with zero dropped or errored
  requests, and the per-shard request counts show rendezvous hashing
  actually spreading the key space;
* hard-killing a replica mid-run loses nothing: the router fails the
  in-flight forward over to a survivor and re-hashes the dead shard's
  keys, so every client request still succeeds;
* (on machines with >= 4 CPUs) warm steady-state throughput scales
  >= 2.5x from 1 replica to 4 — the shard-affinity design point: each
  replica's response LRU serves only its own key range, so adding
  replicas adds independent cache capacity and event loops.

With ``REPRO_BENCH_REPORTS`` set the numbers land in
``BENCH_cluster.json``, including per-shard throughput and latency
tails (p50/p95/p99) and the plan/response cache hit rates per replica.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs import parse_prometheus_text
from repro.serve import EmbeddedServer, ServeClient, ServeConfig, spawn_cluster
from repro.serve.loadgen import _shard_deltas, cluster_shard_stats, run_loadgen

from .reporting import write_bench_report

MIN_SCALING_1_TO_4 = 2.5

STENCIL = (
    "Doall (i, 1, N)\n"
    "  Doall (j, 1, N)\n"
    "    Doall (k, 1, N)\n"
    "      A(i,j,k) = B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)\n"
    "    EndDoall\n"
    "  EndDoall\n"
    "EndDoall\n"
)


def _family(dx: int, dy: int) -> str:
    return (
        "Doall (i, 1, N)\n"
        "  Doall (j, 1, N)\n"
        f"    A[i,j] = B[i+{dx},j] + B[i,j+{dy}]\n"
        "  EndDoall\n"
        "EndDoall\n"
    )


#: (label, source, bindings, processors) — 12 distinct canonical keys, so
#: with 2 replicas the odds of rendezvous hashing leaving one shard
#: completely idle are ~2^-11.
PINNED = [
    (f"e26-stencil-N{n}-P{p}", STENCIL, {"N": n}, p)
    for n in (8, 10, 12)
    for p in (4, 8)
] + [
    (f"e26-family{f}-P4", _family(f % 5 + 1, f // 5 % 5 + 2), {"N": 20 + 2 * f}, 4)
    for f in range(6)
]


def _normalize(report: dict) -> str:
    """Strip exactly the run-dependent parts (wall times, cache stats);
    everything else must match byte-for-byte across topologies."""

    def strip_spans(spans):
        out = []
        for s in spans:
            s = dict(s)
            s.pop("duration_s", None)
            s.pop("peak_rss_kb", None)
            if "children" in s:
                s["children"] = strip_spans(s["children"])
            out.append(s)
        return out

    doc = dict(report)
    doc.pop("caches", None)
    doc["spans"] = strip_spans(doc.get("spans", []))
    return json.dumps(doc, sort_keys=True)


def _routed_reports(port: int, corpus) -> dict[str, str]:
    """One request per corpus entry through ``port``; normalized reports."""
    out = {}
    with ServeClient("127.0.0.1", port, max_retries_429=20) as client:
        for label, source, bindings, processors in corpus:
            report = client.partition(
                source, processors, bindings=bindings or None, label=label
            )
            assert report["schema"] == "repro.run-report", report
            out[label] = _normalize(report)
    return out


def test_cluster_smoke():
    """Marker-free quick check for CI: 2-replica cluster over real
    sockets — pass-through identity vs a direct server, warm hits stay
    shard-local, and the merged Prometheus scrape strict-parses."""
    corpus = PINNED[:6]
    with spawn_cluster(replicas=2, workers=1) as cluster:
        routed = _routed_reports(cluster.router_port, corpus)

        with ServeClient("127.0.0.1", cluster.router_port) as client:
            # Warm repeats are response-cache hits at the owning replica.
            for label, source, bindings, processors in corpus:
                client.partition(
                    source, processors, bindings=bindings or None, label=label
                )
                assert client.last_cache_status == "hit", (
                    label,
                    client.last_cache_status,
                )

            # Request-id propagation: router mints/forwards the id and its
            # flight recorder stitches the replica trace under serve.route.
            client.partition(
                corpus[0][1], 4, bindings=corpus[0][2], request_id="e26-smoke-1"
            )
            assert client.last_request_id == "e26-smoke-1"
            one = client.debug_request("e26-smoke-1")
            trace = one.get("trace")
            assert trace and trace["name"] == "request", one
            route_spans = [
                s for s in trace.get("children", []) if s["name"] == "serve.route"
            ]
            assert route_spans and route_spans[0]["attrs"].get("replica"), one

            # The merged exposition must strict-parse, with router-level
            # families plus per-replica labelled serve families.
            parsed = parse_prometheus_text(client.metrics_text())
            assert "repro_route_requests" in parsed, sorted(parsed)
            replica_labels = {
                s["labels"].get("replica")
                for s in parsed["repro_serve_requests"]["samples"]
            }
            assert set(cluster.replica_addresses) <= replica_labels, parsed

    # The same pinned set against one directly-driven server: identical
    # reports (timings aside) — the router added routing, not semantics.
    with EmbeddedServer(ServeConfig(port=0, workers=1)) as emb:
        direct = _routed_reports(emb.port, corpus)
    assert routed == direct


def test_cluster_replica_kill_zero_drops():
    """Hard-kill one of three replicas mid-run: every request must still
    succeed — the router retries the failed forward on a survivor and
    deterministically re-hashes the dead shard's keys."""
    total, kill_at = 45, 15
    with spawn_cluster(replicas=3, workers=1) as cluster:
        with ServeClient(
            "127.0.0.1", cluster.router_port, max_retries_429=50
        ) as client:
            for i in range(total):
                if i == kill_at:
                    cluster.kill_replica(0)
                label, source, bindings, processors = PINNED[i % len(PINNED)]
                report = client.partition(
                    source, processors, bindings=bindings or None, label=label
                )
                assert report["schema"] == "repro.run-report", (i, report)

            # The router noticed: the dead replica is ejected from the
            # routable fleet (health probes run every 0.5s by default).
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                health = client.healthz()
                if health["replicas_routable"] == 2:
                    break
                time.sleep(0.1)
            assert health["replicas_routable"] == 2, health
            assert health["status"] == "ok", health


def run_cluster_bench() -> dict:
    """Cluster load pass: zero errors, per-shard spread, warm hit rates."""
    with spawn_cluster(
        replicas=2, workers=1, server_extra=["--plan-cache"]
    ) as cluster:
        host, port = "127.0.0.1", cluster.router_port
        before = cluster_shard_stats(host, port)
        stats = run_loadgen(
            host=host,
            port=port,
            clients=2,
            requests=5 * len(PINNED),
            corpus=PINNED,
        )
        stats["per_shard"] = _shard_deltas(
            before, cluster_shard_stats(host, port), stats["wall_s"]
        )
        with ServeClient(host, port) as client:
            stats["router_healthz"] = client.healthz()
    return stats


def test_cluster_throughput(benchmark):
    results = benchmark.pedantic(run_cluster_bench, rounds=1, iterations=1)

    assert results["error_count"] == 0, results["errors"]
    assert results["completed"] == results["requests"], results
    # 4 of the 5 passes over the corpus repeat keys: response-cache hits
    # at the owning replica.
    assert results["cache_hits"] >= results["requests"] - len(PINNED), results

    shards = results["per_shard"]
    assert len(shards) == 2, shards
    for shard in shards:
        assert shard["reachable"], shard
        # Every shard computed some of the key space (12 distinct keys
        # make an empty shard vanishingly unlikely) and has a latency
        # tail of its own.
        rc = shard["response_cache_delta"]
        assert rc["hits"] + rc["misses"] > 0, shard
        assert shard["latency_ms"] and shard["latency_ms"]["count"] > 0, shard
    # Each key was computed exactly once cluster-wide — shard affinity
    # means no replica duplicated another's cold compute.
    assert sum(s["response_cache_delta"]["misses"] for s in shards) == len(PINNED), (
        shards
    )

    from repro.core import estimate_traffic, partition_references
    from repro.core.optimize import optimize_rectangular

    from .paper_programs import example8

    nest = example8(12)
    sets = partition_references(nest.accesses)
    opt = optimize_rectangular(sets, nest.space, 8)
    write_bench_report(
        "cluster",
        processors=8,
        estimate=estimate_traffic(sets, opt.tile),
        program={
            "workload": f"{len(PINNED)} pinned keys x 5 passes, 2 replicas",
            "processors": 8,
        },
        meta={
            "cluster": {
                k: results[k]
                for k in (
                    "clients",
                    "requests",
                    "completed",
                    "error_count",
                    "retries_429",
                    "cache_hits",
                    "wall_s",
                    "throughput_rps",
                    "latency_ms",
                )
            },
            "per_shard": results["per_shard"],
            "router_healthz": results["router_healthz"],
            "required_min_scaling_1_to_4": MIN_SCALING_1_TO_4,
        },
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="replica scaling needs >= 4 CPUs (one per replica)",
)
def test_cluster_scaling_1_to_4(tmp_path):
    """The headline scaling claim: warm steady-state throughput grows
    >= 2.5x from 1 replica to 4.  Warm traffic is answered from each
    owner's response LRU, so replicas add independent event loops and
    cache capacity; the shared ``cache_dir`` pre-warms analytic state so
    the cold pass does not distort the comparison."""
    shared = str(tmp_path / "cache")
    os.makedirs(shared, exist_ok=True)
    reports: dict[int, dict[str, str]] = {}
    throughput: dict[int, float] = {}

    for n in (1, 2, 4):
        with spawn_cluster(replicas=n, workers=1, cache_dir=shared) as cluster:
            port = cluster.router_port
            # Cold pass populates every owner's response LRU (and, via
            # --cache-dir, the shared analytic snapshot for later runs).
            reports[n] = _routed_reports(port, PINNED)
            if n == 2:
                continue  # topology-identity sample only
            stats = run_loadgen(
                host="127.0.0.1",
                port=port,
                clients=8,
                requests=20 * len(PINNED),
                corpus=PINNED,
            )
            assert stats["error_count"] == 0, stats["errors"]
            throughput[n] = stats["throughput_rps"]

    # Identical answers at every topology (timings aside).
    assert reports[1] == reports[2] == reports[4]
    scaling = throughput[4] / throughput[1]
    assert scaling >= MIN_SCALING_1_TO_4, (throughput, scaling)
