"""E8 — Section 5: subsumption of Ramanujam & Sadayappan.

Paper claims:
  * "the framework correctly produces the communication-free loop
    partitions for the class of programs handled by Ramanujam and
    Sadayappan" — Example 2 has one (h ⟂ (4,0), i.e. cut j only);
  * "the same framework is able to discover optimal partitions in cases
    where communication free partitions are not possible — a case not
    handled by [7]" — Example 10.

Regenerated: the R&S analysis verdicts, the framework's chosen tiles,
and simulation showing literally zero shared elements for the
communication-free choice.
"""

import numpy as np
import pytest

from repro.baselines.ramanujam_sadayappan import communication_free_hyperplanes
from repro.core import LoopPartitioner
from repro.sim import format_table, simulate_nest

from .paper_programs import example2, example8, example10


def test_example2_rs_and_framework_agree(benchmark):
    nest = example2()

    def run():
        rs = communication_free_hyperplanes(nest)
        part = LoopPartitioner(nest, 100).partition()
        return rs, part

    rs, part = benchmark(run)
    assert rs.exists
    assert rs.hyperplanes[0] @ np.array([4, 0]) == 0
    assert part.is_communication_free
    # The framework's grid cuts exactly along the free hyperplane family.
    assert part.grid == (1, 100)


def test_example2_simulated_zero_sharing(benchmark):
    nest = example2()
    part = LoopPartitioner(nest, 100).partition()
    r = benchmark.pedantic(
        lambda: simulate_nest(nest, part.tile, 100, sweeps=2),
        rounds=1,
        iterations=1,
    )
    assert all(v == 0 for v in r.shared_elements.values())
    assert r.invalidations == 0
    assert r.coherence_misses == 0


def test_example10_no_free_partition_but_optimum(benchmark):
    nest = example10()

    def run():
        rs = communication_free_hyperplanes(nest)
        part = LoopPartitioner(nest, 6).partition()
        return rs, part

    rs, part = benchmark(run)
    assert not rs.exists                       # R&S offers nothing
    assert not part.is_communication_free      # unavoidable traffic...
    assert part.tile.sides.tolist() == [18, 12]  # ...but minimised (E7)


def test_example8_skewed_family_beyond_rectangles(benchmark):
    """E8 extension: Example 8's sharing directions span rank 2, so a
    skewed family h ∝ (3,-1,2) is communication-free — R&S-style analysis
    finds it, rectangular grids cannot realise it."""
    nest = example8(12)
    rs = benchmark(lambda: communication_free_hyperplanes(nest))
    assert rs.degrees_of_freedom == 1
    h = rs.hyperplanes[0]
    for d in ([1, 1, -1], [2, -2, -4], [1, -3, -3]):
        assert h @ np.array(d) == 0
    # No axis-aligned normal exists:
    assert np.count_nonzero(h) > 1
    print()
    print(format_table(["program", "comm-free?", "hyperplane"], [
        ["Example 2", True, "(0, 1)"],
        ["Example 8", True, str(tuple(int(x) for x in h)) + " (skewed)"],
        ["Example 10", False, "-"],
    ]))
