"""E3 — Figures 7-8: the cumulative-footprint approximation.

Paper claim (Section 3.5): the cumulative footprint of a uniformly
intersecting set is approximately ``|det LG| + Σ_i |det LG_{i→â}|``
(ignoring the two corner triangles), and "this approximation is
reasonable if we assume that the constant terms ... are small compared to
the tile size."

Regenerated: relative error of Theorem 2 (and Theorem 4 for rectangular
tiles) against the exact union, as the tile grows — the error must shrink.
"""

import numpy as np
import pytest

from repro.core import (
    AffineRef,
    ParallelepipedTile,
    RectangularTile,
    cumulative_footprint_rect,
    cumulative_footprint_size,
    cumulative_footprint_size_exact,
    partition_references,
)
from repro.sim import format_table


def figure7_class():
    """Example 6's B class: G=[[1,0],[1,1]], offsets (0,0) and (1,2)."""
    refs = [
        AffineRef("B", [[1, 0], [1, 1]], [0, 0]),
        AffineRef("B", [[1, 0], [1, 1]], [1, 2]),
    ]
    (s,) = partition_references(refs)
    return s


def test_theorem2_error_shrinks(benchmark):
    s = figure7_class()

    def run():
        rows = []
        for size in (4, 8, 16, 32):
            tile = ParallelepipedTile([[size, size], [size, 0]])
            approx = cumulative_footprint_size(s, tile)
            exact = cumulative_footprint_size_exact(s, tile)
            rows.append((size, exact, round(approx, 1), abs(approx - exact) / exact))
        return rows

    rows = benchmark(run)
    errors = [r[3] for r in rows]
    assert errors[-1] < errors[0]
    assert errors[-1] < 0.10
    print()
    print(format_table(["tile size", "exact", "Theorem 2", "rel err"], rows))


def test_theorem4_error_shrinks(benchmark):
    s = figure7_class()

    def run():
        rows = []
        for size in (4, 8, 16, 32, 64):
            tile = RectangularTile([size, size])
            approx = cumulative_footprint_rect(s, tile)
            exact = cumulative_footprint_size_exact(s, tile)
            rows.append((size, exact, approx, abs(approx - exact) / exact))
        return rows

    rows = benchmark(run)
    errors = [r[3] for r in rows]
    assert errors[-1] <= errors[0]
    assert errors[-1] < 0.02
    print()
    print(format_table(["tile side", "exact", "Theorem 4", "rel err"], rows))


def test_exact_path_speed(benchmark):
    """The exact bounded-lattice union is itself cheap (no enumeration)."""
    s = figure7_class()
    tile = RectangularTile([256, 256])
    exact = benchmark(lambda: cumulative_footprint_size_exact(s, tile))
    # Lemma 3 closed form: offsets differ by (1,2) = -1*(1,0) + 2*(1,1),
    # so |u| = (1,2) and the union is 2*256^2 - (256-1)*(256-2).
    assert exact == 2 * 256 * 256 - 255 * 254


def test_large_offsets_break_approximation(benchmark):
    """The paper's caveat: offsets comparable to the tile make the
    determinant estimate unreliable (footprints disjoint, union = 2x)."""
    refs = [
        AffineRef("B", [[1, 0], [0, 1]], [0, 0]),
        AffineRef("B", [[1, 0], [0, 1]], [50, 50]),
    ]
    (s,) = partition_references(refs)
    tile = RectangularTile([8, 8])
    exact, approx = benchmark(
        lambda: (
            cumulative_footprint_size_exact(s, tile),
            cumulative_footprint_rect(s, tile),
        )
    )
    assert exact == 2 * 64               # disjoint
    assert approx > 3 * exact            # estimate blows past it
