"""E18 — Section 5, Ferrante/Sarkar/Thrash comparison.

Paper claim (Related Work, item 4): "our techniques yield better
estimates for references of the form ``A[i+j+k, 2i+3j+4k]``."

That reference has ``G = [[1,2],[1,3],[1,4]]`` — three loop dimensions
mapping onto a two-dimensional array through a rank-2 matrix.  Volume-
style estimates (iteration count, determinant surrogates) badly
over- or under-shoot because the map collapses iterations non-uniformly;
the exact counting machinery here (column reduction + enumeration on the
reduced lattice) gets it right.

Measured: exact footprint vs the two natural volume estimates across
tile shapes, and the rank-1 fast path on the collapsed variant
``A[i+j+k, 2i+2j+2k]``.
"""

import numpy as np
import pytest

from repro.core import AffineRef, RectangularTile, footprint_size, footprint_size_exact
from repro.sim import format_table


def ferrante_ref():
    return AffineRef("A", [[1, 2], [1, 3], [1, 4]], [0, 0])


def test_exact_vs_volume_estimates(benchmark):
    ref = ferrante_ref()

    def run():
        rows = []
        for sides in ([4, 4, 4], [8, 4, 2], [2, 8, 8], [6, 6, 6]):
            t = RectangularTile(sides)
            exact = footprint_size(ref, t)
            oracle = footprint_size_exact(ref, t)
            iters = t.iterations
            rows.append([tuple(sides), exact, oracle, iters])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for sides, exact, oracle, iters in rows:
        assert exact == oracle, sides            # our estimate IS the truth
        assert exact < iters, sides              # iteration count overshoots
    # Collapse is substantial, not marginal: >20% everywhere.
    for sides, exact, oracle, iters in rows:
        assert exact <= 0.8 * iters
    print()
    print(
        format_table(
            ["tile", "exact footprint", "oracle", "iteration-count estimate"],
            rows,
        )
    )


def test_rank1_fast_path(benchmark):
    """The fully collapsed variant uses the 1-D table (no enumeration)."""
    ref = AffineRef("A", [[1, 2], [1, 2], [1, 2]], [0, 0])
    t = RectangularTile([6, 6, 6])

    def run():
        return footprint_size(ref, t), footprint_size_exact(ref, t)

    fast, oracle = benchmark(run)
    assert fast == oracle == 16  # i+j+k over [0,5]^3 -> 16 distinct values

    from repro.lattice.points import DEFAULT_FOOTPRINT_TABLE

    # Second call must be served from the table.
    h0 = DEFAULT_FOOTPRINT_TABLE.hits
    footprint_size(ref, t)
    assert DEFAULT_FOOTPRINT_TABLE.hits > h0


def test_footprint_grows_sublinearly_with_tile(benchmark):
    """For collapsing references, footprint grows like the reduced
    dimension, not the tile volume — the structural fact volume
    estimates miss."""
    ref = ferrante_ref()

    def run():
        sizes = []
        for n in (2, 4, 8):
            t = RectangularTile([n, n, n])
            sizes.append((n, footprint_size(ref, t), t.iterations))
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    (n1, f1, v1), _, (n3, f3, v3) = sizes
    assert v3 / v1 == 64          # volume grew 64x
    assert f3 / f1 < 32           # footprint grew far slower
