"""E11 — Example 1, Section 3.4.1, Example 7: column reductions.

Paper claims:
  * Example 1: zero columns of G (loop-invariant subscripts) can be
    ignored — the array is treated as lower-dimensional;
  * Example 7: for ``A[i, 2i, i+j]`` the dependent columns reduce to
    ``G' = [[1,1],[0,1]]`` (columns 1 and 3), and ``L·G'`` specifies the
    footprint completely.
"""

import numpy as np
import pytest

from repro.core import AffineRef, RectangularTile, footprint_size, footprint_size_exact
from repro.core.footprint import footprint_det_size
from repro.core.tiles import ParallelepipedTile
from repro.sim import format_table


def test_example1_zero_columns(benchmark):
    """A(i3+2, 5, i2-1, 4): columns 2 and 4 are zero; dropping them
    preserves the footprint size."""
    g = [[0, 0, 0, 0], [0, 0, 1, 0], [1, 0, 0, 0]]
    ref = AffineRef("A", g, [2, 5, -1, 4])

    def run():
        red = ref.drop_zero_columns()
        assert red.array_dim == 2
        tile = RectangularTile([4, 5, 6])
        return footprint_size_exact(ref, tile), footprint_size_exact(red, tile), footprint_size(ref, tile)

    full, reduced, closed = benchmark(run)
    assert full == reduced == closed == 5 * 6  # i1 does not appear


def test_example7_reduction(benchmark):
    """A[i, 2i, i+j]: G' = [[1,1],[0,1]] (unimodular), footprint = tile."""
    ref = AffineRef("A", [[1, 2, 1], [0, 0, 1]], [0, 0, 0])

    def run():
        red = ref.reduce_columns()
        assert red.g.tolist() == [[1, 1], [0, 1]]
        tile = RectangularTile([5, 7])
        return (
            footprint_size(ref, tile),
            footprint_size_exact(ref, tile),
            footprint_det_size(ref, tile),
        )

    closed, exact, det = benchmark(run)
    assert closed == exact == 35
    assert det == 35.0


def test_reduction_preserves_cumulative(benchmark):
    """Reduction is exact for whole uniformly intersecting classes (the
    coset argument in AffineRef.reduce_columns)."""
    from repro.core import cumulative_footprint_size_exact, partition_references

    gc = [[1, 2, 1], [0, 0, 2]]
    refs = [AffineRef("C", gc, [0, 0, -1]), AffineRef("C", gc, [0, 0, 1])]
    (s,) = partition_references(refs)

    def run():
        rows = []
        for sides in ([4, 4], [8, 6], [12, 10]):
            t = RectangularTile(sides)
            fast = cumulative_footprint_size_exact(s, t)
            its = t.enumerate_iterations()
            pts = set()
            for r in refs:
                pts |= {tuple(p) for p in r.map_points(its).tolist()}
            rows.append((tuple(sides), fast, len(pts)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for sides, fast, brute in rows:
        assert fast == brute
    print()
    print(format_table(["sides", "reduced-space count", "full-space count"], rows))


def test_skewed_tile_reduction(benchmark):
    """Example 7 reduction under a parallelepiped tile."""
    ref = AffineRef("A", [[1, 2, 1], [0, 0, 1]], [0, 0, 0])
    tile = ParallelepipedTile([[4, 4], [5, 0]])

    def run():
        return footprint_size(ref, tile), footprint_size_exact(ref, tile, closed=True)

    closed, exact = benchmark(run)
    assert closed == exact
