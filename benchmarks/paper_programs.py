"""The paper's programs, shared by all benchmarks.

Each function returns a freshly-compiled :class:`repro.core.LoopNest`.
Sizes follow the paper where it gives them (Example 2: 100×100 iterations,
100 processors) and use laptop-friendly defaults elsewhere.
"""

from __future__ import annotations

from repro.core import LoopNest
from repro.lang import compile_nest

__all__ = [
    "example2",
    "example3",
    "example6",
    "example8",
    "example9",
    "example10",
    "figure9",
    "matmul_sync",
]


def example2() -> LoopNest:
    """Example 2 / Figure 3: the 104-vs-140 comparison (100 processors)."""
    return compile_nest(
        """
        Doall (i, 101, 200)
          Doall (j, 1, 100)
            A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]
          EndDoall
        EndDoall
        """
    )


def example3(n: int = 36) -> LoopNest:
    """Example 3: parallelogram tiles beat rectangles."""
    return compile_nest(
        """
        Doall (i, 1, N)
          Doall (j, 1, N)
            A[i,j] = B[i,j] + B[i+1,j+3]
          EndDoall
        EndDoall
        """,
        {"N": n},
    )


def example6() -> LoopNest:
    """Example 6 / Figures 5-7: the skewed-tile footprint."""
    return compile_nest(
        """
        Doall (i, 0, 99)
          Doall (j, 0, 99)
            A[i,j] = B[i+j,j] + B[i+j+1,j+2]
          EndDoall
        EndDoall
        """
    )


def example8(n: int = 24) -> LoopNest:
    """Example 8: the 2:3:4 three-dimensional stencil."""
    return compile_nest(
        """
        Doall (i, 1, N)
          Doall (j, 1, N)
            Doall (k, 1, N)
              A(i,j,k) = B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)
            EndDoall
          EndDoall
        EndDoall
        """,
        {"N": n},
    )


def example9(n: int = 36) -> LoopNest:
    """Example 9: two uniformly intersecting classes (B and C)."""
    return compile_nest(
        """
        Doall (i, 1, N)
          Doall (j, 1, N)
            A(i,j) = B(i-2,j) + B(i,j-1) + C(i+j,j) + C(i+j+1,j+3)
          EndDoall
        EndDoall
        """,
        {"N": n},
    )


def example10(n: int = 36) -> LoopNest:
    """Example 10: non-unimodular and singular reference matrices."""
    return compile_nest(
        """
        Doall (i, 1, N)
          Doall (j, 1, N)
            A(i,j) = B(i+j,i-j) + B(i+j+4,i-j+2) + C(i,2i,i+2j-1) + C(i+1,2i+2,i+2j+1) + C(i,2i,i+2j+1)
          EndDoall
        EndDoall
        """,
        {"N": n},
    )


def figure9(n: int = 12, t: int = 3) -> LoopNest:
    """Figure 9: the Example 8 body under a sequential sweep loop, with B
    updated in place so steady-state coherence traffic exists."""
    return compile_nest(
        """
        Doseq (t, 1, T)
          Doall (i, 1, N)
            Doall (j, 1, N)
              Doall (k, 1, N)
                B(i,j,k) = B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)
              EndDoall
            EndDoall
          EndDoall
        EndDoseq
        """,
        {"N": n, "T": t},
    )


def matmul_sync(n: int = 8) -> LoopNest:
    """Figure 11 / Appendix A: matmul with fine-grain sync accumulates."""
    return compile_nest(
        """
        Doall (i, 1, N)
          Doall (j, 1, N)
            Doall (k, 1, N)
              l$C[i,j] = l$C[i,j] + A[i,k] * B[k,j]
            EndDoall
          EndDoall
        EndDoall
        """,
        {"N": n},
    )
