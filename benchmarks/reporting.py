"""Route benchmark results through the run-report schema.

Set ``REPRO_BENCH_REPORTS`` to a directory and the instrumented
``test_e*`` cases write ``BENCH_<name>.json`` there — the same
schema-versioned document the CLI's ``--json-report`` emits
(:mod:`repro.obs.report`), so paper-claim regeneration and ad-hoc runs
produce directly comparable artifacts::

    REPRO_BENCH_REPORTS=reports PYTHONPATH=src \
        python -m pytest benchmarks -q

Unset (the default, and in CI) this is a no-op: benchmarks assert, but
write nothing.
"""

from __future__ import annotations

import os

from repro.obs import build_report, dump_report

__all__ = ["write_bench_report"]


def write_bench_report(
    name: str,
    *,
    processors: int,
    partition=None,
    estimate=None,
    sim=None,
    program: dict | None = None,
    caches: dict | None = None,
    meta: dict | None = None,
) -> str | None:
    """Write ``BENCH_<name>.json`` if ``REPRO_BENCH_REPORTS`` is set.

    Arguments mirror :func:`repro.obs.report.build_report`.  Returns the
    path written, or ``None`` when reporting is disabled.
    """
    dest = os.environ.get("REPRO_BENCH_REPORTS")
    if not dest:
        return None
    os.makedirs(dest, exist_ok=True)
    report = build_report(
        processors=processors,
        partition=partition,
        estimate=estimate,
        sim=sim,
        program=program,
        caches=caches,
        meta=meta,
    )
    path = os.path.join(dest, f"BENCH_{name}.json")
    dump_report(report, path)
    return path
