"""E5 — Figure 9: the Doseq regime minimises coherence traffic.

Paper claim (Section 3.6): with ``|det L|`` pinned by load balancing, the
``L_iL_jL_k`` term drops out and the optimization minimises the coherence
traffic ``2L_jL_k + 3L_iL_k + 4L_iL_j`` per sweep.

Regenerated: simulate the Figure 9 nest (B updated in place each sweep)
for the optimal grid and for strongly skewed grids; steady-state
coherence misses and invalidations must be minimised by the optimal
aspect ratio, and scale with the analytic boundary term.
"""

import pytest

from repro.core import RectangularTile, estimate_traffic
from repro.sim import format_table, simulate_nest

from .paper_programs import figure9
from .reporting import write_bench_report

GRIDS = {
    (2, 2, 2): [6, 6, 6],
    (8, 1, 1): [2, 12, 12],
    (1, 8, 1): [12, 2, 12],
    (1, 1, 8): [12, 12, 2],
}


def run_all():
    nest = figure9(12, 3)
    rows = []
    for grid, sides in GRIDS.items():
        tile = RectangularTile(sides)
        est = estimate_traffic(nest, tile, method="exact")
        r = simulate_nest(nest, tile, 8)
        rows.append(
            (
                grid,
                est.coherence_traffic,
                r.coherence_misses,
                r.invalidations,
                r.total_misses,
            )
        )
    return rows


def test_optimal_grid_minimises_coherence(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_grid = {r[0]: r for r in rows}
    opt = by_grid[(2, 2, 2)]
    for grid, row in by_grid.items():
        if grid == (2, 2, 2):
            continue
        assert opt[2] <= row[2], f"coherence misses: {grid}"
        assert opt[3] <= row[3], f"invalidations: {grid}"
        assert opt[4] <= row[4], f"total misses: {grid}"
    print()
    print(
        format_table(
            ["grid", "analytic boundary", "coherence misses", "invalidations", "total misses"],
            rows,
        )
    )


def test_boundary_term_ranks_grids(benchmark):
    """The analytic per-tile boundary term orders grids the same way the
    measured steady-state coherence misses do."""
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    analytic_order = [r[0] for r in sorted(rows, key=lambda t: t[1])]
    measured_order = [r[0] for r in sorted(rows, key=lambda t: t[2])]
    assert analytic_order[0] == measured_order[0] == (2, 2, 2)


def test_first_sweep_cold_after_that_coherence(benchmark):
    nest = figure9(12, 3)
    tile = RectangularTile([6, 6, 6])
    r = benchmark.pedantic(
        lambda: simulate_nest(nest, tile, 8), rounds=1, iterations=1
    )
    assert r.sweeps == 3
    # Cold misses happen once; coherence misses recur per sweep.
    assert r.cold_misses > 0
    assert r.coherence_misses > 0
    single = simulate_nest(nest, tile, 8, sweeps=1)
    assert r.cold_misses == single.cold_misses
    write_bench_report(
        "e05_doseq_coherence",
        processors=8,
        estimate=estimate_traffic(nest, tile, method="exact"),
        sim=r,
        program={"benchmark": "E5", "claim": "Figure 9 Doseq regime"},
    )
