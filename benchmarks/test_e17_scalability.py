"""E17 — scalability figure: optimal vs naive partitions across P.

A figure-style series the paper implies but never plots: per-processor
misses as the machine grows, for the framework's tile vs naive rows.
The optimal partition's advantage *grows* with P for the anisotropic
Example 8 stencil (strips get thinner and thinner while blocks shrink in
all dimensions), and the measured series tracks the Theorem-4 prediction
at every point.
"""

import pytest

from repro.core import RectangularTile, estimate_traffic, partition_references
from repro.core.optimize import optimize_rectangular
from repro.baselines.naive import rows_partition
from repro.sim import format_table, simulate_nest

from .paper_programs import example8

N = 24
PS = [2, 4, 8, 12, 24]


def test_optimal_vs_rows_series(benchmark):
    nest = example8(N)
    sets = partition_references(nest.accesses)

    def run():
        rows = []
        for p in PS:
            opt = optimize_rectangular(sets, nest.space, p)
            opt_sim = simulate_nest(nest, opt.tile, p)
            naive_tile, _grid = rows_partition(nest.space, p)
            naive_sim = simulate_nest(nest, naive_tile, p)
            pred = estimate_traffic(sets, opt.tile, method="theorem4").cold_misses
            rows.append(
                [
                    p,
                    opt.grid,
                    round(pred, 1),
                    opt_sim.mean_misses_per_processor(),
                    naive_sim.mean_misses_per_processor(),
                    round(
                        naive_sim.mean_misses_per_processor()
                        / opt_sim.mean_misses_per_processor(),
                        3,
                    ),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # The optimal tile never loses, and its advantage grows with P.
    ratios = [r[5] for r in rows]
    assert all(r >= 1.0 for r in ratios)
    assert ratios[-1] > ratios[0]
    # Theorem-4 prediction is an upper-ish estimate tracking the measured
    # curve (within 25% everywhere).
    for p, grid, pred, meas, naive, ratio in rows:
        assert abs(pred - meas) / meas < 0.25, p
    print()
    print(
        format_table(
            ["P", "grid", "Thm4 pred/proc", "optimal meas/proc", "rows meas/proc", "rows/optimal"],
            rows,
        )
    )


def test_total_traffic_grows_sublinearly_for_blocks(benchmark):
    """Block partitions pay boundary ~ P^(1/3) per processor in 3-D; row
    strips pay a constant huge boundary — total traffic diverges."""
    nest = example8(N)
    sets = partition_references(nest.accesses)

    def run():
        totals = {}
        for p in (2, 8, 24):
            opt = optimize_rectangular(sets, nest.space, p)
            totals[p] = simulate_nest(nest, opt.tile, p).total_misses
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    # Total misses grow far slower than linearly in P (reuse preserved).
    assert totals[24] < 3 * totals[2]
