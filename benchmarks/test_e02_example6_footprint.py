"""E2 — Example 6 / Figures 5-6: footprint of a skewed tile.

Paper claims: for the tile ``L = [[L1, L1], [L2, 0]]`` and reference
``B[i+j, j]`` (``G = [[1,0],[1,1]]``), the footprint is the integer points
of the parallelogram ``LG = [[2L1, L1], [L2, 0]]``, of size
``L1·L2 + L1 + L2`` ("plus the number of integer points on the boundary",
which closes to ``+1``).

Regenerated with Pick's theorem (closed form) and validated against the
brute-force oracle for a range of (L1, L2).
"""

import pytest

from repro.core import AffineRef, ParallelepipedTile, footprint_size_exact
from repro.core.footprint import footprint_size_theorem1
from repro.sim import format_table

SIZES = [(3, 4), (5, 7), (8, 8), (10, 6), (12, 12)]


def make(l1, l2):
    tile = ParallelepipedTile([[l1, l1], [l2, 0]])
    ref = AffineRef("B", [[1, 0], [1, 1]], [0, 0])
    return tile, ref


def test_closed_form_matches_paper_expression(benchmark):
    def run():
        rows = []
        for l1, l2 in SIZES:
            tile, ref = make(l1, l2)
            got = footprint_size_theorem1(ref, tile)
            rows.append((l1, l2, l1 * l2 + l1 + l2 + 1, got))
        return rows

    rows = benchmark(run)
    for l1, l2, paper, got in rows:
        assert got == paper, (l1, l2)
    print()
    print(format_table(["L1", "L2", "paper L1L2+L1+L2 (+1)", "computed"], rows))


def test_oracle_agrees(benchmark):
    def run():
        return [
            footprint_size_exact(*reversed(make(l1, l2)), closed=True)
            for l1, l2 in SIZES
        ]

    got = benchmark(run)
    assert got == [l1 * l2 + l1 + l2 + 1 for l1, l2 in SIZES]


def test_second_reference_same_size(benchmark):
    """Proposition 1: footprints of uniformly intersecting references are
    translations — identical sizes for B[i+j+1, j+2]."""
    def run():
        out = []
        for l1, l2 in SIZES:
            tile, _ = make(l1, l2)
            ref2 = AffineRef("B", [[1, 0], [1, 1]], [1, 2])
            out.append(footprint_size_exact(ref2, tile, closed=True))
        return out

    got = benchmark(run)
    assert got == [l1 * l2 + l1 + l2 + 1 for l1, l2 in SIZES]
