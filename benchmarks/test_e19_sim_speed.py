"""E19 — fast-engine throughput: batched simulation vs the exact protocol.

Not a paper figure: this benchmark guards the repository's own
performance claim — ``simulate_nest(engine='fast')`` produces the exact
engine's numbers at a fraction of the cost by resolving provably-private
and globally read-only lines analytically (Theorem 3's intersection
machinery classifies them) and replaying only the shared residue through
the scalar MSI protocol.

Workloads are the simulator-heavy experiments elsewhere in this suite:

* E5  — Figure 9's ``Doseq`` nest (coherence-heavy, 3 sweeps);
* E10 — Appendix A's matmul with synchronizing accumulates;
* E17 — the Example 8 scalability sweep's largest instance, on the
  optimiser's own tile (the headline: must be ≥ 5× faster).

Timing methodology: the collector is disabled and drained around each
measured run (a prior machine's millions of dict entries otherwise
trigger collection pauses mid-measurement), machines are dropped between
runs, and each engine takes the best of ``ROUNDS`` runs.  Parity is
asserted on every workload before any timing is trusted.
"""

from __future__ import annotations

import gc
import time
from dataclasses import replace

from repro.core import RectangularTile, estimate_traffic
from repro.core.classify import partition_references
from repro.core.optimize import optimize_rectangular
from repro.sim import simulate_nest

from .paper_programs import example8, figure9, matmul_sync
from .reporting import write_bench_report

ROUNDS = 2
E17_PROCESSORS = 12
E17_MIN_SPEEDUP = 5.0


def _workloads():
    e17_nest = example8(24)
    e17_opt = optimize_rectangular(
        partition_references(e17_nest.accesses), e17_nest.space, E17_PROCESSORS
    )
    mm_nest = matmul_sync(16)
    mm_opt = optimize_rectangular(
        partition_references(mm_nest.accesses), mm_nest.space, 8
    )
    return [
        # (name, nest, tile, processors)
        ("e05_doseq", figure9(12, 3), RectangularTile([6, 6, 6]), 8),
        ("e10_matmul_sync", mm_nest, mm_opt.tile, 8),
        ("e17_example8", e17_nest, e17_opt.tile, E17_PROCESSORS),
    ]


def _timed_run(nest, tile, processors, engine):
    """One simulation with GC quiesced; returns (stripped result, seconds)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        r = simulate_nest(nest, tile, processors, engine=engine)
        dt = time.perf_counter() - t0
    finally:
        if was_enabled:
            gc.enable()
    # Drop the machine (and its per-line dicts) so later measurements do
    # not pay collection pauses for this run's garbage.
    return replace(r, machine=None), dt


def _measure(nest, tile, processors, engine):
    best = None
    result = None
    for _ in range(ROUNDS):
        r, dt = _timed_run(nest, tile, processors, engine)
        if best is None or dt < best:
            best, result = dt, r
        gc.collect()
    return result, best


def run_all():
    rows = []
    headline_sim = None
    headline = None
    for name, nest, tile, processors in _workloads():
        exact, exact_s = _measure(nest, tile, processors, "exact")
        fast, fast_s = _measure(nest, tile, processors, "fast")
        assert fast == exact, f"{name}: fast engine diverged from exact"
        accesses = exact.total_accesses
        rows.append(
            {
                "workload": name,
                "processors": processors,
                "tile": tile.sides.tolist(),
                "accesses": accesses,
                "exact_wall_s": exact_s,
                "fast_wall_s": fast_s,
                "exact_accesses_per_s": accesses / exact_s,
                "fast_accesses_per_s": accesses / fast_s,
                "speedup": exact_s / fast_s,
            }
        )
        if name == "e17_example8":
            headline_sim = fast
            headline = (nest, tile)
    return rows, headline_sim, headline


def test_fast_engine_speed(benchmark):
    rows, e17_sim, (e17_nest, e17_tile) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    by_name = {r["workload"]: r for r in rows}

    # Every workload: the fast engine must win outright.
    for r in rows:
        assert r["speedup"] > 1.0, r

    # Headline claim: the E17 workload is at least 5x faster.
    e17 = by_name["e17_example8"]
    assert e17["speedup"] >= E17_MIN_SPEEDUP, e17

    write_bench_report(
        "sim_speed",
        processors=E17_PROCESSORS,
        estimate=estimate_traffic(e17_nest, e17_tile, method="theorem4"),
        sim=e17_sim,
        program={
            "workload": "e17_example8",
            "n": 24,
            "processors": E17_PROCESSORS,
            "tile": e17_tile.sides.tolist(),
        },
        meta={
            "workloads": rows,
            "headline": {
                "workload": "e17_example8",
                "speedup": e17["speedup"],
                "required_min_speedup": E17_MIN_SPEEDUP,
            },
            "rounds_per_engine": ROUNDS,
        },
    )


def test_fast_engine_smoke():
    """Marker-free quick check for CI's timing guard: parity on a small
    instance of each workload family, no wall-clock assertions."""
    for nest, tile, processors in [
        (figure9(6, 2), RectangularTile([3, 3, 3]), 8),
        (matmul_sync(8), RectangularTile([4, 4, 8]), 8),
        (example8(10), RectangularTile([5, 5, 5]), 8),
    ]:
        exact = simulate_nest(nest, tile, processors, engine="exact")
        fast = simulate_nest(nest, tile, processors, engine="fast")
        assert fast == exact
