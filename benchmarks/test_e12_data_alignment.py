"""E12 — Section 4: data partitioning, alignment, and placement.

Paper claims:
  * Data partitioning/alignment: "partitioning arrays with the same
    aspect ratios as the iterations of loops that reference them, and
    then assigning corresponding loop and data partitions to the same
    processor" turns cache misses into *local* memory accesses;
  * Placement: mapping virtual processors onto the mesh to minimise
    latency is "a smaller effect".

Regenerated: local/remote miss split with aligned vs interleaved homes,
hop-weighted network traffic, and row-major vs random mesh embeddings.
"""

import pytest

from repro.codegen import (
    aligned_address_map,
    average_neighbor_distance,
    embed_grid_random,
    embed_grid_row_major,
)
from repro.core import LoopPartitioner
from repro.lang import compile_nest
from repro.sim import format_table, simulate_nest


def stencil(n=16):
    return compile_nest(
        """
        Doall (i, 1, N)
          Doall (j, 1, N)
            A[i,j] = B[i-1,j] + B[i+1,j] + B[i,j-1] + B[i,j+1]
          EndDoall
        EndDoall
        """,
        {"N": n},
    )


def test_alignment_localises_misses(benchmark):
    nest = stencil()
    part = LoopPartitioner(nest, 4).partition()

    def run():
        am = aligned_address_map(nest, part.tile, part.grid, 4)
        aligned = simulate_nest(nest, part.tile, 4, address_map=am)
        flat = simulate_nest(nest, part.tile, 4)
        return aligned, flat

    aligned, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    a_local = sum(p.local_misses for p in aligned.processors)
    a_remote = sum(p.remote_misses for p in aligned.processors)
    f_local = sum(p.local_misses for p in flat.processors)
    f_remote = sum(p.remote_misses for p in flat.processors)
    # Aligned: the bulk is local; interleaved: the bulk is remote.
    assert a_local / (a_local + a_remote) > 0.8
    assert f_remote / (f_local + f_remote) > 0.5
    print()
    print(
        format_table(
            ["policy", "local misses", "remote misses", "hop-weighted traffic"],
            [
                ["aligned blocks", a_local, a_remote, aligned.network_hops],
                ["interleaved", f_local, f_remote, flat.network_hops],
            ],
        )
    )
    assert aligned.network_hops < flat.network_hops


def test_memory_cost_reduction(benchmark):
    """With remote misses 5x the cost of local ones (MachineConfig
    defaults), alignment cuts the total memory cost."""
    nest = stencil()
    part = LoopPartitioner(nest, 4).partition()
    am = aligned_address_map(nest, part.tile, part.grid, 4)

    def run():
        aligned = simulate_nest(nest, part.tile, 4, address_map=am)
        flat = simulate_nest(nest, part.tile, 4)
        return sum(aligned.machine.memory_cost), sum(flat.machine.memory_cost)

    a_cost, f_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a_cost < 0.5 * f_cost


def test_placement_effect(benchmark):
    """Row-major embedding beats random for neighbour communication,
    and the effect is secondary (bounded factor) — both paper claims."""
    grid = (4, 4)

    def run():
        rm = average_neighbor_distance(grid, embed_grid_row_major(grid))
        rnd = sum(
            average_neighbor_distance(grid, embed_grid_random(grid, seed=s))
            for s in range(5)
        ) / 5
        return rm, rnd

    rm, rnd = benchmark(run)
    assert rm == 1.0
    assert rnd > rm
    assert rnd < 6 * rm  # secondary effect at this scale
    print()
    print(format_table(["embedding", "avg neighbour hops"], [["row-major", rm], ["random (mean of 5)", round(rnd, 2)]]))
