"""E22 — partition-as-a-service latency and warm-cache throughput.

Not a paper figure: this benchmark guards the PR-5 serving claims on the
E17 workload (the Example 8 stencil at N = 24 across the machine sizes
P ∈ {2, 4, 8, 12, 24}):

* a cold first request pays the full pipeline (parse → optimise →
  report) through the pool;
* warm steady-state repeats of the same requests are answered from the
  completed-response cache, and their throughput must be ≥ 3× the cold
  first-request rate;
* a full load pass completes with zero dropped or errored requests.

With ``REPRO_BENCH_REPORTS`` set the numbers land in
``BENCH_serve.json`` (p50/p99 latency, req/s, warm-vs-cold speedup) —
including the *server-side* quantiles from the service's own
bounded-bucket ``serve.latency_ms`` histogram, so client-measured and
server-measured latency can be compared in one report.
"""

from __future__ import annotations

import time

from repro.serve import EmbeddedServer, ServeClient, ServeConfig
from repro.serve.loadgen import percentile, run_family_sweep

from .paper_programs import example8
from .reporting import write_bench_report

N = 24
PS = [2, 4, 8, 12, 24]
WARM_PASSES = 8
MIN_WARM_SPEEDUP = 3.0

E17_SOURCE = (
    "Doall (i, 1, N)\n"
    "  Doall (j, 1, N)\n"
    "    Doall (k, 1, N)\n"
    "      A(i,j,k) = B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)\n"
    "    EndDoall\n"
    "  EndDoall\n"
    "EndDoall\n"
)


def _server_latency(client: ServeClient) -> dict | None:
    """The server's own view of ``/v1/partition`` latency, from its
    bounded-bucket histogram on ``/metrics``."""
    for entry in client.metrics().get("metrics", []):
        if (
            entry.get("name") == "serve.latency_ms"
            and entry.get("labels", {}).get("endpoint") == "/v1/partition"
            and entry.get("count")
        ):
            return {
                k: entry.get(k) for k in ("count", "mean", "p50", "p95", "p99", "max")
            }
    return None


def run_serve_bench() -> dict:
    corpus = [(f"e17-p{p}", E17_SOURCE, {"N": N}, p) for p in PS]
    cold_latencies: list[float] = []
    warm_latencies: list[float] = []
    errors: list[str] = []
    cache_hits = 0

    with EmbeddedServer(ServeConfig(port=0, workers=1)) as emb:
        with ServeClient("127.0.0.1", emb.port) as client:
            # Cold pass: every request is a first sight of its key.
            for label, source, bindings, processors in corpus:
                t0 = time.perf_counter()
                client.partition(source, processors, bindings=bindings, label=label)
                cold_latencies.append(time.perf_counter() - t0)
                if client.last_cache_status != "miss":
                    errors.append(f"{label}: cold request was {client.last_cache_status}")

            # Warm steady state: the same keys, answered from the
            # completed-response cache.
            t_warm = time.perf_counter()
            for _ in range(WARM_PASSES):
                for label, source, bindings, processors in corpus:
                    t0 = time.perf_counter()
                    client.partition(
                        source, processors, bindings=bindings, label=label
                    )
                    warm_latencies.append(time.perf_counter() - t0)
                    if client.last_cache_status == "hit":
                        cache_hits += 1
            warm_wall_s = time.perf_counter() - t_warm
            server_latency = _server_latency(client)

    warm_sorted = sorted(warm_latencies)
    cold_first_s = cold_latencies[0]
    warm_rps = len(warm_latencies) / warm_wall_s
    return {
        "workload": f"example8(N={N}), P={PS}",
        "requests_cold": len(cold_latencies),
        "requests_warm": len(warm_latencies),
        "errors": errors,
        "warm_cache_hits": cache_hits,
        "cold_first_request_s": cold_first_s,
        "cold_first_request_rps": 1.0 / cold_first_s,
        "cold_total_s": sum(cold_latencies),
        "warm_wall_s": warm_wall_s,
        "warm_throughput_rps": warm_rps,
        "warm_vs_cold_speedup": warm_rps * cold_first_s,
        "latency_ms": {
            "cold_mean": sum(cold_latencies) / len(cold_latencies) * 1000,
            "cold_max": max(cold_latencies) * 1000,
            "warm_p50": percentile(warm_sorted, 0.50) * 1000,
            "warm_p99": percentile(warm_sorted, 0.99) * 1000,
            "warm_max": warm_sorted[-1] * 1000,
        },
        # The server's own histogram over the same requests (cold+warm):
        # client-vs-server deltas expose client/transport overhead.
        "server_latency_ms": server_latency,
    }


def run_family_plan_bench() -> dict:
    """Per-family plan hit rates against a ``plan_cache=True`` server:
    each family shares one structure key, so the first request of a
    family is the only plan miss the server should record for it."""
    with EmbeddedServer(ServeConfig(port=0, workers=1, plan_cache=True)) as emb:
        return run_family_sweep(
            host="127.0.0.1",
            port=emb.port,
            clients=2,
            families=3,
            n_variants=3,
            p_variants=2,
        )


def test_serve_throughput(benchmark):
    results = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)

    assert not results["errors"], results["errors"]
    # Every warm repeat must be a response-cache hit.
    assert results["warm_cache_hits"] == results["requests_warm"], results
    # The headline claim: steady-state warm throughput beats the cold
    # first-request rate by at least 3×.
    assert results["warm_vs_cold_speedup"] >= MIN_WARM_SPEEDUP, results
    # The server's histogram saw every request the client timed.
    server_lat = results["server_latency_ms"]
    assert server_lat is not None, results
    assert server_lat["count"] == (
        results["requests_cold"] + results["requests_warm"]
    ), results

    # A plan-cache server answering family sweeps: every family's plan
    # hit rate must reflect the solve-once-per-structure contract.
    family = run_family_plan_bench()
    assert family["error_count"] == 0, family
    for entry in family["families"]:
        plan = entry["plan"]
        assert plan["hits"] + plan["misses"] >= 1, entry
        assert plan["hit_rate"] > 0.5, entry

    from repro.core import estimate_traffic, partition_references
    from repro.core.optimize import optimize_rectangular

    nest = example8(N)
    sets = partition_references(nest.accesses)
    opt = optimize_rectangular(sets, nest.space, 8)
    write_bench_report(
        "serve",
        processors=8,
        estimate=estimate_traffic(sets, opt.tile),
        program={
            "workload": results["workload"],
            "processors": 8,
            "tile": opt.tile.sides.tolist(),
        },
        meta={
            "serve": results,
            "family_plan": family,
            "required_min_warm_speedup": MIN_WARM_SPEEDUP,
            "warm_passes": WARM_PASSES,
        },
    )


def test_serve_smoke():
    """Marker-free quick check for CI's timing guard: one cold + one warm
    request round-trip with no wall-clock assertions."""
    with EmbeddedServer(ServeConfig(port=0, workers=1)) as emb:
        with ServeClient("127.0.0.1", emb.port) as client:
            first = client.partition(
                E17_SOURCE, 4, bindings={"N": 8}, label="smoke"
            )
            assert first["schema"] == "repro.run-report"
            client.partition(E17_SOURCE, 4, bindings={"N": 8}, label="smoke")
            assert client.last_cache_status == "hit"
