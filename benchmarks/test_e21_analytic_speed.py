"""E21 — analytic-engine throughput: vectorized kernels, check fan-out.

Not a paper figure: this benchmark guards the repository's performance
claims for the *analytic* side of the pipeline (PR 4):

* the vectorized exact lattice kernels (`union_of_boxes_size`,
  `parallelepiped_lattice_points`) are ≥ 5× faster than the scalar
  oracles they bit-match (``REPRO_SCALAR_KERNELS=1`` paths);
* ``repro check`` throughput scales with ``--workers`` (recorded always;
  the ≥ 2.5× 1→4 scaling is asserted only on runners with ≥ 4 cores —
  a single-core container cannot demonstrate parallel speedup);
* the optimiser's exact grid search benefits from the shared
  :class:`~repro.lattice.points.LatticeCountCache` (warm re-run ≤ cold).

Timing methodology matches E19: the collector is disabled and drained
around each measured region and every quantity takes the best of
``ROUNDS`` runs.  Parity between vectorized and scalar kernels is
asserted on every workload before any timing is trusted.  With
``REPRO_BENCH_REPORTS`` set, the numbers land in
``BENCH_analytic_speed.json``.
"""

from __future__ import annotations

import gc
import json
import os
import time

import numpy as np

from repro.check.harness import run_check
from repro.core.classify import partition_references
from repro.core.optimize import optimize_rectangular
from repro.lattice.points import (
    LatticeCountCache,
    analytic_cache_stats,
    parallelepiped_lattice_points,
    parallelepiped_lattice_points_scalar,
    union_of_boxes_size,
    union_of_boxes_size_scalar,
)

from .paper_programs import example8
from .reporting import write_bench_report

ROUNDS = 2
KERNEL_MIN_SPEEDUP = 5.0
CHECK_CASES = 16
CHECK_WORKERS = 4
CHECK_MIN_SCALING = 2.5
GRID_PROCESSORS = 60  # 3-factor-rich: many feasible grids to score

# Union workload: 3-D, 8 translated boxes, offsets in the E7/E10 style
# (mixed signs, overlapping), extents large enough that the compressed
# cell grid is nontrivial.
_UNION_RNG = np.random.default_rng(7)
UNION_OFFSETS = _UNION_RNG.integers(-50, 51, size=(8, 3)).astype(np.int64)
UNION_EXTENTS = np.array([40, 40, 40], dtype=np.int64)
UNION_REPEATS = 10

# Parallelepiped workload: full-rank 3×3 Q with a ~2M-point bounding box
# (just inside the scalar oracle's historical 5M cap).
PPD_Q = np.array([[95, 11, 2], [7, 110, 13], [3, 17, 120]], dtype=np.int64)


def _best_of(fn, rounds: int = ROUNDS) -> tuple[object, float]:
    """Best-of-``rounds`` wall time with the GC quiesced; returns (result, s)."""
    best = None
    result = None
    for _ in range(rounds):
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            r = fn()
            dt = time.perf_counter() - t0
        finally:
            if was_enabled:
                gc.enable()
        if best is None or dt < best:
            best, result = dt, r
    return result, best


def _union_vec():
    return [
        union_of_boxes_size(UNION_OFFSETS, UNION_EXTENTS)
        for _ in range(UNION_REPEATS)
    ]


def _union_scalar():
    return [
        union_of_boxes_size_scalar(UNION_OFFSETS, UNION_EXTENTS)
        for _ in range(UNION_REPEATS)
    ]


def _strip_duration(report: dict) -> dict:
    out = dict(report)
    out.pop("duration_s", None)
    return out


def run_all() -> dict:
    results: dict = {}

    # -- kernel micro-benchmarks --------------------------------------
    vec_counts, vec_s = _best_of(_union_vec)
    scalar_counts, scalar_s = _best_of(_union_scalar)
    assert vec_counts == scalar_counts, "union kernel diverged from scalar oracle"
    results["union_of_boxes_size"] = {
        "boxes": int(UNION_OFFSETS.shape[0]),
        "dims": int(UNION_OFFSETS.shape[1]),
        "extents": UNION_EXTENTS.tolist(),
        "calls": UNION_REPEATS,
        "count": int(vec_counts[0]),
        "vectorized_wall_s": vec_s,
        "scalar_wall_s": scalar_s,
        "speedup": scalar_s / vec_s,
    }

    ppd_vec, ppd_vec_s = _best_of(lambda: parallelepiped_lattice_points(PPD_Q))
    ppd_scalar, ppd_scalar_s = _best_of(
        lambda: parallelepiped_lattice_points_scalar(PPD_Q)
    )
    assert ppd_vec == ppd_scalar, "parallelepiped kernel diverged from scalar oracle"
    results["parallelepiped_lattice_points"] = {
        "q": PPD_Q.tolist(),
        "count": int(ppd_vec),
        "vectorized_wall_s": ppd_vec_s,
        "scalar_wall_s": ppd_scalar_s,
        "speedup": ppd_scalar_s / ppd_vec_s,
    }

    # -- check fan-out -------------------------------------------------
    r1, check1_s = _best_of(
        lambda: run_check(cases=CHECK_CASES, seed=0), rounds=1
    )
    rn, checkn_s = _best_of(
        lambda: run_check(cases=CHECK_CASES, seed=0, workers=CHECK_WORKERS),
        rounds=1,
    )
    assert json.dumps(_strip_duration(r1)) == json.dumps(_strip_duration(rn)), (
        "check report differs across worker counts"
    )
    results["check_throughput"] = {
        "cases": CHECK_CASES,
        "seed": 0,
        "workers_1_wall_s": check1_s,
        "workers_1_cases_per_s": CHECK_CASES / check1_s,
        f"workers_{CHECK_WORKERS}_wall_s": checkn_s,
        f"workers_{CHECK_WORKERS}_cases_per_s": CHECK_CASES / checkn_s,
        "scaling": check1_s / checkn_s,
        "cpu_count": os.cpu_count(),
    }

    # -- optimiser grid search ----------------------------------------
    nest = example8(30)
    uisets = partition_references(nest.accesses)
    cache = LatticeCountCache()
    cold, cold_s = _best_of(
        lambda: optimize_rectangular(
            uisets, nest.space, GRID_PROCESSORS, scoring="exact", cache=cache
        ),
        rounds=1,
    )
    warm, warm_s = _best_of(
        lambda: optimize_rectangular(
            uisets, nest.space, GRID_PROCESSORS, scoring="exact", cache=cache
        ),
        rounds=1,
    )
    assert warm.grid == cold.grid and warm.predicted_cost == cold.predicted_cost
    results["grid_search"] = {
        "workload": "example8(30)",
        "processors": GRID_PROCESSORS,
        "scoring": "exact",
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "cache_hits": int(cache.hits),
        "cache_misses": int(cache.misses),
        "grid": list(cold.grid),
    }
    results["_opt"] = cold
    return results


def test_analytic_speed(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    opt = results.pop("_opt")

    # Headline claims: both vectorized kernels ≥ 5× their scalar oracles.
    union = results["union_of_boxes_size"]
    ppd = results["parallelepiped_lattice_points"]
    assert union["speedup"] >= KERNEL_MIN_SPEEDUP, union
    assert ppd["speedup"] >= KERNEL_MIN_SPEEDUP, ppd

    # Warm grid search must not be slower than cold (the shared cache
    # turns every exact enumeration into a hit).
    grid = results["grid_search"]
    assert grid["cache_hits"] > 0, grid

    # Worker scaling needs real cores; on < 4 the numbers are recorded
    # but a single-core container cannot demonstrate parallel speedup.
    check = results["check_throughput"]
    if (os.cpu_count() or 1) >= CHECK_WORKERS:
        assert check["scaling"] >= CHECK_MIN_SCALING, check

    from repro.core import estimate_traffic

    nest = example8(30)
    write_bench_report(
        "analytic_speed",
        processors=GRID_PROCESSORS,
        estimate=estimate_traffic(
            partition_references(nest.accesses), opt.tile, method="exact"
        ),
        program={
            "workload": "example8(30)",
            "processors": GRID_PROCESSORS,
            "tile": opt.tile.sides.tolist(),
        },
        caches=analytic_cache_stats(),
        meta={
            "kernels": {
                "union_of_boxes_size": union,
                "parallelepiped_lattice_points": ppd,
                "required_min_speedup": KERNEL_MIN_SPEEDUP,
            },
            "check_throughput": check,
            "grid_search": grid,
            "rounds": ROUNDS,
        },
    )


def test_analytic_smoke():
    """Marker-free quick check for CI's timing guard: kernel parity on a
    small instance of each workload family, no wall-clock assertions."""
    offs = np.array([[0, 0], [3, 1], [-2, 4]], dtype=np.int64)
    ext = np.array([5, 6], dtype=np.int64)
    assert union_of_boxes_size(offs, ext) == union_of_boxes_size_scalar(offs, ext)
    q = np.array([[7, 1, 0], [2, 9, 1], [0, 3, 8]], dtype=np.int64)
    assert parallelepiped_lattice_points(q) == parallelepiped_lattice_points_scalar(q)
    r1 = _strip_duration(run_check(cases=4, seed=0))
    r2 = _strip_duration(run_check(cases=4, seed=0, workers=2))
    assert json.dumps(r1) == json.dumps(r2)
