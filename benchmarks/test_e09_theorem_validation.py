"""E9 — Theorems 1-5, Lemma 3, Propositions 1-3 on randomized inputs.

Every closed form in the paper, checked against brute-force enumeration
over a seeded random population of reference matrices, offsets and tile
shapes; also times closed form vs oracle (the point of having the
theorems: footprint sizes without enumerating).
"""

import numpy as np
import pytest

from repro._util import int_det, int_rank
from repro.core import (
    AffineRef,
    RectangularTile,
    cumulative_footprint_size_exact,
    footprint_size,
    footprint_size_exact,
    partition_references,
)
from repro.core.footprint import footprint_size_theorem1
from repro.core.tiles import ParallelepipedTile
from repro.lattice import BoundedLattice

RNG = np.random.default_rng(20260704)


def random_cases(n, shape=(2, 2), lo=-3, hi=3):
    out = []
    while len(out) < n:
        g = RNG.integers(lo, hi + 1, size=shape)
        out.append(g)
    return out


def test_theorem1_unimodular(benchmark):
    """Unimodular G: |S(LG) ∩ Z^d| equals the exact footprint."""
    cases = [g for g in random_cases(200) if abs(int_det(g)) == 1][:25]
    assert len(cases) >= 10

    def run():
        checked = 0
        for g in cases:
            tile = ParallelepipedTile(RNG.integers(1, 6, size=2) * np.eye(2, dtype=np.int64))
            ref = AffineRef("A", g, [0, 0])
            assert footprint_size_theorem1(ref, tile) == footprint_size_exact(
                ref, tile, closed=True
            )
            checked += 1
        return checked

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= 10


def test_theorem5_independent_rows(benchmark):
    """Independent rows: footprint == tile iteration count."""
    cases = [g for g in random_cases(100, (2, 3)) if int_rank(g) == 2][:30]

    def run():
        for g in cases:
            sides = RNG.integers(1, 7, size=2)
            tile = RectangularTile(sides)
            ref = AffineRef("A", g, RNG.integers(-3, 4, size=3))
            assert footprint_size(ref, tile) == tile.iterations
            assert footprint_size_exact(ref, tile) == tile.iterations
        return len(cases)

    assert benchmark.pedantic(run, rounds=1, iterations=1) == len(cases)


def test_lemma3_union(benchmark):
    """Lemma 3 exact union for random nonsingular generators."""
    cases = [g for g in random_cases(100) if int_det(g) != 0][:30]

    def run():
        for g in cases:
            bounds = RNG.integers(0, 5, size=2)
            t = RNG.integers(-6, 7, size=2)
            bl = BoundedLattice(g, bounds)
            a = {tuple(p) for p in bl.enumerate().tolist()}
            b = {tuple(p) for p in bl.translate(t).enumerate().tolist()}
            assert bl.union_size_with_translate(t) == len(a | b)
        return len(cases)

    assert benchmark.pedantic(run, rounds=1, iterations=1) == len(cases)


def test_proposition1_translation(benchmark):
    """Prop 1: uniformly generated footprints are translations."""
    cases = [g for g in random_cases(60) if int_rank(g) == 2][:20]

    def run():
        for g in cases:
            a1 = RNG.integers(-3, 4, size=2)
            a2 = RNG.integers(-3, 4, size=2)
            tile = RectangularTile(RNG.integers(1, 6, size=2))
            its = tile.enumerate_iterations()
            f1 = np.unique(its @ g + a1, axis=0)
            f2 = np.unique(its @ g + a2, axis=0)
            assert np.array_equal(f1 + (a2 - a1), f2)
        return len(cases)

    assert benchmark.pedantic(run, rounds=1, iterations=1) == len(cases)


def test_proposition3_tile_count(benchmark):
    """Prop 3: rectangular tile (I, γ, λ) holds Π(λ_i+1) iterations."""
    def run():
        for _ in range(30):
            sides = RNG.integers(1, 8, size=3)
            tile = RectangularTile(sides)
            assert tile.iterations == int(np.prod(sides))
            assert tile.enumerate_iterations().shape[0] == tile.iterations
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def test_cumulative_exact_random(benchmark):
    """Exact cumulative footprint vs enumeration for random classes."""
    def run():
        checked = 0
        for _ in range(25):
            g = RNG.integers(-2, 3, size=(2, 2))
            if int_rank(g) < 2:
                continue
            offsets = RNG.integers(-3, 4, size=(3, 2))
            refs = [AffineRef("X", g, o) for o in offsets]
            sets = partition_references(refs)
            tile = RectangularTile(RNG.integers(1, 6, size=2))
            its = tile.enumerate_iterations()
            pts = set()
            for r in refs:
                pts |= {tuple(p) for p in r.map_points(its).tolist()}
            total = sum(cumulative_footprint_size_exact(s, tile) for s in sets)
            assert total == len(pts)
            checked += 1
        return checked

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= 15


def test_closed_form_speedup(benchmark):
    """The theorems' point: footprint sizes without enumeration.  The
    closed form must evaluate fast even for tiles whose enumeration would
    visit millions of points."""
    s = partition_references(
        [
            AffineRef("B", [[1, 1], [1, -1]], [0, 0]),
            AffineRef("B", [[1, 1], [1, -1]], [4, 2]),
        ]
    )[0]
    big = RectangularTile([4096, 4096])

    got = benchmark(lambda: cumulative_footprint_size_exact(s, big))
    # Lemma 3: 2*4096^2 - (4096-3)*(4096-1)
    assert got == 2 * 4096 * 4096 - 4093 * 4095
