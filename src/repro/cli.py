"""Command-line driver: partition a Doall program and report.

::

    python -m repro program.doall -p 16 -D N=64 [--method auto]
                                  [--simulate] [--sweeps 2]
                                  [--engine auto|fast|exact] [--workers N]
                                  [--cache-dir DIR] [--plan-cache]
                                  [--opt-budget SECONDS]
                                  [--pseudocode 0,1] [--data]
                                  [--json-report out.json]
                                  [--trace-out trace.jsonl] [--trace-sample 10]
                                  [--profile] [--log-level debug]

Reads a Doall-language source file (or ``-`` for stdin), runs the full
pipeline — classify, detect communication-free hyperplanes, optimise the
tile, predict traffic — and optionally validates the prediction on the
machine simulator and emits per-processor pseudo-code.

Observability (see :mod:`repro.obs`): ``--json-report`` writes the
schema-versioned run report (per-phase timings, predicted vs measured
traffic, per-processor miss breakdown, prediction-error ratios);
``--trace-out`` writes a sampled JSONL per-access event trace (requires
``--simulate``); ``--profile`` prints a per-phase wall-time / peak-RSS
table; ``--log-level`` enables structured diagnostics on stderr.

``python -m repro check --cases N --seed S [--corpus PATH]`` runs the
differential self-check (:mod:`repro.check`) instead of the pipeline;
``python -m repro serve`` starts the long-lived partition service,
``python -m repro route`` fronts N such replicas with a shard-affine
consistent-hash router (:mod:`repro.serve.cluster`) and
``python -m repro loadgen`` drives load against either (:mod:`repro.serve`);
``python -m repro top`` is a live terminal dashboard over a running
server's ``/metrics`` + ``/debug`` endpoints and ``python -m repro trace
show <file|id>`` pretty-prints a stitched span tree
(:mod:`repro.cli_top`).
"""

from __future__ import annotations

import argparse
import sys

from .codegen import TileSchedule, emit_pseudocode
from .core.partitioner import LoopPartitioner
from .exceptions import ReproError
from .lang import lower_nest, parse_program
from .obs import (
    EventTraceWriter,
    build_report,
    configure_logging,
    dump_report,
    get_logger,
    get_tracer,
    span,
)
from .sim import Machine, MachineConfig, format_table, simulate_nest

__all__ = ["main", "build_parser"]

logger = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Automatic loop partitioning for cache-coherent "
        "multiprocessors (Agarwal, Kranz & Natarajan, ICPP 1993).",
    )
    p.add_argument("source", help="Doall program file, or '-' for stdin")
    p.add_argument("-p", "--processors", type=int, default=4)
    p.add_argument(
        "-D",
        "--define",
        action="append",
        default=[],
        metavar="NAME=INT",
        help="bind a symbolic size (repeatable), e.g. -D N=64",
    )
    p.add_argument(
        "--method",
        choices=["rectangular", "parallelepiped", "auto"],
        default="rectangular",
    )
    p.add_argument(
        "--simulate",
        action="store_true",
        help="run the partitioned nest on the machine simulator",
    )
    p.add_argument("--sweeps", type=int, default=1, help="Doseq sweeps to simulate")
    p.add_argument(
        "--engine",
        choices=["auto", "fast", "exact"],
        default="auto",
        help="simulator execution engine: 'fast' resolves provably-private "
        "lines in bulk, 'exact' drives every access through the MSI "
        "protocol, 'auto' picks fast when its preconditions hold",
    )
    p.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="fan the optimizer's grid search and the fast engine's bulk "
        "phase out over N processes",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist the analytic caches (warm start) in DIR; defaults to "
        "$REPRO_CACHE_DIR when that is set, otherwise persistence is off",
    )
    p.add_argument(
        "--plan-cache",
        action="store_true",
        help="route rectangular optimisation through the structure-keyed "
        "plan cache: solve the Sec 3.6 closed forms once per loop shape, "
        "instantiate per run in O(1), fall back to the numeric optimizer "
        "when no closed form applies (plans persist via --cache-dir)",
    )
    p.add_argument(
        "--opt-budget",
        type=float,
        metavar="SECONDS",
        help="wall-time budget per parallelepiped portfolio member (SLSQP, "
        "simulated annealing); members stop at deterministic checkpoints "
        "when it runs out — unbudgeted runs are bit-reproducible",
    )
    p.add_argument(
        "--flow",
        action="store_true",
        help="treat the source as a multi-statement dataflow program "
        "(repro.flow): legalize each statement into the paper's form, "
        "co-partition across flow dependences, and emit the inter-tile "
        "communication schedule",
    )
    p.add_argument(
        "--flow-strategy",
        choices=["co", "independent"],
        default="co",
        help="flow tile selection: 'co' aligns producer/consumer grids to "
        "minimize total traffic, 'independent' optimizes each statement "
        "alone (default: co)",
    )
    p.add_argument(
        "--pseudocode",
        metavar="PROCS",
        help="emit pseudo-code for a comma-separated processor list",
    )
    p.add_argument(
        "--data",
        action="store_true",
        help="also report the data-partitioning (a+) tile choice",
    )
    p.add_argument(
        "--json-report",
        metavar="PATH",
        help="write the machine-readable run report (repro.obs schema)",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a sampled JSONL per-access event trace (with --simulate)",
    )
    p.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="keep every Nth access in the event trace (default 1 = all)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase wall time and peak RSS after the run",
    )
    p.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        help="enable repro.* structured logging on stderr at this level",
    )
    return p


def _bindings(defs: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for d in defs:
        if "=" not in d:
            raise SystemExit(f"bad -D {d!r}: expected NAME=INT")
        name, _, value = d.partition("=")
        try:
            out[name.strip()] = int(value)
        except ValueError as e:
            raise SystemExit(f"bad -D {d!r}: {e}") from e
    return out


def _profile_table(tracer) -> str:
    rows = []

    def add(span_node, depth: int) -> None:
        name = "  " * depth + span_node.name
        row = [name, f"{span_node.duration * 1e3:.2f}"]
        row.append(
            str(span_node.peak_rss_kb) if span_node.peak_rss_kb is not None else "-"
        )
        rows.append(row)
        for c in span_node.children:
            add(c, depth + 1)

    for root in tracer.roots:
        add(root, 0)
    return format_table(["phase", "ms", "peak RSS (KiB)"], rows)


def _flow_main(args, source, bindings, cache_dir, emit, tracer) -> int:
    """The ``--flow`` pipeline: dataflow program → co-partition →
    communication schedule → (optionally) end-to-end replay.

    Calls the same :func:`repro.flow.run.run_flow` the service dispatches
    to, so ``--json-report`` output is byte-identical (timings aside) to
    a ``POST /v1/partition`` response with ``"program": "flow"``.
    """
    from .flow import run_flow
    from .lattice import DEFAULT_LATTICE_CACHE, analytic_cache_stats
    from .lattice.persist import save_caches

    if args.trace_out:
        emit("note: --trace-out has no effect with --flow")
    if args.pseudocode is not None:
        emit("note: --pseudocode has no effect with --flow")

    plan_cache = None
    if args.plan_cache:
        from .core.plan import DEFAULT_PLAN_CACHE

        plan_cache = DEFAULT_PLAN_CACHE
    try:
        report = run_flow(
            source,
            processors=args.processors,
            bindings=bindings,
            strategy=args.flow_strategy,
            method=args.method,
            simulate=args.simulate,
            sweeps=args.sweeps,
            workers=args.workers or 1,
            cache=DEFAULT_LATTICE_CACHE if cache_dir else None,
            plan_cache=plan_cache,
            opt_budget_s=args.opt_budget,
            label=args.source,
            caches=analytic_cache_stats,
        )
    except ReproError as e:
        emit(f"error: {e}")
        return 1

    flow = report["flow"]
    emit(f"flow program: {len(flow['statements'])} statements, "
         f"P = {args.processors}, strategy = {flow['strategy']}")
    for st in flow["statements"]:
        grid = st["partition"].get("grid")
        shape = f"grid {grid}" if grid is not None else "parallelepiped"
        emit(f"  {st['name']}: extents {st['extents']} "
             f"({st['iterations']} iterations), {st['tiles']} tiles, {shape}")
    if flow["graph"]["edges"]:
        emit("dependences:")
        for e in flow["graph"]["edges"]:
            emit(f"  {e['producer']} -> {e['consumer']} on {e['array']} ({e['kind']})")
    else:
        emit("dependences: none")
    totals = flow["schedule"]["totals"]
    emit(f"communication schedule: {totals['transfer_lines']} transfer lines "
         f"({totals['remote_lines']} distinct per consumer processor), "
         f"digest {flow['schedule']['digest'][:12]}")
    for pair, n in sorted(totals["by_pair"].items()):
        emit(f"  {pair}: {n} lines")
    emit(f"predicted: compute {flow['predicted_compute']:.0f} + "
         f"transfers {flow['predicted_transfers']:.0f} "
         f"({flow['candidates_scored']} candidate grids scored)")

    if args.simulate:
        emit()
        parity = flow["parity"]
        emit(f"replay: {len(flow['phases'])} phases, schedule-vs-measured "
             f"parity {'OK' if parity['match'] else 'MISMATCH'}")
        rows = [
            [ph["statement"], ph["round"], ph["accesses"], ph["misses"],
             ph["coherence_misses"], ph["network_messages"]]
            for ph in flow["phases"]
        ]
        emit(format_table(
            ["statement", "round", "accesses", "misses", "coherence", "messages"],
            rows,
        ))
        if not parity["match"]:
            emit(f"  schedule: {parity['schedule']}")
            emit(f"  measured: {parity['measured']}")

    if args.json_report:
        try:
            dump_report(report, args.json_report)
        except OSError as e:
            emit(f"error: cannot write --json-report {args.json_report!r}: {e}")
            return 1
        emit()
        emit(f"run report -> {args.json_report}")
        logger.info("wrote run report to %s", args.json_report)

    if cache_dir:
        try:
            written = save_caches(cache_dir)
            logger.info("persisted analytic caches: %d entries in %s", written, cache_dir)
        except OSError as e:
            emit(f"note: could not persist analytic caches to {cache_dir!r}: {e}")

    if args.profile:
        emit()
        emit(_profile_table(tracer))
    return 0


def main(argv: list[str] | None = None, *, out=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        from .check.harness import check_main

        return check_main(argv[1:], out=out)
    if argv and argv[0] == "serve":
        from .serve.server import serve_main

        return serve_main(argv[1:], out=out)
    if argv and argv[0] == "route":
        from .serve.cluster import route_main

        return route_main(argv[1:], out=out)
    if argv and argv[0] == "loadgen":
        from .serve.loadgen import loadgen_main

        return loadgen_main(argv[1:], out=out)
    if argv and argv[0] == "top":
        from .cli_top import top_main

        return top_main(argv[1:], out=out)
    if argv and argv[0] == "trace":
        from .cli_top import trace_main

        return trace_main(argv[1:], out=out)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace_sample < 1:
        parser.error(f"--trace-sample must be >= 1, got {args.trace_sample}")
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.opt_budget is not None and args.opt_budget <= 0:
        parser.error(f"--opt-budget must be positive, got {args.opt_budget}")
    out = out or sys.stdout

    def emit(text: str = "") -> None:
        print(text, file=out)

    if args.log_level:
        configure_logging(args.log_level)
    tracer = get_tracer()
    tracer.reset()  # report only this run's phases
    if args.profile:
        tracer.enable_memory_profiling(True)
    if args.trace_out and not args.simulate:
        emit("note: --trace-out has no effect without --simulate")

    import os

    from .lattice import DEFAULT_LATTICE_CACHE, analytic_cache_stats
    from .lattice.persist import load_caches, save_caches

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        loaded = load_caches(cache_dir)
        logger.info("warm-started analytic caches: %d entries from %s", loaded, cache_dir)

    source = (
        sys.stdin.read() if args.source == "-" else open(args.source).read()
    )
    bindings = _bindings(args.define)
    if args.flow:
        return _flow_main(args, source, bindings, cache_dir, emit, tracer)
    try:
        with span("lang.parse"):
            program = parse_program(source)
        if not program.nests:
            emit(f"error: no loop nests found in {args.source!r}")
            return 1
        if len(program.nests) != 1:
            emit(f"note: {len(program.nests)} nests found; partitioning the first")
        node = program.nests[0]
        nest = lower_nest(node, bindings)
    except ReproError as e:
        emit(f"error: {e}")
        return 1

    emit(f"nest: {nest}")
    emit(f"iteration space: {nest.space.extents.tolist()} "
         f"({nest.space.volume} iterations), P = {args.processors}")
    emit()

    part = LoopPartitioner(nest, args.processors)
    emit("uniformly intersecting classes:")
    for s in part.uisets:
        emit(f"  {s}  spread={s.spread().tolist()}")
    from .core.symbolic import loop_polynomial

    try:
        poly = loop_polynomial(list(part.uisets), nest.index_names)
        emit(f"cumulative footprint ≈ {poly}")
        emit(f"minimise (volume fixed): {poly.partition_sensitive()}")
    except Exception:
        pass
    basis = part.comm_free_basis()
    if basis.shape[0]:
        emit(f"communication-free hyperplane normals: {basis.tolist()}")
    else:
        emit("no communication-free partition exists")
    emit()

    try:
        if args.plan_cache:
            from .core.plan import DEFAULT_PLAN_CACHE
        result = part.partition(
            method=args.method,
            workers=args.workers or 1,
            cache=DEFAULT_LATTICE_CACHE if cache_dir else None,
            plan_cache=DEFAULT_PLAN_CACHE if args.plan_cache else None,
            opt_budget_s=args.opt_budget,
        )
    except ReproError as e:
        emit(f"error: {e}")
        return 1
    emit(f"method: {result.method}")
    if result.grid is not None:
        emit(f"tile sides: {result.tile.sides.tolist()}  grid: {result.grid}")
    else:
        emit(f"tile L matrix: {result.tile.l_matrix.tolist()}")
    emit(f"communication-free: {result.is_communication_free}")
    est = result.estimate
    emit(f"predicted misses/tile: {est.cold_misses:.0f} "
         f"(boundary {est.coherence_traffic:.0f})")

    if args.data:
        from .core import optimize_rectangular_data

        dres = optimize_rectangular_data(
            list(part.uisets), nest.space, args.processors
        )
        emit(f"data-partitioning (a+) tile: {dres.tile.sides.tolist()} "
             f"grid {dres.grid}")

    sim = None
    if args.simulate:
        emit()
        machine = Machine(MachineConfig(processors=args.processors))
        trace_writer = None
        if args.trace_out:
            try:
                trace_writer = EventTraceWriter(args.trace_out, every=args.trace_sample)
            except OSError as e:
                emit(f"error: cannot open --trace-out {args.trace_out!r}: {e}")
                return 1
        try:
            sim = simulate_nest(
                nest,
                result.tile,
                args.processors,
                sweeps=args.sweeps,
                machine=machine,
                observer=trace_writer,
                engine=args.engine,
                workers=args.workers,
            )
        except ReproError as e:
            emit(f"error: {e}")
            return 1
        finally:
            if trace_writer is not None:
                trace_writer.close()
                emit(
                    f"event trace: {trace_writer.events_written} of "
                    f"{trace_writer.events_seen} accesses -> {args.trace_out}"
                )
        rows = [
            ["mean misses/processor", f"{sim.mean_misses_per_processor():.1f}"],
            ["cold misses", sim.cold_misses],
            ["coherence misses", sim.coherence_misses],
            ["invalidations", sim.invalidations],
            ["network messages", sim.network_messages],
            ["shared elements", sum(sim.shared_elements.values())],
        ]
        emit(format_table(["simulated quantity", "value"], rows))

    if args.pseudocode is not None and result.grid is not None:
        procs = [int(x) for x in args.pseudocode.split(",") if x.strip()]
        sched = TileSchedule(
            nest.space, result.tile, args.processors, grid=result.grid
        )
        emit()
        emit(emit_pseudocode(node, sched, processors=procs))

    if args.json_report:
        report = build_report(
            processors=args.processors,
            partition=result,
            sim=sim,
            program={
                "source": args.source,
                "processors": args.processors,
                "bindings": bindings,
                "extents": nest.space.extents.tolist(),
                "iterations": int(nest.space.volume),
                "method": args.method,
                "sweeps": args.sweeps,
            },
            caches=analytic_cache_stats(),
        )
        try:
            dump_report(report, args.json_report)
        except OSError as e:
            emit(f"error: cannot write --json-report {args.json_report!r}: {e}")
            return 1
        emit()
        emit(f"run report -> {args.json_report}")
        logger.info("wrote run report to %s", args.json_report)

    if cache_dir:
        try:
            written = save_caches(cache_dir)
            logger.info("persisted analytic caches: %d entries in %s", written, cache_dir)
        except OSError as e:
            emit(f"note: could not persist analytic caches to {cache_dir!r}: {e}")

    if args.profile:
        emit()
        emit(_profile_table(tracer))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
