"""Integer-matrix helpers shared across the ``repro`` packages.

The paper works entirely with integer vectors and matrices (Section 2.1:
"All our vectors and matrices have integer entries unless stated
otherwise").  numpy's float linear algebra is unsafe for the exact lattice
computations in Theorems 1-5, so this module centralises exact integer
routines: validation/coercion, exact determinants by fraction-free Bareiss
elimination, exact rank, gcds, and exact rational solves built on
:class:`fractions.Fraction`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from .exceptions import NonIntegerMatrixError, SingularMatrixError

__all__ = [
    "as_int_matrix",
    "as_int_vector",
    "int_det",
    "int_rank",
    "gcd_many",
    "vector_gcd",
    "is_integer_array",
    "exact_solve",
    "exact_inverse",
    "matmul_int",
    "minors_gcd",
    "first_nonzero",
    "iter_box",
    "box_volume",
]

_INT_KINDS = ("i", "u")


def is_integer_array(a: np.ndarray, *, tol: float = 0.0) -> bool:
    """Return True if every entry of ``a`` is (within ``tol``) an integer."""
    a = np.asarray(a)
    if a.dtype.kind in _INT_KINDS:
        return True
    if a.dtype.kind != "f":
        return False
    return bool(np.all(np.abs(a - np.round(a)) <= tol))


def as_int_matrix(m, *, name: str = "matrix", ndim: int = 2) -> np.ndarray:
    """Coerce ``m`` to a C-contiguous ``int64`` array of dimension ``ndim``.

    Raises
    ------
    NonIntegerMatrixError
        If any entry is not an integer (floats are accepted only when they
        are exactly integral).
    """
    a = np.asarray(m)
    if a.ndim != ndim:
        raise NonIntegerMatrixError(f"{name} must be {ndim}-dimensional, got shape {a.shape}")
    if a.dtype.kind == "O":
        # Could be python ints (possibly big); validate entrywise.
        flat = a.ravel()
        if not all(isinstance(x, (int, np.integer)) for x in flat):
            raise NonIntegerMatrixError(f"{name} has non-integer entries")
        return np.ascontiguousarray(a.astype(np.int64))
    if not is_integer_array(a):
        raise NonIntegerMatrixError(f"{name} has non-integer entries: {a!r}")
    return np.ascontiguousarray(np.round(a).astype(np.int64))


def as_int_vector(v, *, name: str = "vector") -> np.ndarray:
    """Coerce ``v`` to a 1-D ``int64`` array (see :func:`as_int_matrix`)."""
    return as_int_matrix(v, name=name, ndim=1)


def int_det(m) -> int:
    """Exact determinant of a square integer matrix.

    Uses fraction-free Bareiss elimination with Python ints, so there is no
    overflow for any input size (unlike ``numpy.linalg.det``).
    """
    a = as_int_matrix(m, name="det argument")
    n, ncols = a.shape
    if n != ncols:
        raise SingularMatrixError(f"determinant requires a square matrix, got {a.shape}")
    if n == 0:
        return 1
    # Work on a python-int list-of-lists: Bareiss stays exact.
    rows = [[int(x) for x in row] for row in a]
    sign = 1
    prev = 1
    for k in range(n - 1):
        if rows[k][k] == 0:
            # pivot search
            for r in range(k + 1, n):
                if rows[r][k] != 0:
                    rows[k], rows[r] = rows[r], rows[k]
                    sign = -sign
                    break
            else:
                return 0
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                rows[i][j] = (rows[i][j] * rows[k][k] - rows[i][k] * rows[k][j]) // prev
            rows[i][k] = 0
        prev = rows[k][k]
    return sign * rows[n - 1][n - 1]


def int_rank(m) -> int:
    """Exact rank of an integer matrix (fraction-free Gaussian elimination)."""
    a = as_int_matrix(m, name="rank argument")
    rows = [[Fraction(int(x)) for x in row] for row in a]
    nr = len(rows)
    nc = a.shape[1]
    rank = 0
    col = 0
    while rank < nr and col < nc:
        pivot_row = next((r for r in range(rank, nr) if rows[r][col] != 0), None)
        if pivot_row is None:
            col += 1
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot = rows[rank][col]
        for r in range(rank + 1, nr):
            if rows[r][col] != 0:
                factor = rows[r][col] / pivot
                rows[r] = [rows[r][c] - factor * rows[rank][c] for c in range(nc)]
        rank += 1
        col += 1
    return rank


def gcd_many(values: Iterable[int]) -> int:
    """gcd of an iterable of ints; gcd of the empty set is 0."""
    g = 0
    for v in values:
        g = math.gcd(g, int(v))
        if g == 1:
            return 1
    return g


def vector_gcd(v) -> int:
    """gcd of the components of an integer vector (0 for the zero vector)."""
    return gcd_many(int(x) for x in np.asarray(v).ravel())


def exact_solve(a, b) -> list[Fraction] | None:
    """Solve ``x · a = b`` exactly over the rationals for row-vector ``x``.

    ``a`` is an ``(m, n)`` integer matrix, ``b`` a length-``n`` integer
    vector.  Returns one rational solution as a list of ``Fraction`` of
    length ``m``, or ``None`` when the system is inconsistent.  When the
    system is underdetermined an arbitrary particular solution (free
    variables = 0) is returned.
    """
    a = as_int_matrix(a, name="a")
    b = as_int_vector(b, name="b")
    m, n = a.shape
    if b.shape[0] != n:
        raise ValueError(f"shape mismatch: a is {a.shape}, b has length {b.shape[0]}")
    # x·a = b  <=>  aᵀ·xᵀ = bᵀ: do rational Gaussian elimination on [aᵀ | b].
    aug = [[Fraction(int(a[r][c])) for r in range(m)] + [Fraction(int(b[c]))] for c in range(n)]
    nrows = n
    ncols = m
    pivots: list[tuple[int, int]] = []
    row = 0
    for col in range(ncols):
        pr = next((r for r in range(row, nrows) if aug[r][col] != 0), None)
        if pr is None:
            continue
        aug[row], aug[pr] = aug[pr], aug[row]
        pv = aug[row][col]
        aug[row] = [x / pv for x in aug[row]]
        for r in range(nrows):
            if r != row and aug[r][col] != 0:
                f = aug[r][col]
                aug[r] = [aug[r][c] - f * aug[row][c] for c in range(ncols + 1)]
        pivots.append((row, col))
        row += 1
        if row == nrows:
            break
    # Inconsistency: a zero row with nonzero rhs.
    for r in range(row, nrows):
        if all(aug[r][c] == 0 for c in range(ncols)) and aug[r][ncols] != 0:
            return None
    x = [Fraction(0)] * ncols
    for r, c in pivots:
        x[c] = aug[r][ncols]
    return x


def exact_inverse(m) -> list[list[Fraction]]:
    """Exact rational inverse of a square integer matrix.

    Raises :class:`SingularMatrixError` when singular.
    """
    a = as_int_matrix(m, name="inverse argument")
    n, nc = a.shape
    if n != nc:
        raise SingularMatrixError(f"inverse requires a square matrix, got {a.shape}")
    aug = [[Fraction(int(a[r][c])) for c in range(n)] + [Fraction(int(r == c)) for c in range(n)] for r in range(n)]
    for col in range(n):
        pr = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pr is None:
            raise SingularMatrixError("matrix is singular")
        aug[col], aug[pr] = aug[pr], aug[col]
        pv = aug[col][col]
        aug[col] = [x / pv for x in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                f = aug[r][col]
                aug[r] = [aug[r][c] - f * aug[col][c] for c in range(2 * n)]
    return [row[n:] for row in aug]


def matmul_int(a, b) -> np.ndarray:
    """Integer matrix product with object-dtype fallback for huge entries."""
    a = as_int_matrix(a, name="a")
    b = as_int_matrix(b, name="b")
    return a @ b


def minors_gcd(m, order: int) -> int:
    """gcd of all ``order × order`` minors of an integer matrix.

    Used in Lemma 2 (the mapping is onto iff the columns are independent and
    the gcd of the maximal-order subdeterminants is 1) and to decide whether
    the lattice generated by the rows of ``G`` is all of Z^d.
    """
    from itertools import combinations

    a = as_int_matrix(m, name="minors argument")
    nr, nc = a.shape
    if order <= 0 or order > min(nr, nc):
        raise ValueError(f"minor order {order} out of range for shape {a.shape}")
    g = 0
    for rows in combinations(range(nr), order):
        sub_rows = a[list(rows), :]
        for cols in combinations(range(nc), order):
            g = math.gcd(g, abs(int_det(sub_rows[:, list(cols)])))
            if g == 1:
                return 1
    return g


def first_nonzero(v: Sequence[int]) -> int | None:
    """Index of the first nonzero entry of ``v`` or ``None`` if all zero."""
    for i, x in enumerate(v):
        if x != 0:
            return i
    return None


def iter_box(lo, hi):
    """Yield integer points of the axis-aligned box ``lo <= x <= hi``.

    ``lo``/``hi`` are inclusive integer bounds per dimension.  Points are
    yielded as tuples in lexicographic order.  Prefer
    :func:`box_points_array` for bulk numpy work.
    """
    lo = as_int_vector(lo, name="lo")
    hi = as_int_vector(hi, name="hi")
    if lo.shape != hi.shape:
        raise ValueError("lo and hi must have the same length")
    import itertools

    ranges = [range(int(a), int(b) + 1) for a, b in zip(lo, hi)]
    return itertools.product(*ranges)


def box_volume(lo, hi) -> int:
    """Number of integer points of the box ``lo <= x <= hi`` (0 if empty)."""
    lo = as_int_vector(lo, name="lo")
    hi = as_int_vector(hi, name="hi")
    if np.any(hi < lo):
        return 0
    return int(np.prod((hi - lo + 1).astype(object)))


def box_points_array(lo, hi) -> np.ndarray:
    """All integer points of the box as an ``(N, l)`` int64 array.

    Vectorised via meshgrid; raises ``MemoryError``-avoiding ValueError when
    the box holds more than 50 million points.
    """
    lo = as_int_vector(lo, name="lo")
    hi = as_int_vector(hi, name="hi")
    n = box_volume(lo, hi)
    if n == 0:
        return np.empty((0, lo.shape[0]), dtype=np.int64)
    if n > 50_000_000:
        raise ValueError(f"box with {n} points is too large to enumerate")
    axes = [np.arange(int(a), int(b) + 1, dtype=np.int64) for a, b in zip(lo, hi)]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def iter_box_chunks(lo, hi, chunk_size: int):
    """Yield the points of the box ``lo <= x <= hi`` in ``(N, l)`` chunks.

    Streams the same lexicographic point order as :func:`box_points_array`
    without ever materialising more than ``chunk_size`` points — the
    bounded-memory substrate for the chunked vectorized membership tests
    in :mod:`repro.lattice.points`.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    lo = as_int_vector(lo, name="lo")
    hi = as_int_vector(hi, name="hi")
    n = box_volume(lo, hi)
    if n == 0:
        return
    dims = tuple(int(d) for d in (hi - lo + 1))
    for start in range(0, n, chunk_size):
        flat = np.arange(start, min(start + chunk_size, n), dtype=np.int64)
        coords = np.stack(np.unravel_index(flat, dims), axis=1)
        yield coords + lo


def int_adjugate(m) -> np.ndarray:
    """Exact adjugate of a square integer matrix (``adj(M)·M = det(M)·I``).

    Cofactor expansion with exact :func:`int_det` minors; entries are
    returned as an object-dtype array of Python ints so they never
    overflow.  Intended for small matrices (loop depths), where the
    ``O(n²)`` minor determinants are trivially cheap.
    """
    a = as_int_matrix(m, name="adjugate argument")
    n, nc = a.shape
    if n != nc:
        raise SingularMatrixError(f"adjugate requires a square matrix, got {a.shape}")
    adj = np.empty((n, n), dtype=object)
    for i in range(n):
        rows = [r for r in range(n) if r != i]
        for j in range(n):
            cols = [c for c in range(n) if c != j]
            minor = a[np.ix_(rows, cols)] if n > 1 else np.ones((1, 1), dtype=np.int64)
            det = int_det(minor) if n > 1 else 1
            adj[j, i] = (-1) ** (i + j) * det
    return adj


__all__ += ["box_points_array", "iter_box_chunks", "int_adjugate"]
