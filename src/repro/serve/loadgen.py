"""``repro loadgen`` — a closed-loop load generator for the service.

Drives ``--clients`` concurrent blocking clients through ``--requests``
total requests drawn round-robin from a corpus of the paper's example
programs (optionally extended with seeded random nests from the
:mod:`repro.check` generator via ``--generated``), and reports
throughput and latency percentiles.  ``--spawn`` launches a private
server subprocess on an ephemeral port first, so one command exercises
the full stack — that is what the CI smoke job and the E22 benchmark
run.

429 (overload) responses are retried *inside the client* — capped
exponential backoff honoring the server's ``Retry-After`` hint with
deterministic seeded jitter (see :func:`repro.serve.client.
backoff_delay_s`) — and counted separately; anything else non-200 is an
error, and any error fails the run (exit 1).

``--cluster`` points the same closed loop at a ``repro route`` front
tier instead of a single replica: with ``--spawn --replicas N`` it
launches N private replica subprocesses plus a router over them
(:func:`spawn_cluster`), waits until every replica is warm-hydrated and
routable, drives the load through the router, and reports **per-shard**
throughput and latency tails scraped from each replica's own
``/metrics`` — that is what the CI cluster-smoke job and the E26
benchmark run.

Every request carries a unique ``X-Repro-Request-Id``
(``loadgen-<run>-<n>``) so a slow outlier found in the report can be
looked up on the server with ``/debug/requests/<id>`` or ``repro trace
show``.  After the run, the server's own ``latency_ms`` histogram is
scraped and its p50/p95/p99 reported next to the client-side numbers —
queueing inside the server that the client cannot see (batch windows,
pool backlog) shows up as the gap between the two.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import uuid

from .client import ServeClient, ServeError

__all__ = [
    "PAPER_CORPUS",
    "ClusterHandle",
    "cluster_shard_stats",
    "family_corpus",
    "flow_family_corpus",
    "loadgen_main",
    "run_loadgen",
    "run_family_sweep",
    "spawn_cluster",
    "spawn_router",
    "spawn_server",
]

#: The paper's worked examples as service requests: (label, source,
#: bindings, processors).  Sizes follow benchmarks/paper_programs.py.
PAPER_CORPUS: list[tuple[str, str, dict, int]] = [
    (
        "example2",
        "Doall (i, 101, 200)\n"
        "  Doall (j, 1, 100)\n"
        "    A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]\n"
        "  EndDoall\n"
        "EndDoall\n",
        {},
        100,
    ),
    (
        "example3",
        "Doall (i, 1, N)\n"
        "  Doall (j, 1, N)\n"
        "    A[i,j] = B[i,j] + B[i+1,j+3]\n"
        "  EndDoall\n"
        "EndDoall\n",
        {"N": 36},
        9,
    ),
    (
        "example6",
        "Doall (i, 0, 99)\n"
        "  Doall (j, 0, 99)\n"
        "    A[i,j] = B[i+j,j] + B[i+j+1,j+2]\n"
        "  EndDoall\n"
        "EndDoall\n",
        {},
        25,
    ),
    (
        "example8",
        "Doall (i, 1, N)\n"
        "  Doall (j, 1, N)\n"
        "    Doall (k, 1, N)\n"
        "      A(i,j,k) = B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)\n"
        "    EndDoall\n"
        "  EndDoall\n"
        "EndDoall\n",
        {"N": 24},
        8,
    ),
    (
        "matmul",
        "Doall (i, 1, N)\n"
        "  Doall (j, 1, N)\n"
        "    C[i,j] = A[i,j] + B[j,i]\n"
        "  EndDoall\n"
        "EndDoall\n",
        {"N": 32},
        16,
    ),
]


def _generated_corpus(count: int, seed: int) -> list[tuple[str, str, dict, int]]:
    from ..check.generator import generate_case

    out = []
    for case_id in range(count):
        spec = generate_case(case_id, seed, max_accesses=2000)
        out.append((f"generated-{seed}-{case_id}", spec.source(), {}, spec.processors))
    return out


def family_corpus(
    family: int, n_variants: int, p_variants: int
) -> list[tuple[str, str, dict, int]]:
    """Request sweep for one structural family (plan-cache workload).

    Every variant shares one loop *structure* — a 2-deep stencil whose
    offsets depend only on the family index — so the whole sweep maps to
    a single plan-cache key: with ``--plan-cache`` on the server, the
    first variant solves the family's closed form and every later
    variant is a structure hit.  Bounds (``N``) and processor counts
    vary per variant, so the response cache never short-circuits the
    sweep.
    """
    dx = family % 5 + 1
    dy = family // 5 % 5 + 2
    source = (
        "Doall (i, 1, N)\n"
        "  Doall (j, 1, N)\n"
        f"    A[i,j] = B[i+{dx},j] + B[i,j+{dy}]\n"
        "  EndDoall\n"
        "EndDoall\n"
    )
    procs = [4, 8, 6, 12, 16, 24][: max(1, p_variants)]
    return [
        (f"family{family}-N{24 + 4 * k}-P{p}", source, {"N": 24 + 4 * k}, p)
        for k in range(n_variants)
        for p in procs
    ]


def flow_family_corpus(
    family: int, n_variants: int, p_variants: int
) -> list[tuple[str, str, dict, int, dict]]:
    """Dataflow-program request sweep for one structural family.

    The flow analogue of :func:`family_corpus`: every variant shares one
    two-statement pipeline *structure* — a stencil producer handing
    ``T`` to a shifted consumer, offsets fixed by the family index —
    while bounds (``N``) and processor counts vary.  Each statement is
    independently optimized behind the scenes (co-partitioning runs the
    per-statement optimum first), so with ``--plan-cache`` the server
    solves each statement's closed form once per family and every later
    variant instantiates from the structure-keyed plan tier.

    Entries carry a fifth element: extra ``client.partition`` keyword
    arguments selecting the flow pipeline.
    """
    dx = family % 4 + 1
    dy = family // 4 % 4 + 1
    source = (
        "Doall (i, 0, N)\n  Doall (j, 0, N)\n"
        f"    T[i,j] = A[i,j] + A[i+{dx},j] + A[i,j+{dy}]\n"
        "  EndDoall\nEndDoall\n"
        "Doall (i, 0, N)\n  Doall (j, 0, N)\n"
        f"    B[i,j] = T[i,j] + T[i+{dx},j]\n"
        "  EndDoall\nEndDoall\n"
    )
    procs = [4, 8, 6, 12, 16, 24][: max(1, p_variants)]
    return [
        (
            f"flow{family}-N{15 + 4 * k}-P{p}",
            source,
            {"N": 15 + 4 * k},
            p,
            {"program": "flow", "strategy": "co"},
        )
        for k in range(n_variants)
        for p in procs
    ]


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty input)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def run_loadgen(
    *,
    host: str,
    port: int,
    clients: int,
    requests: int,
    corpus: list[tuple[str, str, dict, int]],
    simulate: bool = False,
    deadline_ms: int | None = None,
    max_retries: int = 5,
) -> dict:
    """Fire ``requests`` requests from ``clients`` threads; return stats."""
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if not corpus:
        raise ValueError("corpus is empty")
    lock = threading.Lock()
    next_index = 0
    latencies: list[float] = []
    errors: list[dict] = []
    retries = 0
    cache_hits = 0
    run_id = uuid.uuid4().hex[:8]

    def take() -> int | None:
        nonlocal next_index
        with lock:
            if next_index >= requests:
                return None
            i = next_index
            next_index += 1
            return i

    def worker(seed: int) -> None:
        nonlocal retries, cache_hits
        # 429 retries happen inside the client (capped exponential
        # backoff honoring Retry-After, jitter seeded per worker so runs
        # are reproducible); the loop here only classifies outcomes.
        with ServeClient(
            host, port, max_retries_429=max_retries, backoff_seed=seed
        ) as client:
            try:
                while True:
                    i = take()
                    if i is None:
                        return
                    entry = corpus[i % len(corpus)]
                    label, source, bindings, processors = entry[:4]
                    # Optional fifth element: extra request kwargs (the
                    # flow families ride these through the protocol).
                    extra = entry[4] if len(entry) > 4 else {}
                    t0 = time.perf_counter()
                    try:
                        client.partition(
                            source,
                            processors,
                            bindings=bindings or None,
                            simulate=simulate or None,
                            label=label,
                            deadline_ms=deadline_ms,
                            request_id=f"loadgen-{run_id}-{i}",
                            **extra,
                        )
                        with lock:
                            latencies.append(time.perf_counter() - t0)
                            if client.last_cache_status in ("hit", "coalesced"):
                                cache_hits += 1
                    except ServeError as e:
                        with lock:
                            errors.append(
                                {"request": i, "label": label, "status": e.status,
                                 "code": e.code, "message": str(e)}
                            )
                    except OSError as e:
                        with lock:
                            errors.append(
                                {"request": i, "label": label, "status": 0,
                                 "code": "connection", "message": str(e)}
                            )
                        return
            finally:
                with lock:
                    retries += client.retries_429

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t_start

    ok = sorted(latencies)
    server_latency = _server_latency(host, port)
    return {
        "server_latency_ms": server_latency,
        "clients": clients,
        "requests": requests,
        "completed": len(ok),
        "errors": errors,
        "error_count": len(errors),
        "retries_429": retries,
        "cache_hits": cache_hits,
        "wall_s": wall_s,
        "throughput_rps": (len(ok) / wall_s) if wall_s > 0 else 0.0,
        "latency_ms": {
            "mean": (sum(ok) / len(ok) * 1000) if ok else 0.0,
            "p50": percentile(ok, 0.50) * 1000,
            "p95": percentile(ok, 0.95) * 1000,
            "p99": percentile(ok, 0.99) * 1000,
            "max": (ok[-1] * 1000) if ok else 0.0,
        },
    }


def _plan_cache_stats(host: str, port: int) -> dict | None:
    """Scrape the server's plan-cache counters from ``/metrics``."""
    try:
        with ServeClient(host, port, timeout=10.0) as client:
            dump = client.metrics()
    except (ServeError, OSError):
        return None
    return dump.get("caches", {}).get("plan")


def run_family_sweep(
    *,
    host: str,
    port: int,
    clients: int,
    families: int,
    n_variants: int,
    p_variants: int,
    deadline_ms: int | None = None,
    flow: bool = False,
) -> dict:
    """Drive ``families`` structure-family sweeps; report per-family stats.

    Families run sequentially (their request mix must not interleave) and
    the server's plan-cache counters are scraped before and after each,
    so every family's entry carries its own hit/miss/fallback delta and
    hit rate — the per-family figures BENCH_serve.json records.  With
    ``flow`` the families are two-statement dataflow pipelines
    (:func:`flow_family_corpus`) instead of single nests.
    """
    family_entries: list[dict] = []
    total_requests = total_completed = total_errors = 0
    t_start = time.perf_counter()
    for family in range(families):
        make = flow_family_corpus if flow else family_corpus
        corpus = make(family, n_variants, p_variants)
        before = _plan_cache_stats(host, port) or {}
        stats = run_loadgen(
            host=host,
            port=port,
            clients=clients,
            requests=len(corpus),
            corpus=corpus,
            deadline_ms=deadline_ms,
        )
        after = _plan_cache_stats(host, port) or {}
        delta = {
            k: after.get(k, 0) - before.get(k, 0)
            for k in ("hits", "misses", "fallbacks")
        }
        lookups = delta["hits"] + delta["misses"]
        family_entries.append(
            {
                "family": family,
                "program": "flow" if flow else "doall",
                "requests": len(corpus),
                "completed": stats["completed"],
                "errors": stats["error_count"],
                "latency_ms": stats["latency_ms"],
                "plan": dict(
                    delta,
                    hit_rate=(delta["hits"] / lookups) if lookups else None,
                ),
            }
        )
        total_requests += len(corpus)
        total_completed += stats["completed"]
        total_errors += stats["error_count"]
    wall_s = time.perf_counter() - t_start
    return {
        "families": family_entries,
        "requests": total_requests,
        "completed": total_completed,
        "error_count": total_errors,
        "wall_s": wall_s,
        "throughput_rps": (total_completed / wall_s) if wall_s > 0 else 0.0,
        "plan_cache": _plan_cache_stats(host, port),
    }


def _server_latency(host: str, port: int) -> dict | None:
    """Scrape the server's own latency histogram for ``/v1/partition``.

    The server-side quantiles include queueing the client never sees
    (batch window, pool backlog) but exclude client→server network and
    connection setup; a healthy gap between the two views is small.
    Returns ``None`` when the server is unreachable or has no samples.
    """
    try:
        with ServeClient(host, port, timeout=10.0) as client:
            dump = client.metrics()
    except (ServeError, OSError):
        return None
    for entry in dump.get("metrics", []):
        if (
            entry.get("name") == "serve.latency_ms"
            and entry.get("labels", {}).get("endpoint") == "/v1/partition"
            and entry.get("count")
        ):
            return {
                "count": entry["count"],
                "mean": entry["mean"],
                "p50": entry["p50"],
                "p95": entry["p95"],
                "p99": entry["p99"],
                "max": entry["max"],
            }
    return None


def _spawn_with_port_file(
    subcommand: list[str], *, timeout_s: float = 60.0
) -> tuple[subprocess.Popen, int]:
    """Launch ``python -m repro <subcommand>`` with ``--port 0
    --port-file`` appended; return ``(process, port)`` once listening."""
    port_file = tempfile.NamedTemporaryFile(
        prefix="repro-port.", suffix=".txt", delete=False
    )
    port_file.close()
    os.unlink(port_file.name)
    # Children must resolve the same `repro` package as this process,
    # whether it came from an install or a source checkout on PYTHONPATH.
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro"] + subcommand + [
        "--port", "0", "--port-file", port_file.name,
    ]
    proc = subprocess.Popen(cmd, env=env)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"{subcommand[0]} subprocess exited early with code {proc.returncode}"
            )
        try:
            with open(port_file.name, encoding="utf-8") as fh:
                text = fh.read().strip()
            if text:
                os.unlink(port_file.name)
                return proc, int(text)
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    proc.terminate()
    raise RuntimeError(f"{subcommand[0]} did not start within {timeout_s}s")


def spawn_server(
    *,
    workers: int = 1,
    queue_depth: int = 64,
    cache_dir: str | None = None,
    extra_args: list[str] | None = None,
    timeout_s: float = 60.0,
) -> tuple[subprocess.Popen, int]:
    """Start ``python -m repro serve`` on an ephemeral port; returns
    ``(process, port)`` once the server is listening."""
    cmd = ["serve", "--workers", str(workers), "--queue-depth", str(queue_depth)]
    if cache_dir:
        cmd += ["--cache-dir", cache_dir]
    cmd += extra_args or []
    return _spawn_with_port_file(cmd, timeout_s=timeout_s)


def spawn_router(
    replicas: list[str],
    *,
    extra_args: list[str] | None = None,
    timeout_s: float = 60.0,
) -> tuple[subprocess.Popen, int]:
    """Start ``python -m repro route`` over ``replicas`` (HOST:PORT list)
    on an ephemeral port; returns ``(process, port)`` once listening."""
    cmd = ["route", "--replicas", ",".join(replicas)]
    cmd += extra_args or []
    return _spawn_with_port_file(cmd, timeout_s=timeout_s)


class ClusterHandle:
    """A spawned router + replica fleet (see :func:`spawn_cluster`)."""

    def __init__(
        self,
        router_proc: subprocess.Popen,
        router_port: int,
        replicas: list[tuple[subprocess.Popen, int]],
    ):
        self.router_proc = router_proc
        self.router_port = router_port
        self.replicas = replicas

    @property
    def replica_addresses(self) -> list[str]:
        return [f"127.0.0.1:{port}" for _, port in self.replicas]

    def wait_ready(self, timeout_s: float = 120.0) -> None:
        """Block until the router reports every replica routable.

        Replicas advertise ``ready`` only once their worker pool is
        warm-hydrated, so returning from here means the first real
        request will not pay process-spawn latency.
        """
        deadline = time.monotonic() + timeout_s
        last = "unreachable"
        while time.monotonic() < deadline:
            try:
                with ServeClient("127.0.0.1", self.router_port, timeout=5.0) as c:
                    health = c.healthz()
            except (ServeError, OSError) as e:
                last = str(e)
                time.sleep(0.1)
                continue
            if health.get("replicas_routable") == len(self.replicas):
                return
            last = (
                f"{health.get('replicas_routable')}/{len(self.replicas)} routable"
            )
            time.sleep(0.1)
        raise RuntimeError(f"cluster not ready within {timeout_s}s ({last})")

    def kill_replica(self, index: int) -> None:
        """Hard-kill one replica (failover tests); the router must absorb it."""
        self.replicas[index][0].kill()

    def terminate(self) -> None:
        """Stop the router first, then the replicas."""
        procs = [self.router_proc] + [p for p, _ in self.replicas]
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.terminate()


def spawn_cluster(
    *,
    replicas: int = 2,
    workers: int = 1,
    queue_depth: int = 64,
    cache_dir: str | None = None,
    cache_exchange_s: float | None = None,
    server_extra: list[str] | None = None,
    router_extra: list[str] | None = None,
    timeout_s: float = 60.0,
    wait_ready: bool = True,
) -> ClusterHandle:
    """Spawn ``replicas`` server subprocesses plus a router over them.

    With ``cache_dir`` every replica shares the directory for warm starts
    and — when ``cache_exchange_s`` is set — periodically snapshots and
    absorbs plan/lattice cache deltas through the union-merge lockfile
    protocol, so one replica's analytic work warms its peers.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    fleet: list[tuple[subprocess.Popen, int]] = []
    handle = None
    try:
        extra = list(server_extra or [])
        if cache_exchange_s is not None:
            extra += ["--cache-exchange-s", str(cache_exchange_s)]
        for _ in range(replicas):
            fleet.append(
                spawn_server(
                    workers=workers,
                    queue_depth=queue_depth,
                    cache_dir=cache_dir,
                    extra_args=extra,
                    timeout_s=timeout_s,
                )
            )
        router_proc, router_port = spawn_router(
            [f"127.0.0.1:{port}" for _, port in fleet],
            extra_args=router_extra,
            timeout_s=timeout_s,
        )
        handle = ClusterHandle(router_proc, router_port, fleet)
        if wait_ready:
            handle.wait_ready()
        return handle
    except BaseException:
        if handle is not None:
            handle.terminate()
        else:
            for proc, _ in fleet:
                proc.terminate()
        raise


def cluster_shard_stats(host: str, port: int) -> list[dict]:
    """Per-shard serving stats for the fleet behind a router.

    Asks the router's ``/healthz`` for the replica roster, then scrapes
    every replica's own ``/metrics`` directly: requests served, cache
    dispositions, and the replica-local ``/v1/partition`` latency tail.
    Values are cumulative since replica start — callers wanting a
    per-run delta scrape before and after and subtract.
    """
    try:
        with ServeClient(host, port, timeout=10.0) as client:
            health = client.healthz()
    except (ServeError, OSError):
        return []
    shards = []
    for entry in health.get("replicas", []):
        address = entry.get("address", "")
        rhost, _, rport = address.rpartition(":")
        shard = {
            "replica": address,
            "healthy": entry.get("healthy"),
            "ready": entry.get("ready"),
            "ejections": entry.get("ejections", 0),
        }
        try:
            with ServeClient(rhost, int(rport), timeout=10.0) as rclient:
                dump = rclient.metrics()
        except (ServeError, OSError, ValueError):
            shard["reachable"] = False
            shards.append(shard)
            continue
        shard["reachable"] = True

        def counter_total(name: str, metrics=dump.get("metrics", [])) -> float:
            return sum(
                e.get("value", 0) for e in metrics if e.get("name") == name
            )

        hits = counter_total("serve.response_cache.hits")
        misses = counter_total("serve.response_cache.misses")
        shard["requests"] = counter_total("serve.requests")
        shard["response_cache"] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / (hits + misses)) if hits + misses else None,
        }
        plan = dump.get("caches", {}).get("plan")
        if plan:
            lookups = plan.get("hits", 0) + plan.get("misses", 0)
            shard["plan_cache"] = dict(
                plan, hit_rate=(plan.get("hits", 0) / lookups) if lookups else None
            )
        shard["latency_ms"] = _server_latency(rhost, int(rport))
        shards.append(shard)
    return shards


def _shard_deltas(
    before: list[dict], after: list[dict], wall_s: float
) -> list[dict]:
    """Per-run view of each shard: request/cache deltas + throughput share."""
    prior = {s.get("replica"): s for s in before}
    out = []
    for shard in after:
        base = prior.get(shard.get("replica"), {})
        entry = dict(shard)
        if shard.get("reachable") and "requests" in shard:
            delta = shard["requests"] - base.get("requests", 0)
            entry["requests_delta"] = delta
            entry["throughput_rps"] = (delta / wall_s) if wall_s > 0 else 0.0
            base_rc = base.get("response_cache", {})
            hits = shard["response_cache"]["hits"] - base_rc.get("hits", 0)
            misses = shard["response_cache"]["misses"] - base_rc.get("misses", 0)
            entry["response_cache_delta"] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": (hits / (hits + misses)) if hits + misses else None,
            }
        out.append(entry)
    return out


def build_loadgen_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Load-generate against a repro serve instance using the "
        "paper's example programs.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument("--clients", type=int, default=4, metavar="N")
    p.add_argument("--requests", type=int, default=40, metavar="M",
                   help="total requests across all clients")
    p.add_argument("--generated", type=int, default=0, metavar="K",
                   help="extend the corpus with K seeded random nests "
                   "(repro.check generator)")
    p.add_argument("--seed", type=int, default=0, metavar="S",
                   help="seed for --generated")
    p.add_argument("--simulate", action="store_true",
                   help="request machine-simulator validation too")
    p.add_argument("--deadline-ms", type=int, default=None, metavar="MS")
    p.add_argument("--families", type=int, default=0, metavar="K",
                   help="family-sweep mode: drive K structure families "
                   "(same loop shape, varying bounds and P) sequentially "
                   "and report per-family plan-cache hit rates")
    p.add_argument("--sweep", default="4,3", metavar="N,P",
                   help="with --families: N bound variants x P processor "
                   "counts per family (default 4,3)")
    p.add_argument("--flow", action="store_true",
                   help="with --families: sweep two-statement dataflow "
                   "pipelines (\"program\": \"flow\") instead of single "
                   "nests")
    p.add_argument("--cluster", action="store_true",
                   help="the target is a repro route front tier: report "
                   "per-shard throughput and latency tails scraped from "
                   "each replica behind it (with --spawn, launch the "
                   "whole fleet first)")
    p.add_argument("--replicas", type=int, default=2, metavar="N",
                   help="with --cluster --spawn: number of replica "
                   "subprocesses behind the spawned router (default 2)")
    p.add_argument("--cache-exchange-s", type=float, default=None, metavar="S",
                   help="with --cluster --spawn: replicas exchange "
                   "plan/lattice cache deltas through --spawn-cache-dir "
                   "every S seconds")
    p.add_argument("--spawn", action="store_true",
                   help="launch a private server subprocess on an ephemeral "
                   "port, load it, then drain it")
    p.add_argument("--spawn-workers", type=int, default=1, metavar="N",
                   help="--workers for the spawned server")
    p.add_argument("--spawn-cache-dir", default=None, metavar="DIR",
                   help="--cache-dir for the spawned server")
    p.add_argument("--spawn-plan-cache", action="store_true",
                   help="--plan-cache for the spawned server")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the stats dict as JSON")
    return p


def loadgen_main(argv: list[str] | None = None, *, out=None) -> int:
    """Entry point for ``repro loadgen``."""
    parser = build_loadgen_parser()
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error(f"--clients must be >= 1, got {args.clients}")
    if args.requests < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    if args.generated < 0:
        parser.error(f"--generated must be >= 0, got {args.generated}")
    if args.families < 0:
        parser.error(f"--families must be >= 0, got {args.families}")
    if args.flow and not args.families:
        parser.error("--flow requires --families")
    try:
        sweep_n, sweep_p = (int(x) for x in args.sweep.split(","))
        if sweep_n < 1 or sweep_p < 1:
            raise ValueError
    except ValueError:
        parser.error(f"--sweep must be N,P with both >= 1, got {args.sweep!r}")
    out = out or sys.stdout

    corpus = list(PAPER_CORPUS)
    if args.generated:
        corpus.extend(_generated_corpus(args.generated, args.seed))

    proc = None
    cluster = None
    shards_before: list[dict] = []
    host, port = args.host, args.port
    try:
        if args.spawn and args.cluster:
            extra = ["--plan-cache"] if args.spawn_plan_cache else []
            cluster = spawn_cluster(
                replicas=args.replicas,
                workers=args.spawn_workers,
                cache_dir=args.spawn_cache_dir,
                cache_exchange_s=args.cache_exchange_s,
                server_extra=extra,
            )
            host, port = "127.0.0.1", cluster.router_port
            print(
                f"loadgen: spawned router on port {port} over "
                f"{args.replicas} replica(s): "
                f"{', '.join(cluster.replica_addresses)}",
                file=out,
            )
        elif args.spawn:
            extra = ["--plan-cache"] if args.spawn_plan_cache else []
            proc, port = spawn_server(
                workers=args.spawn_workers,
                cache_dir=args.spawn_cache_dir,
                extra_args=extra,
            )
            host = "127.0.0.1"
            print(f"loadgen: spawned server on port {port}", file=out)
        if args.cluster:
            shards_before = cluster_shard_stats(host, port)
        if args.families:
            stats = run_family_sweep(
                host=host,
                port=port,
                clients=args.clients,
                families=args.families,
                n_variants=sweep_n,
                p_variants=sweep_p,
                deadline_ms=args.deadline_ms,
                flow=args.flow,
            )
        else:
            stats = run_loadgen(
                host=host,
                port=port,
                clients=args.clients,
                requests=args.requests,
                corpus=corpus,
                simulate=args.simulate,
                deadline_ms=args.deadline_ms,
            )
        if args.cluster:
            stats["per_shard"] = _shard_deltas(
                shards_before, cluster_shard_stats(host, port), stats["wall_s"]
            )
    finally:
        if cluster is not None:
            cluster.terminate()
        if proc is not None:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    if args.families:
        print(
            f"loadgen: {stats['completed']}/{stats['requests']} ok across "
            f"{len(stats['families'])} families, {stats['error_count']} errors "
            f"in {stats['wall_s']:.2f}s ({stats['throughput_rps']:.1f} req/s)",
            file=out,
        )
        for entry in stats["families"]:
            plan = entry["plan"]
            rate = plan.get("hit_rate")
            rate_text = f"{rate * 100:.0f}%" if rate is not None else "n/a"
            kind = "flow family" if entry.get("program") == "flow" else "family"
            print(
                f"  {kind} {entry['family']}: {entry['completed']}/"
                f"{entry['requests']} ok, plan hits {plan['hits']} "
                f"misses {plan['misses']} fallbacks {plan['fallbacks']} "
                f"(hit rate {rate_text}), p50 "
                f"{entry['latency_ms']['p50']:.1f} ms",
                file=out,
            )
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(stats, fh, indent=2)
                fh.write("\n")
            print(f"stats -> {args.json}", file=out)
        return 1 if stats["error_count"] else 0

    lat = stats["latency_ms"]
    print(
        f"loadgen: {stats['completed']}/{stats['requests']} ok, "
        f"{stats['error_count']} errors, {stats['retries_429']} overload "
        f"retries, {stats['cache_hits']} cache/coalesce hits in "
        f"{stats['wall_s']:.2f}s ({stats['throughput_rps']:.1f} req/s)",
        file=out,
    )
    print(
        f"latency ms: mean {lat['mean']:.1f}  p50 {lat['p50']:.1f}  "
        f"p99 {lat['p99']:.1f}  max {lat['max']:.1f}",
        file=out,
    )
    server_lat = stats.get("server_latency_ms")
    if server_lat:
        print(
            f"server-side latency ms (from /metrics histogram): "
            f"p50 {server_lat['p50']:.1f}  p95 {server_lat['p95']:.1f}  "
            f"p99 {server_lat['p99']:.1f}  over {server_lat['count']} requests",
            file=out,
        )
    for shard in stats.get("per_shard", []):
        if not shard.get("reachable"):
            print(f"  shard {shard['replica']}: unreachable", file=out)
            continue
        lat = shard.get("latency_ms") or {}
        lat_text = (
            f"p50 {lat['p50']:.1f}  p95 {lat['p95']:.1f}  p99 {lat['p99']:.1f}"
            if lat
            else "no samples"
        )
        rc = shard.get("response_cache_delta", {})
        rate = rc.get("hit_rate")
        rate_text = f"{rate * 100:.0f}%" if rate is not None else "n/a"
        print(
            f"  shard {shard['replica']}: {shard.get('requests_delta', 0):.0f} "
            f"requests ({shard.get('throughput_rps', 0.0):.1f} req/s), "
            f"response-cache hit rate {rate_text}, latency ms {lat_text}",
            file=out,
        )
    for err in stats["errors"][:10]:
        print(
            f"  error: request {err['request']} ({err['label']}): "
            f"[{err['code']}] {err['message']}",
            file=out,
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"stats -> {args.json}", file=out)
    return 1 if stats["error_count"] else 0
