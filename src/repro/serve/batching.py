"""Micro-batching of request compute onto the PR-4 process pool.

The event loop must never run the partitioning pipeline itself — a
single Example-8 optimisation would stall every connection for tens of
milliseconds.  :class:`MicroBatcher` is the bridge: requests accumulate
for a short window (or until the batch is full) and ship to a
``ProcessPoolExecutor`` as *one* :func:`~repro.serve.pipeline.run_batch`
call, amortising submit/pickle overhead and letting each worker reuse
its warm analytic caches across the whole batch.  Cache entries the
workers compute travel back with each result and are absorbed into the
server's process-wide tables, so they survive worker recycling and reach
``--cache-dir`` persistence at shutdown.

A worker that dies mid-batch (OOM kill, segfault) breaks the pool;
the batcher converts that into per-request ``worker-died`` errors,
replaces the pool, and keeps serving — one lost batch, not a dead
service.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..core.plan import DEFAULT_PLAN_CACHE
from ..lattice import DEFAULT_FOOTPRINT_TABLE, DEFAULT_LATTICE_CACHE
from ..obs import get_logger, get_registry
from .pipeline import init_worker, prewarm_worker, run_batch
from .protocol import PartitionRequest, ProtocolError

__all__ = ["MicroBatcher"]

logger = get_logger("serve.batching")


class MicroBatcher:
    """Coalesce concurrent compute submissions into pool batches."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: str | None = None,
        window_s: float = 0.002,
        max_batch: int = 8,
        ship_traces: bool = True,
        plan_cache: bool = False,
        opt_budget_s: float | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_dir = cache_dir
        self.window_s = window_s
        self.max_batch = max_batch
        self.ship_traces = ship_traces
        self.plan_cache = plan_cache
        self.opt_budget_s = opt_budget_s
        self._pool: ProcessPoolExecutor | None = None
        self._pending: list[tuple[PartitionRequest, str | None, float, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._dispatches: set[asyncio.Task] = set()
        self._metrics = get_registry()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._pool is None:
            self._pool = self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=init_worker,
            initargs=(self.cache_dir, self.plan_cache, self.opt_budget_s),
        )

    async def prewarm(self) -> None:
        """Force every pool worker to spawn and finish cache hydration.

        Submits one :func:`~repro.serve.pipeline.prewarm_worker` call per
        worker slot directly to the pool (bypassing the batch window) and
        waits for all of them.  Failures are swallowed — a pool that
        cannot warm will surface errors on the first real batch; the
        caller only wants "hydration is no longer pending".
        """
        if self._pool is None:
            raise RuntimeError("MicroBatcher.prewarm before start()")
        futures = [self._pool.submit(prewarm_worker) for _ in range(self.workers)]
        await asyncio.gather(
            *(asyncio.wrap_future(f) for f in futures), return_exceptions=True
        )

    async def drain(self) -> None:
        """Flush pending work and wait for every in-flight batch."""
        self._flush()
        while self._dispatches:
            await asyncio.gather(*list(self._dispatches), return_exceptions=True)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for _, _, _, future in self._pending:
            if not future.done():
                future.set_exception(
                    ProtocolError("server shutting down", code="shutting-down", status=503)
                )
        self._pending.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # -- submission ------------------------------------------------------
    async def submit(
        self, request: PartitionRequest, request_id: str | None = None
    ) -> tuple[dict, dict]:
        """Queue ``request`` and await ``(report, meta)``.

        ``meta`` is the worker's compute telemetry (``worker_pid``,
        ``compute_ms``, serialized ``spans``) plus the queue time this
        request spent between submission and pool pickup.  Raises
        :class:`~repro.serve.protocol.ProtocolError` when the pipeline
        (or the pool) failed the request; the same meta rides on the
        exception as ``e.compute_meta`` so errored requests still leave
        a flight record with a latency breakdown.
        """
        if self._pool is None:
            raise RuntimeError("MicroBatcher.submit before start()")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, request_id, time.perf_counter(), future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window_s, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        task = asyncio.ensure_future(self._dispatch(batch))
        self._dispatches.add(task)
        task.add_done_callback(self._dispatches.discard)

    # -- dispatch --------------------------------------------------------
    async def _dispatch(
        self,
        batch: list[tuple[PartitionRequest, str | None, float, asyncio.Future]],
    ) -> None:
        loop = asyncio.get_running_loop()
        self._metrics.counter("serve.batches").inc()
        self._metrics.histogram("serve.batch_size").observe(len(batch))
        try:
            outcomes, lattice_entries, footprint_entries, plan_delta = await loop.run_in_executor(
                self._pool,
                run_batch,
                [(request, rid) for request, rid, _, _ in batch],
                self.ship_traces,
            )
        except BrokenProcessPool:
            logger.error(
                "a compute worker died mid-batch; failing %d request(s) "
                "and replacing the pool",
                len(batch),
            )
            self._metrics.counter("serve.worker_deaths").inc()
            broken, self._pool = self._pool, self._new_pool()
            # The broken pool cannot run anything again; reap its children
            # without blocking the loop on their exit.
            broken.shutdown(wait=False, cancel_futures=True)
            for _, _, _, future in batch:
                if not future.done():
                    future.set_exception(
                        ProtocolError(
                            "a compute worker process died while running this "
                            "batch; the request may be retried",
                            code="worker-died",
                            status=500,
                        )
                    )
            return
        except Exception as e:  # pragma: no cover - defensive
            for _, _, _, future in batch:
                if not future.done():
                    future.set_exception(
                        ProtocolError(
                            f"batch dispatch failed: {type(e).__name__}: {e}",
                            code="internal-error",
                            status=500,
                        )
                    )
            return
        DEFAULT_LATTICE_CACHE.absorb_entries(lattice_entries)
        DEFAULT_FOOTPRINT_TABLE.absorb_entries(footprint_entries)
        DEFAULT_PLAN_CACHE.absorb_entries(plan_delta.get("entries", []))
        DEFAULT_PLAN_CACHE.absorb_stats(plan_delta.get("stats", {}))
        now = time.perf_counter()
        for (_, _, submitted, future), (kind, payload, meta) in zip(batch, outcomes):
            if future.done():
                continue
            # Wall time from submit to result, minus worker-measured
            # compute: everything spent in the batch window, the pool's
            # call queue, and behind batch-mates.
            compute_ms = meta.get("compute_s", 0.0) * 1000.0
            meta["compute_ms"] = round(compute_ms, 3)
            meta["queue_ms"] = round(max((now - submitted) * 1000.0 - compute_ms, 0.0), 3)
            if kind == "ok":
                future.set_result((payload, meta))
            else:
                err = payload.get("error", {})
                exc = ProtocolError(
                    err.get("message", "pipeline failed"),
                    code=err.get("code", "internal-error"),
                    status=payload.get("status", 500),
                    field=err.get("field"),
                )
                exc.compute_meta = meta
                future.set_exception(exc)
