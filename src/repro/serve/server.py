"""Partition-as-a-service: the asyncio HTTP server.

``python -m repro serve`` turns the one-shot pipeline into a long-lived
service so the expensive lattice/footprint machinery is paid once and
amortised across requests:

* ``POST /v1/partition`` — Doall source + machine parameters in, the
  ``repro.run-report`` document out (byte-identical, timings aside, to
  the CLI's ``--json-report`` for the same program);
* ``POST /v1/simulate`` — same request shape with ``simulate`` forced on;
* ``GET /healthz`` — liveness + admission-queue state;
* ``GET /metrics`` — the process :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot plus analytic-cache statistics as JSON, or Prometheus text
  exposition when the ``Accept`` header asks for ``text/plain``;
* ``GET /debug/requests`` — the flight recorder's recent requests
  (newest first) plus the pinned slowest exemplars;
* ``GET /debug/requests/<id>`` — one request's record and its stitched
  cross-process span tree;
* ``GET /debug/inflight`` — requests currently being served.

Every request gets a **request id** — caller-supplied via the
``X-Repro-Request-Id`` header or minted here — which is echoed back in
the response header, threaded to the pool worker that runs the compute,
stamped onto the worker's span trees, and used to stitch one
Dapper-style trace per request (server-side ``serve.queue`` /
``serve.compute`` timing around the worker's ``optimize.*`` /
``lattice.*`` spans).  Ids ride in headers, never in bodies: response
bodies stay byte-identical to the CLI's, which the response cache and
``tests/test_serve_differential.py`` rely on.

Production semantics, in the order a request meets them:

1. **Parsing/validation** — malformed HTTP or JSON → 400; schema
   violations → 422 with a typed error payload naming the field.
2. **Response cache** — an LRU of completed responses keyed by the
   request's canonical key; steady-state repeats of a warm request skip
   compute entirely (``X-Repro-Cache: hit``).
3. **Coalescing** — identical requests *in flight* share one
   computation (``X-Repro-Cache: coalesced``).
4. **Admission control** — at most ``--queue-depth`` unique computations
   may be queued or running; beyond that the server sheds load with
   ``429`` + ``Retry-After`` instead of building an unbounded backlog.
5. **Micro-batching** — admitted requests ride the
   :class:`~repro.serve.batching.MicroBatcher` onto the process pool.
6. **Deadlines** — each request has a deadline (``deadline_ms`` or the
   server default); a request whose compute is still running when it
   expires gets ``504``, while the computation itself is left to finish
   and populate the response cache for the retry.
7. **Graceful drain** — SIGTERM/SIGINT stop the listener, let in-flight
   work finish (bounded by ``--drain-s``), flush the warm caches to
   ``--cache-dir``, then exit.

The HTTP implementation is a deliberately minimal HTTP/1.1 subset over
``asyncio`` streams (keep-alive, ``Content-Length`` framing only) — the
stdlib has no asyncio HTTP server and this service needs exactly this
much.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass

from .. import __version__
from ..lattice import analytic_cache_stats
from ..obs import (
    FlightRecorder,
    configure_logging,
    get_logger,
    get_registry,
    prometheus_text,
    stitch_trace,
)
from ..obs.export import PROMETHEUS_CONTENT_TYPE
from .batching import MicroBatcher
from .protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    error_payload,
    validate_partition_request,
    validate_request_id,
)

__all__ = ["ServeConfig", "PartitionServer", "EmbeddedServer", "serve_main"]

logger = get_logger("serve.server")

_POST_ROUTES = ("/v1/partition", "/v1/simulate")
_GET_ROUTES = ("/healthz", "/metrics", "/debug/requests", "/debug/inflight")
_DEBUG_REQUEST_PREFIX = "/debug/requests/"


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8787  # 0 = ephemeral (the bound port lands in --port-file)
    workers: int = 1
    queue_depth: int = 64
    batch_window_ms: float = 2.0
    max_batch: int = 8
    cache_dir: str | None = None
    response_cache_size: int = 256
    deadline_ms: int = 60_000
    drain_s: float = 10.0
    port_file: str | None = None
    slo_p99_ms: float = 1000.0
    slo_error_rate: float = 0.01
    flight_capacity: int = 512
    trace_requests: bool = True  # ship worker span trees back per request
    plan_cache: bool = False  # route theorem-4 optimisation through plans
    opt_budget_s: float | None = None  # per-member parallelepiped budget
    cache_exchange_s: float | None = None  # period of cross-replica cache exchange


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


async def _read_request(reader: asyncio.StreamReader):
    """One HTTP/1.1 request → ``(method, path, headers, body)``.

    Returns ``None`` on a clean EOF before the request line (keep-alive
    connection closed by the peer).
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin-1").rstrip("\r\n").split(" ", 2)
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise _HttpError(400, "truncated headers")
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise _HttpError(400, "undecodable header") from None
        if not _:
            raise _HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if n < 0:
            raise _HttpError(400, "negative Content-Length")
        if n > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(n)
    elif headers.get("transfer-encoding"):
        raise _HttpError(400, "chunked request bodies are not supported")
    return method, path.split("?", 1)[0], headers, body


@dataclass(frozen=True)
class _TextPayload:
    """A non-JSON response body (Prometheus text exposition)."""

    text: str
    content_type: str = PROMETHEUS_CONTENT_TYPE


def _encode_response(
    status: int,
    payload,
    *,
    keep_alive: bool,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    if isinstance(payload, _TextPayload):
        body = payload.text.encode("utf-8")
        content_type = payload.content_type
    else:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        content_type = "application/json"
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Server: repro-serve/{__version__}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class PartitionServer:
    """The service: owns the listener, the batcher, and the shared caches."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        if self.config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.config.workers}")
        if self.config.queue_depth < 1:
            raise ValueError(f"queue-depth must be >= 1, got {self.config.queue_depth}")
        self.port: int | None = None
        self.started_at: float | None = None
        self._server: asyncio.base_events.Server | None = None
        self._batcher = MicroBatcher(
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
            ship_traces=self.config.trace_requests,
            plan_cache=self.config.plan_cache,
            opt_budget_s=self.config.opt_budget_s,
        )
        self._metrics = get_registry()
        self._flight = FlightRecorder(max(self.config.flight_capacity, 1))
        self._admitted = 0  # unique computations queued or running
        self._inflight: dict[tuple, asyncio.Task] = {}
        self._response_cache: OrderedDict[tuple, dict] = OrderedDict()
        self._shutdown_event: asyncio.Event | None = None
        self._draining = False
        self._requests_served = 0
        self._ready = False
        self._prewarm_task: asyncio.Task | None = None
        self._exchange_task: asyncio.Task | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Hydrate caches, spin up the pool, bind the listener."""
        loaded = 0
        if self.config.cache_dir:
            from ..lattice.persist import load_caches

            loaded = load_caches(self.config.cache_dir)
            logger.info(
                "warm-started analytic caches: %d entries from %s",
                loaded,
                self.config.cache_dir,
            )
        self._batcher.start()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=65536,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        self._metrics.gauge("serve.queue_depth_limit").set(self.config.queue_depth)
        self._metrics.gauge("serve.cache_entries_loaded").set(loaded)
        self._prewarm_task = asyncio.create_task(self._prewarm())
        if self.config.cache_dir and self.config.cache_exchange_s:
            self._exchange_task = asyncio.create_task(self._cache_exchange_loop())
        if self.config.port_file:
            with open(self.config.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{self.port}\n")
        logger.info("listening on %s:%d", self.config.host, self.port)

    async def _prewarm(self) -> None:
        """Hydrate the pool, then flip ``/healthz`` readiness.

        The listener answers immediately (liveness), but ``ready`` stays
        false until every pool worker has spawned and finished
        :func:`~repro.serve.pipeline.init_worker` — so a router or a
        rolling restart never sends traffic at a replica whose first
        request would eat the whole cold-hydration cost.
        """
        try:
            await self._batcher.prewarm()
        except Exception:  # pragma: no cover - pool failures surface later
            logger.exception("worker prewarm failed; serving anyway")
        finally:
            self._ready = True
            self._metrics.gauge("serve.ready").set(1)
            logger.info("worker pool warm; replica ready")

    async def _cache_exchange_loop(self) -> None:
        """Periodic cross-replica cache exchange through ``--cache-dir``.

        Every period, snapshot this replica's analytic-cache deltas into
        the shared directory (union-merge under the lockfile) and absorb
        peers' entries published since the last cycle.  Runs in an
        executor thread — the lockfile wait must never stall the loop.
        """
        from ..lattice.persist import exchange_caches

        loop = asyncio.get_running_loop()
        assert self.config.cache_exchange_s is not None
        while True:
            await asyncio.sleep(self.config.cache_exchange_s)
            try:
                written, absorbed = await loop.run_in_executor(
                    None, exchange_caches, self.config.cache_dir
                )
            except (OSError, TimeoutError) as e:
                self._metrics.counter("serve.cache_exchange.errors").inc()
                logger.warning("cache exchange failed: %s", e)
                continue
            self._metrics.counter("serve.cache_exchange.cycles").inc()
            self._metrics.counter("serve.cache_exchange.absorbed").inc(absorbed)
            self._metrics.gauge("serve.cache_exchange.last_written").set(written)

    def signal_shutdown(self) -> None:
        """Begin graceful drain (call from within the event loop)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def serve_until_shutdown(self) -> None:
        assert self._shutdown_event is not None, "start() first"
        await self._shutdown_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, flush caches."""
        if self._server is None:
            return
        self._draining = True
        for task in (self._prewarm_task, self._exchange_task):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._prewarm_task = self._exchange_task = None
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        try:
            await asyncio.wait_for(self._batcher.drain(), timeout=self.config.drain_s)
        except asyncio.TimeoutError:
            logger.warning(
                "drain did not finish within %.1fs; abandoning in-flight work",
                self.config.drain_s,
            )
        if self._inflight:
            await asyncio.gather(*list(self._inflight.values()), return_exceptions=True)
        if self.config.cache_dir:
            from ..lattice.persist import save_caches

            try:
                written = save_caches(self.config.cache_dir)
                logger.info(
                    "persisted analytic caches: %d entries in %s",
                    written,
                    self.config.cache_dir,
                )
            except OSError as e:
                logger.warning(
                    "could not persist analytic caches to %r: %s",
                    self.config.cache_dir,
                    e,
                )
        # Pool teardown joins worker processes; keep it off the loop thread.
        await asyncio.get_running_loop().run_in_executor(None, self._batcher.stop)
        logger.info("drained; %d requests served", self._requests_served)

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(_read_request(reader), timeout=60.0)
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except _HttpError as e:
                    writer.write(
                        _encode_response(
                            e.status,
                            error_payload("invalid-request", str(e)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                status, payload, extra = await self._route(method, path, headers, body)
                writer.write(
                    _encode_response(
                        status, payload, keep_alive=keep_alive, extra_headers=extra
                    )
                )
                await writer.drain()
                self._requests_served += 1
                if not keep_alive:
                    break
        except ConnectionError:  # peer vanished mid-response
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    # -- routing ---------------------------------------------------------
    async def _route(self, method: str, path: str, headers: dict[str, str], body: bytes):
        """Dispatch one request; returns ``(status, payload, extra_headers)``."""
        if path.startswith(_DEBUG_REQUEST_PREFIX):
            endpoint = "/debug/requests/<id>"
        else:
            endpoint = path if path in _POST_ROUTES + _GET_ROUTES else "other"
        self._metrics.counter("serve.requests", endpoint=endpoint).inc()
        t0 = time.perf_counter()
        extra: dict[str, str] = {}
        is_compute = path in _POST_ROUTES
        record = meta = None
        error_code = None
        try:
            request_id = validate_request_id(headers.get("x-repro-request-id"))
            if request_id is None:
                request_id = uuid.uuid4().hex[:16]
            extra["X-Repro-Request-Id"] = request_id
            if is_compute:
                record = self._flight.begin(request_id, endpoint)
            if path in _GET_ROUTES or endpoint == "/debug/requests/<id>":
                if method != "GET":
                    raise ProtocolError(
                        f"{path} only supports GET", code="method-not-allowed", status=405
                    )
                status, payload = 200, self._handle_get(path, headers)
            elif is_compute:
                if method != "POST":
                    raise ProtocolError(
                        f"{path} only supports POST", code="method-not-allowed", status=405
                    )
                status, payload, extra_c, meta = await self._handle_compute(
                    path, body, request_id
                )
                extra.update(extra_c)
            else:
                raise ProtocolError(
                    f"no such endpoint {path!r}", code="not-found", status=404
                )
        except ProtocolError as e:
            status, payload, error_code = e.status, e.to_payload(), e.code
            meta = getattr(e, "compute_meta", None)
            if e.status == 429:
                extra["Retry-After"] = "1"
        except Exception as e:  # pragma: no cover - route safety net
            logger.exception("unhandled error serving %s %s", method, path)
            status = 500
            error_code = "internal-error"
            payload = error_payload("internal-error", f"{type(e).__name__}: {e}")
        total_ms = (time.perf_counter() - t0) * 1000.0
        if record is not None:
            self._finish_flight(
                record, status=status, cache=extra.get("X-Repro-Cache"),
                meta=meta, total_ms=total_ms, error_code=error_code,
            )
        self._metrics.counter(
            "serve.responses", endpoint=endpoint, status=str(status)
        ).inc()
        self._metrics.latency_histogram("serve.latency_ms", endpoint=endpoint).observe(
            total_ms
        )
        return status, payload, extra

    def _finish_flight(
        self,
        record,
        *,
        status: int,
        cache: str | None,
        meta: dict | None,
        total_ms: float,
        error_code: str | None,
    ) -> None:
        """Close a compute request's flight record, stitching its trace.

        A full trace is kept only for requests that actually ran the
        compute (cache=miss with worker meta); hits and coalesced
        followers reuse the leader's computation, so their records carry
        the latency breakdown but no duplicate span tree.
        """
        meta = meta or {}
        trace = None
        if self.config.trace_requests and cache == "miss" and "spans" in meta:
            trace = stitch_trace(
                record.request_id,
                record.endpoint,
                total_ms=total_ms,
                status=status,
                cache=cache,
                queue_ms=meta.get("queue_ms"),
                compute_ms=meta.get("compute_ms"),
                worker_pid=meta.get("worker_pid"),
                worker_spans=meta.get("spans"),
            )
        self._flight.finish(
            record,
            status=status,
            cache=cache,
            queue_ms=meta.get("queue_ms"),
            compute_ms=meta.get("compute_ms"),
            total_ms=round(total_ms, 3),
            worker_pid=meta.get("worker_pid"),
            error_code=error_code,
            trace=trace,
        )

    def _handle_get(self, path: str, headers: dict[str, str]):
        if path == "/healthz":
            return self._healthz()
        if path == "/metrics":
            accept = headers.get("accept", "")
            if "text/plain" in accept or "openmetrics" in accept:
                self._refresh_slo_gauges()
                return _TextPayload(prometheus_text(self._metrics))
            return self._metrics_dump()
        if path == "/debug/requests":
            return {
                "schema": "repro.serve-debug-requests",
                "version": 1,
                "requests": self._flight.recent(50),
                "slowest": self._flight.slowest(),
            }
        if path == "/debug/inflight":
            return {
                "schema": "repro.serve-debug-inflight",
                "version": 1,
                "admitted": self._admitted,
                "inflight": self._flight.inflight(),
            }
        request_id = path[len(_DEBUG_REQUEST_PREFIX):]
        found = self._flight.get(request_id)
        if found is None:
            raise ProtocolError(
                f"no retained request {request_id!r} (records and traces "
                "are bounded rings; it may have been evicted)",
                code="not-found",
                status=404,
            )
        return dict(
            {"schema": "repro.serve-debug-request", "version": 1}, **found
        )

    async def _handle_compute(self, path: str, body: bytes, request_id: str):
        if self._draining:
            raise ProtocolError(
                "server is draining", code="shutting-down", status=503
            )
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise ProtocolError(
                f"request body is not valid JSON: {e}",
                code="invalid-request",
                status=400,
            ) from None
        request = validate_partition_request(
            decoded, force_simulate=(path == "/v1/simulate")
        )
        key = request.canonical_key

        cached = self._response_cache.get(key)
        if cached is not None:
            self._response_cache.move_to_end(key)
            self._metrics.counter("serve.response_cache.hits").inc()
            return 200, cached, {"X-Repro-Cache": "hit"}, None
        self._metrics.counter("serve.response_cache.misses").inc()

        extra = {"X-Repro-Cache": "miss"}
        task = self._inflight.get(key)
        if task is not None:
            self._metrics.counter("serve.coalesced").inc()
            extra["X-Repro-Cache"] = "coalesced"
        else:
            if self._admitted >= self.config.queue_depth:
                self._metrics.counter("serve.rejected").inc()
                raise ProtocolError(
                    f"admission queue is full ({self.config.queue_depth} "
                    "requests queued or running); retry shortly",
                    code="overloaded",
                    status=429,
                )
            self._admitted += 1
            self._metrics.gauge("serve.inflight").set(self._admitted)
            # The leader's request id travels to the worker; coalesced
            # followers share its result (and therefore its span trees).
            task = asyncio.ensure_future(self._compute(request, request_id))
            self._inflight[key] = task
            task.add_done_callback(lambda _t, key=key: self._compute_done(key))

        deadline_s = (request.deadline_ms or self.config.deadline_ms) / 1000.0
        try:
            # shield(): a timed-out waiter must not cancel the shared
            # computation out from under coalesced followers (and the
            # response cache, which the retry will hit).
            report, meta = await asyncio.wait_for(
                asyncio.shield(task), timeout=deadline_s
            )
        except asyncio.TimeoutError:
            self._metrics.counter("serve.deadline_exceeded").inc()
            raise ProtocolError(
                f"request did not complete within {deadline_s * 1000:.0f} ms "
                "(the computation continues and will populate the cache)",
                code="deadline-exceeded",
                status=504,
            ) from None
        return 200, report, extra, meta

    async def _compute(self, request, request_id: str) -> tuple[dict, dict]:
        report, meta = await self._batcher.submit(request, request_id)
        if self.config.response_cache_size > 0:
            self._response_cache[request.canonical_key] = report
            self._response_cache.move_to_end(request.canonical_key)
            while len(self._response_cache) > self.config.response_cache_size:
                self._response_cache.popitem(last=False)
        return report, meta

    def _compute_done(self, key: tuple) -> None:
        self._inflight.pop(key, None)
        self._admitted -= 1
        self._metrics.gauge("serve.inflight").set(self._admitted)

    # -- GET endpoints ---------------------------------------------------
    def _healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "ready": bool(self._ready and not self._draining),
            "version": __version__,
            "uptime_s": round(time.monotonic() - self.started_at, 3)
            if self.started_at is not None
            else 0.0,
            "inflight": self._admitted,
            "queue_depth": self.config.queue_depth,
            "workers": self.config.workers,
            "response_cache_entries": len(self._response_cache),
        }

    def _refresh_slo_gauges(self) -> None:
        """Recompute SLO burn-rate gauges from the flight-recorder window.

        Burn rates are scrape-time quantities (a ratio over a trailing
        window), so they are refreshed on every ``/metrics`` read rather
        than on every request.
        """
        burn = self._flight.burn_rates(
            slo_p99_ms=self.config.slo_p99_ms,
            slo_error_rate=self.config.slo_error_rate,
        )
        self._metrics.gauge("serve.slo.error_burn").set(burn["error_burn"])
        self._metrics.gauge("serve.slo.latency_burn").set(burn["latency_burn"])
        self._metrics.gauge("serve.slo.error_rate").set(burn["error_rate"])
        self._metrics.gauge("serve.slo.window_requests").set(burn["window_requests"])

    def _metrics_dump(self) -> dict:
        self._refresh_slo_gauges()
        return {
            "schema": "repro.serve-metrics",
            "version": 1,
            "generated_by": f"repro {__version__}",
            "server": self._healthz(),
            "metrics": self._metrics.snapshot(),
            "caches": analytic_cache_stats(),
            "slo": {
                "p99_ms": self.config.slo_p99_ms,
                "error_rate": self.config.slo_error_rate,
            },
        }


# ----------------------------------------------------------------------
# Embedding and CLI


class EmbeddedServer:
    """A :class:`PartitionServer` on a background thread.

    For tests and in-process embedding: ``start()`` returns once the
    port is bound; ``stop()`` runs the full graceful drain.  Usable as a
    context manager.
    """

    def __init__(self, config: ServeConfig | None = None, *, server=None):
        # ``server`` lets subclasses (EmbeddedRouter) reuse the thread
        # harness around any object with the same lifecycle protocol
        # (start / serve_until_shutdown / signal_shutdown / port).
        self.server = server if server is not None else PartitionServer(config)
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def start(self) -> "EmbeddedServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise RuntimeError("embedded server did not start within 30s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as e:
                self._startup_error = e
                self._started.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException:
            if not self._started.is_set():  # pragma: no cover - surfaced in start()
                self._started.set()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.signal_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> "EmbeddedServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def build_serve_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-lived partition-as-a-service HTTP server: "
        "POST /v1/partition, POST /v1/simulate, GET /healthz, GET /metrics.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port (0 = ephemeral; see --port-file)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="compute worker processes (>= 1)")
    p.add_argument("--queue-depth", type=int, default=64, metavar="N",
                   help="max computations queued or running before the "
                   "server sheds load with 429 (>= 1)")
    p.add_argument("--batch-window-ms", type=float, default=2.0, metavar="MS",
                   help="micro-batching window for pool dispatch")
    p.add_argument("--max-batch", type=int, default=8, metavar="N",
                   help="max requests per pool batch")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="warm-start the analytic caches from DIR at startup "
                   "and flush them there on shutdown; defaults to "
                   "$REPRO_CACHE_DIR when that is set")
    p.add_argument("--response-cache", type=int, default=256, metavar="N",
                   help="completed-response LRU size (0 disables)")
    p.add_argument("--deadline-ms", type=int, default=60_000, metavar="MS",
                   help="default per-request deadline")
    p.add_argument("--drain-s", type=float, default=10.0, metavar="S",
                   help="max seconds to wait for in-flight work on shutdown")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--slo-p99-ms", type=float, default=1000.0, metavar="MS",
                   help="latency SLO target: p99 of request latency "
                   "(feeds the serve.slo.latency_burn gauge)")
    p.add_argument("--slo-error-rate", type=float, default=0.01, metavar="RATE",
                   help="error-budget SLO: allowed 5xx fraction "
                   "(feeds the serve.slo.error_burn gauge)")
    p.add_argument("--flight-capacity", type=int, default=512, metavar="N",
                   help="per-request flight-recorder ring size")
    p.add_argument("--plan-cache", action="store_true",
                   help="solve the Sec 3.6 closed forms once per loop "
                   "structure and instantiate cached plans per request "
                   "(falls back to the numeric optimizer when a structure "
                   "has no closed form)")
    p.add_argument("--cache-exchange-s", type=float, default=None, metavar="S",
                   help="with --cache-dir: every S seconds, snapshot this "
                   "replica's analytic-cache deltas into the shared cache "
                   "directory and absorb peers' entries (cross-replica "
                   "cache exchange for multi-replica serving)")
    p.add_argument("--opt-budget", type=float, default=None, metavar="SECONDS",
                   help="wall-time budget per parallelepiped portfolio "
                   "member (SLSQP, simulated annealing) in partition "
                   "workers; unset keeps responses bit-reproducible")
    p.add_argument("--no-request-traces", action="store_true",
                   help="do not ship worker span trees back per request "
                   "(/debug/requests/<id> loses stitched traces; used to "
                   "measure telemetry overhead)")
    p.add_argument("--log-level", default=None,
                   choices=["debug", "info", "warning", "error"])
    return p


def serve_main(argv: list[str] | None = None, *, out=None) -> int:
    """Entry point for ``repro serve``."""
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.queue_depth < 1:
        parser.error(f"--queue-depth must be >= 1, got {args.queue_depth}")
    if args.max_batch < 1:
        parser.error(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.log_level:
        configure_logging(args.log_level)
    out = out or sys.stdout
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        cache_dir=args.cache_dir or os.environ.get("REPRO_CACHE_DIR"),
        response_cache_size=args.response_cache,
        deadline_ms=args.deadline_ms,
        drain_s=args.drain_s,
        port_file=args.port_file,
        slo_p99_ms=args.slo_p99_ms,
        slo_error_rate=args.slo_error_rate,
        flight_capacity=args.flight_capacity,
        trace_requests=not args.no_request_traces,
        plan_cache=args.plan_cache,
        opt_budget_s=args.opt_budget,
        cache_exchange_s=args.cache_exchange_s,
    )

    async def run() -> None:
        server = PartitionServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.signal_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(
            f"serve: listening on http://{config.host}:{server.port} "
            f"(workers={config.workers}, queue-depth={config.queue_depth})",
            file=out,
            flush=True,
        )
        await server.serve_until_shutdown()
        print("serve: drained, bye", file=out, flush=True)

    try:
        asyncio.run(run())
    except OSError as e:
        print(f"error: cannot listen on {config.host}:{config.port}: {e}", file=out)
        return 1
    return 0
