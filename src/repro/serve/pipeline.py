"""Worker-side request execution: a validated request → a run report.

:func:`execute_request` is the one function that turns a
:class:`~repro.serve.protocol.PartitionRequest` into the same
schema-versioned ``repro.run-report`` document the one-shot CLI writes
for ``--json-report`` — same span names, same report sections, same
``program`` keys — so a served response is byte-identical (timings
aside) to a CLI run of the same program.
``tests/test_serve_differential.py`` holds that equivalence.

The module is imported by the server's process-pool children
(:mod:`repro.serve.batching` submits :func:`run_batch`), so everything
here must be picklable by reference and safe to run serially in a
long-lived worker: the tracer is reset per request (span lists must not
accumulate across requests), and analytic-cache entries computed by the
worker are shipped back *incrementally* so the parent can persist them
and warm future workers without re-serialising the whole table on every
batch.

Each batch item carries the request id the server minted, and each
outcome returns a *compute meta* — worker pid, measured compute seconds,
and (when trace shipping is on) the serialized span trees the request
produced, with the request id stamped on every root — so the server can
stitch one cross-process trace per request without the report body
changing by a byte.
"""

from __future__ import annotations

import os
import time

from ..core.partitioner import LoopPartitioner
from ..core.plan import DEFAULT_PLAN_CACHE
from ..exceptions import ReproError
from ..lang import lower_nest, parse_program
from ..lattice import (
    DEFAULT_FOOTPRINT_TABLE,
    DEFAULT_LATTICE_CACHE,
    analytic_cache_stats,
)
from ..obs import build_report, get_tracer, span
from ..sim import Machine, MachineConfig, simulate_nest
from .protocol import PartitionRequest, ProtocolError

__all__ = ["execute_request", "run_batch", "init_worker", "prewarm_worker"]


def execute_request(request: PartitionRequest) -> dict:
    """Run the full pipeline for one request; returns the run report.

    Raises :class:`~repro.serve.protocol.ProtocolError` for declared
    pipeline failures (unparsable source, unbound symbols, infeasible
    optimisation) so callers can map them to a 422 without pattern-
    matching exception types.
    """
    tracer = get_tracer()
    tracer.reset()  # the report's spans describe only this request
    if request.program == "flow":
        from ..flow import run_flow

        try:
            return run_flow(
                request.source,
                processors=request.processors,
                bindings=dict(request.bindings),
                strategy=request.strategy,
                method=request.method,
                simulate=request.simulate,
                sweeps=request.sweeps,
                cache=DEFAULT_LATTICE_CACHE,
                plan_cache=DEFAULT_PLAN_CACHE if _PLAN_ENABLED else None,
                opt_budget_s=_OPT_BUDGET_S,
                label=request.label,
                caches=analytic_cache_stats,
            )
        except ReproError as e:
            raise ProtocolError(str(e), code="pipeline-error") from e
    try:
        with span("lang.parse"):
            program = parse_program(request.source)
        if not program.nests:
            raise ProtocolError(
                "no loop nests found in 'source'", code="pipeline-error", field="source"
            )
        node = program.nests[0]
        nest = lower_nest(node, dict(request.bindings))
        part = LoopPartitioner(nest, request.processors)
        result = part.partition(
            method=request.method,
            cache=DEFAULT_LATTICE_CACHE,
            plan_cache=DEFAULT_PLAN_CACHE if _PLAN_ENABLED else None,
            opt_budget_s=_OPT_BUDGET_S,
        )
        sim = None
        if request.simulate:
            machine = Machine(MachineConfig(processors=request.processors))
            sim = simulate_nest(
                nest,
                result.tile,
                request.processors,
                sweeps=request.sweeps,
                machine=machine,
                engine=request.engine,
            )
    except ProtocolError:
        raise
    except ReproError as e:
        raise ProtocolError(str(e), code="pipeline-error") from e
    return build_report(
        processors=request.processors,
        partition=result,
        sim=sim,
        program={
            "source": request.label if request.label is not None else "<request>",
            "processors": request.processors,
            "bindings": dict(request.bindings),
            "extents": nest.space.extents.tolist(),
            "iterations": int(nest.space.volume),
            "method": request.method,
            "sweeps": request.sweeps,
        },
        caches=analytic_cache_stats(),
    )


# ----------------------------------------------------------------------
# Process-pool plumbing (module-level so the pool can pickle by reference)

#: Cache keys this worker already shipped to the parent; only the delta
#: travels with each batch result.
_shipped_lattice: set = set()
_shipped_footprint: set = set()
_shipped_plan: set = set()

#: Whether this worker routes theorem-4 optimisation through the plan
#: cache (set by :func:`init_worker` from the server's ``--plan-cache``).
_PLAN_ENABLED = False

#: Per-member wall-time budget for the parallelepiped portfolio (set by
#: :func:`init_worker` from the server's ``--opt-budget``); ``None``
#: keeps partition responses bit-reproducible.
_OPT_BUDGET_S: float | None = None

#: Plan-cache counter snapshot at the last ship-back, so each batch
#: result carries only the delta accrued since.
_plan_stats_base: dict = {}


def init_worker(
    cache_dir: str | None = None,
    plan_cache: bool = False,
    opt_budget_s: float | None = None,
) -> None:
    """Pool initializer: hydrate the child's analytic caches.

    Under the ``fork`` start method children inherit the parent's warm
    caches for free; under ``spawn`` they start cold, so the warm-start
    snapshot is loaded explicitly.  Entries present at startup are marked
    shipped — the parent already has them.  ``plan_cache`` turns on the
    structure-keyed plan tier for every request this worker runs;
    ``opt_budget_s`` caps each parallelepiped portfolio member's wall
    time for every request this worker runs.
    """
    global _PLAN_ENABLED, _plan_stats_base, _OPT_BUDGET_S
    _PLAN_ENABLED = bool(plan_cache)
    _OPT_BUDGET_S = opt_budget_s
    # Test hook: REPRO_TEST_WORKER_INIT_DELAY_S stretches worker
    # hydration so the /healthz readiness window is observable.
    delay = os.environ.get("REPRO_TEST_WORKER_INIT_DELAY_S")
    if delay:
        try:
            time.sleep(float(delay))
        except ValueError:
            pass
    if cache_dir:
        from ..lattice.persist import load_caches

        load_caches(cache_dir)
    _shipped_lattice.update(k for k, _ in DEFAULT_LATTICE_CACHE.export_entries())
    _shipped_footprint.update(k for k, _ in DEFAULT_FOOTPRINT_TABLE.export_entries())
    _shipped_plan.update(k for k, _ in DEFAULT_PLAN_CACHE.export_entries())
    _plan_stats_base = DEFAULT_PLAN_CACHE.export_stats()


def prewarm_worker() -> int:
    """No-op pool task: forces the worker process to exist and finish
    :func:`init_worker` (cache hydration) before it returns.  The server
    submits one per worker at startup and flips ``/healthz`` ``ready``
    once all complete."""
    return os.getpid()


def _plan_delta() -> dict:
    """Fresh plan entries + counter deltas since the last ship-back."""
    global _plan_stats_base
    entries = _fresh_entries(DEFAULT_PLAN_CACHE, _shipped_plan)
    now = DEFAULT_PLAN_CACHE.export_stats()
    base = _plan_stats_base
    stats = {
        "hits": now["hits"] - base.get("hits", 0),
        "misses": now["misses"] - base.get("misses", 0),
        "fallbacks": now["fallbacks"] - base.get("fallbacks", 0),
        "fallback_reasons": {
            reason: n - base.get("fallback_reasons", {}).get(reason, 0)
            for reason, n in now["fallback_reasons"].items()
            if n - base.get("fallback_reasons", {}).get(reason, 0)
        },
    }
    _plan_stats_base = now
    return {"entries": entries, "stats": stats}


def _fresh_entries(cache, shipped: set) -> list:
    fresh = [(k, v) for k, v in cache.export_entries() if k not in shipped]
    shipped.update(k for k, _ in fresh)
    return fresh


def _compute_meta(request_id: str | None, compute_s: float, ship_traces: bool) -> dict:
    """Per-request telemetry shipped back alongside the outcome.

    The span trees are re-serialized from the tracer (independent dicts
    from the ones embedded in the report) and stamped with the request
    id, so stitching never mutates — or depends on — the report body.
    """
    meta: dict = {
        "request_id": request_id,
        "worker_pid": os.getpid(),
        "compute_s": compute_s,
    }
    if ship_traces:
        spans = get_tracer().to_dicts()
        if request_id is not None:
            for root in spans:
                root.setdefault("attrs", {})["request_id"] = request_id
        meta["spans"] = spans
    return meta


def run_batch(
    items: list[tuple[PartitionRequest, str | None]],
    ship_traces: bool = True,
) -> tuple[list[tuple[str, dict, dict]], list, list, dict]:
    """Execute a micro-batch of requests in this worker process.

    ``items`` pairs each request with the server-minted request id.
    Returns ``(outcomes, new_lattice_entries, new_footprint_entries,
    plan_delta)`` where each outcome is ``("ok", report, meta)`` or
    ``("error", payload, meta)`` with ``payload`` in the protocol's
    error shape plus a ``status`` the server strips before sending,
    ``meta`` the telemetry of :func:`_compute_meta`, and ``plan_delta``
    the plan cache's fresh entries and counter deltas
    (``{"entries": [...], "stats": {...}}``).  Exceptions never escape:
    one poisoned request must not take down its batch-mates (their
    futures would all fail) or the worker.
    """
    outcomes: list[tuple[str, dict, dict]] = []
    for request, request_id in items:
        t0 = time.perf_counter()
        try:
            kind, payload = "ok", execute_request(request)
        except ProtocolError as e:
            payload = e.to_payload()
            payload["status"] = e.status
            kind = "error"
        except Exception as e:  # pragma: no cover - worker safety net
            from .protocol import error_payload

            payload = error_payload("internal-error", f"{type(e).__name__}: {e}")
            payload["status"] = 500
            kind = "error"
        meta = _compute_meta(request_id, time.perf_counter() - t0, ship_traces)
        outcomes.append((kind, payload, meta))
    return (
        outcomes,
        _fresh_entries(DEFAULT_LATTICE_CACHE, _shipped_lattice),
        _fresh_entries(DEFAULT_FOOTPRINT_TABLE, _shipped_footprint),
        _plan_delta(),
    )
