"""``repro route`` — the multi-replica front tier (consistent-hash router).

The paper's whole pipeline is per-loop-shape: the Sec 3.6 closed forms
and Theorem-2/4 cost terms depend only on the canonical structure of the
nest, which is exactly what the plan cache and the lattice caches key
on.  That makes the serve tier ideal for *shard affinity*: route every
canonical request key to a fixed replica, and that replica's response
LRU, plan cache, and warm lattice caches stay hot on its slice of the
keyspace.  :class:`RouterServer` is that front tier:

* computes the same canonical request key the replica's response LRU
  uses (:attr:`~repro.serve.protocol.PartitionRequest.canonical_key`)
  and **rendezvous-hashes** it across the configured replicas — removing
  a replica deterministically remaps only *its* keys onto the survivors,
  every other key keeps its shard (and its warm caches);
* tracks per-replica health via ``/healthz`` (consecutive probe or
  forward failures eject a replica; consecutive ready probes re-admit
  it) and routes only to replicas that are healthy **and** ready
  (worker pool warm-hydrated);
* forwards request and response bodies byte-for-byte over bounded
  keep-alive connection pools
  (:class:`~repro.serve.client.AsyncConnectionPool`), so a response
  through the router is byte-identical to one from the replica;
* retries a failed forward on the next replica in rendezvous order, so
  a replica killed mid-request costs a re-forward, not a dropped
  request;
* aggregates ``/metrics`` (JSON and merged Prometheus text, each
  replica's series labeled ``replica="host:port"``) and ``/debug``
  across the fleet, and propagates ``X-Repro-Request-Id`` end to end —
  ``/debug/requests/<id>`` grafts the replica's stitched trace under
  the router's ``serve.route`` span, so ``repro top`` / ``repro trace``
  pointed at the router see the whole cross-process path including the
  routing hop.

Cross-replica cache exchange is the replicas' job, not the router's:
point every replica at one shared ``--cache-dir`` and give them a
``--cache-exchange-s`` period, and each periodically snapshots its
plan/lattice deltas through the union-merge lockfile protocol in
:mod:`repro.lattice.persist` and absorbs its peers' — a cold or newly
re-admitted replica warms from the cluster instead of from scratch.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import signal
import sys
import time
import uuid

from .. import __version__
from ..obs import (
    FlightRecorder,
    configure_logging,
    get_logger,
    get_registry,
    prometheus_text_from_snapshot,
)
from ..obs.export import PROMETHEUS_CONTENT_TYPE
from .client import AsyncConnectionPool, ServeError
from .protocol import (
    ProtocolError,
    error_payload,
    validate_partition_request,
    validate_request_id,
)
from .server import (
    EmbeddedServer,
    _encode_response,
    _HttpError,
    _read_request,
    _STATUS_TEXT,
    _TextPayload,
)

__all__ = [
    "RouterConfig",
    "RouterServer",
    "EmbeddedRouter",
    "rendezvous_order",
    "route_main",
]

logger = get_logger("serve.cluster")

_POST_ROUTES = ("/v1/partition", "/v1/simulate")
_GET_ROUTES = ("/healthz", "/metrics", "/debug/requests", "/debug/inflight")
_DEBUG_REQUEST_PREFIX = "/debug/requests/"

#: Response headers forwarded from replica to client verbatim.
_PASSTHROUGH_HEADERS = ("x-repro-cache", "retry-after", "content-type")


def rendezvous_order(key: str, addresses: list[str]) -> list[str]:
    """Replicas by descending rendezvous (highest-random-weight) score.

    Each ``(address, key)`` pair hashes independently, so removing an
    address reshuffles nothing: every key's surviving candidates keep
    their relative order, and only the removed address's keys move (each
    to its own second choice).  That is exactly the stability the
    per-replica response/plan caches want during ejection and re-admit.
    """
    def score(address: str) -> bytes:
        return hashlib.sha256(
            address.encode("utf-8") + b"\x00" + key.encode("utf-8")
        ).digest()

    return sorted(addresses, key=score, reverse=True)


class RouterConfig:
    """Tunables of one router instance (CLI flags map 1:1)."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8790,
        replicas: tuple[str, ...] = (),
        pool_size: int = 8,
        health_interval_s: float = 0.5,
        health_timeout_s: float = 2.0,
        eject_after: int = 2,
        readmit_after: int = 2,
        forward_timeout_s: float = 120.0,
        port_file: str | None = None,
        flight_capacity: int = 512,
        slo_p99_ms: float = 1000.0,
        slo_error_rate: float = 0.01,
    ):
        if not replicas:
            raise ValueError("router needs at least one replica address")
        seen = set()
        parsed = []
        for address in replicas:
            address = address.strip()
            host_part, sep, port_part = address.rpartition(":")
            if not sep or not host_part:
                raise ValueError(f"replica address must be HOST:PORT, got {address!r}")
            try:
                replica_port = int(port_part)
            except ValueError:
                raise ValueError(
                    f"replica address must be HOST:PORT, got {address!r}"
                ) from None
            if address in seen:
                raise ValueError(f"duplicate replica address {address!r}")
            seen.add(address)
            parsed.append((address, host_part, replica_port))
        self.host = host
        self.port = port
        self.replicas = tuple(parsed)
        self.pool_size = pool_size
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.eject_after = max(1, eject_after)
        self.readmit_after = max(1, readmit_after)
        self.forward_timeout_s = forward_timeout_s
        self.port_file = port_file
        self.flight_capacity = flight_capacity
        self.slo_p99_ms = slo_p99_ms
        self.slo_error_rate = slo_error_rate


class Replica:
    """Router-side state for one backend replica."""

    def __init__(self, address: str, host: str, port: int, *, pool_size: int):
        self.address = address
        self.host = host
        self.port = port
        self.pool = AsyncConnectionPool(host, port, size=pool_size)
        self.healthy = True
        self.ready = False  # set by the first successful probe
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.ejections = 0
        self.last_error: str | None = None

    @property
    def routable(self) -> bool:
        return self.healthy and self.ready

    def to_dict(self) -> dict:
        return {
            "address": self.address,
            "healthy": self.healthy,
            "ready": self.ready,
            "consecutive_failures": self.consecutive_failures,
            "ejections": self.ejections,
            "last_error": self.last_error,
            "pool_connects": self.pool.connects,
        }


#: Errors that mean "this replica did not produce a response".
_FORWARD_ERRORS = (
    OSError,
    ConnectionError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
)


class RouterServer:
    """The front tier: owns the listener, replica pools, health loop."""

    def __init__(self, config: RouterConfig):
        self.config = config
        self.port: int | None = None
        self.started_at: float | None = None
        self._server: asyncio.base_events.Server | None = None
        self._replicas: dict[str, Replica] = {
            address: Replica(address, host, port, pool_size=config.pool_size)
            for address, host, port in config.replicas
        }
        self._metrics = get_registry()
        self._flight = FlightRecorder(max(config.flight_capacity, 1))
        self._inflight = 0
        self._requests_served = 0
        self._shutdown_event: asyncio.Event | None = None
        self._draining = False
        self._health_task: asyncio.Task | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Probe the fleet once, bind the listener, start health probes."""
        await self._probe_all()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=65536,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        self._health_task = asyncio.create_task(self._health_loop())
        self._refresh_fleet_gauges()
        if self.config.port_file:
            with open(self.config.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{self.port}\n")
        logger.info(
            "routing on %s:%d across %d replica(s): %s",
            self.config.host,
            self.port,
            len(self._replicas),
            ", ".join(self._replicas),
        )

    def signal_shutdown(self) -> None:
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def serve_until_shutdown(self) -> None:
        assert self._shutdown_event is not None, "start() first"
        await self._shutdown_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        if self._server is None:
            return
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for replica in self._replicas.values():
            await replica.pool.close()
        logger.info("router drained; %d requests served", self._requests_served)

    # -- health tracking -------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            await self._probe_all()

    async def _probe_all(self) -> None:
        await asyncio.gather(
            *(self._probe(r) for r in self._replicas.values()),
            return_exceptions=True,
        )
        self._refresh_fleet_gauges()

    async def _probe(self, replica: Replica) -> None:
        try:
            status, _headers, body = await asyncio.wait_for(
                replica.pool.request_raw("GET", "/healthz"),
                timeout=self.config.health_timeout_s,
            )
            doc = json.loads(body.decode("utf-8"))
            alive = status == 200 and doc.get("status") == "ok"
            # Pre-readiness servers (and anything that predates the
            # ready flag) count as ready once alive.
            ready = bool(doc.get("ready", True))
        except _FORWARD_ERRORS + (ServeError, ValueError) as e:
            self._note_failure(replica, f"healthz: {type(e).__name__}: {e}")
            return
        if not alive:
            self._note_failure(replica, f"healthz: status {status}, {doc.get('status')}")
            return
        replica.ready = ready
        replica.last_error = None
        replica.consecutive_failures = 0
        if ready:
            replica.consecutive_successes += 1
            if (
                not replica.healthy
                and replica.consecutive_successes >= self.config.readmit_after
            ):
                replica.healthy = True
                self._metrics.counter(
                    "route.readmissions", replica=replica.address
                ).inc()
                logger.info("re-admitted replica %s", replica.address)
        else:
            # Alive but cold (worker pool still hydrating): not a
            # failure, but not routable either, and not progress toward
            # re-admission.
            replica.consecutive_successes = 0

    def _note_failure(self, replica: Replica, error: str) -> None:
        replica.consecutive_successes = 0
        replica.consecutive_failures += 1
        replica.last_error = error
        if replica.healthy and replica.consecutive_failures >= self.config.eject_after:
            replica.healthy = False
            replica.ready = False
            replica.ejections += 1
            self._metrics.counter("route.ejections", replica=replica.address).inc()
            logger.warning(
                "ejected replica %s after %d consecutive failures (%s)",
                replica.address,
                replica.consecutive_failures,
                error,
            )
        self._refresh_fleet_gauges()

    def _refresh_fleet_gauges(self) -> None:
        self._metrics.gauge("route.replicas_total").set(len(self._replicas))
        self._metrics.gauge("route.replicas_routable").set(
            sum(1 for r in self._replicas.values() if r.routable)
        )

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await asyncio.wait_for(_read_request(reader), timeout=60.0)
                except asyncio.TimeoutError:
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except _HttpError as e:
                    writer.write(
                        _encode_response(
                            e.status,
                            error_payload("invalid-request", str(e)),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                response = await self._route(method, path, headers, body)
                writer.write(self._encode(response, keep_alive=keep_alive))
                await writer.drain()
                self._requests_served += 1
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    @staticmethod
    def _encode(response, *, keep_alive: bool) -> bytes:
        status, payload, extra = response
        if isinstance(payload, (bytes, bytearray)):
            content_type = extra.pop("Content-Type", "application/json")
            lines = [
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(payload)}",
                f"Server: repro-route/{__version__}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}",
            ]
            for name, value in extra.items():
                lines.append(f"{name}: {value}")
            return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + bytes(payload)
        return _encode_response(status, payload, keep_alive=keep_alive, extra_headers=extra)

    # -- routing ---------------------------------------------------------
    async def _route(self, method: str, path: str, headers: dict[str, str], body: bytes):
        """Dispatch one request; returns ``(status, payload, extra_headers)``.

        ``payload`` is a dict (router-generated JSON), a
        :class:`_TextPayload`, or raw ``bytes`` forwarded verbatim from
        a replica.
        """
        if path.startswith(_DEBUG_REQUEST_PREFIX):
            endpoint = "/debug/requests/<id>"
        else:
            endpoint = path if path in _POST_ROUTES + _GET_ROUTES else "other"
        self._metrics.counter("route.requests", endpoint=endpoint).inc()
        t0 = time.perf_counter()
        extra: dict[str, str] = {}
        record = None
        replica_used = None
        error_code = None
        try:
            request_id = validate_request_id(headers.get("x-repro-request-id"))
            if request_id is None:
                request_id = uuid.uuid4().hex[:16]
            extra["X-Repro-Request-Id"] = request_id
            if path in _POST_ROUTES:
                if method != "POST":
                    raise ProtocolError(
                        f"{path} only supports POST", code="method-not-allowed", status=405
                    )
                record = self._flight.begin(request_id, endpoint)
                self._inflight += 1
                try:
                    status, payload, extra_f, replica_used, route_span = (
                        await self._forward_compute(path, body, request_id)
                    )
                finally:
                    self._inflight -= 1
                extra.update(extra_f)
            elif path in _GET_ROUTES or endpoint == "/debug/requests/<id>":
                if method != "GET":
                    raise ProtocolError(
                        f"{path} only supports GET", code="method-not-allowed", status=405
                    )
                status, payload = 200, await self._handle_get(path, headers)
                route_span = None
            else:
                raise ProtocolError(
                    f"no such endpoint {path!r}", code="not-found", status=404
                )
        except ProtocolError as e:
            status, payload, error_code = e.status, e.to_payload(), e.code
            route_span = None
            if e.status == 429:
                extra.setdefault("Retry-After", "1")
        except Exception as e:  # pragma: no cover - route safety net
            logger.exception("unhandled router error serving %s %s", method, path)
            status, error_code = 500, "internal-error"
            payload = error_payload("internal-error", f"{type(e).__name__}: {e}")
            route_span = None
        total_ms = (time.perf_counter() - t0) * 1000.0
        if record is not None:
            self._finish_flight(
                record,
                status=status,
                cache=extra.get("X-Repro-Cache"),
                total_ms=total_ms,
                error_code=error_code,
                replica=replica_used,
                route_span=route_span,
                endpoint=endpoint,
            )
        self._metrics.counter(
            "route.responses", endpoint=endpoint, status=str(status)
        ).inc()
        self._metrics.latency_histogram("route.latency_ms", endpoint=endpoint).observe(
            total_ms
        )
        return status, payload, extra

    async def _forward_compute(self, path: str, body: bytes, request_id: str):
        """Pick the shard, forward the raw request, fail over on error.

        Returns ``(status, raw_body, extra_headers, replica_address,
        route_span)``.  The request is validated *here* so malformed
        requests get their 400/422 from the router without burning a
        replica round trip — and so the shard key is the same canonical
        key the replica's response cache will use.
        """
        if self._draining:
            raise ProtocolError("router is draining", code="shutting-down", status=503)
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise ProtocolError(
                f"request body is not valid JSON: {e}",
                code="invalid-request",
                status=400,
            ) from None
        request = validate_partition_request(
            decoded, force_simulate=(path == "/v1/simulate")
        )
        shard_key = repr(request.canonical_key)
        order = rendezvous_order(shard_key, list(self._replicas))
        candidates = [a for a in order if self._replicas[a].routable]
        if not candidates:
            raise ProtocolError(
                "no healthy replicas available", code="no-replicas", status=503
            )
        fwd_headers = {
            "Content-Type": "application/json",
            "X-Repro-Request-Id": request_id,
        }
        attempts = 0
        last_error = "?"
        for address in candidates:
            replica = self._replicas[address]
            attempts += 1
            t0 = time.perf_counter()
            try:
                status, rheaders, rbody = await asyncio.wait_for(
                    replica.pool.request_raw("POST", path, body, fwd_headers),
                    timeout=self.config.forward_timeout_s,
                )
            except _FORWARD_ERRORS + (ServeError,) as e:
                forward_ms = (time.perf_counter() - t0) * 1000.0
                last_error = f"{type(e).__name__}: {e}"
                self._metrics.counter("route.forward_errors", replica=address).inc()
                self._note_failure(replica, f"forward: {last_error}")
                logger.warning(
                    "forward to %s failed after %.1f ms (%s); "
                    "trying next replica in rendezvous order",
                    address,
                    forward_ms,
                    last_error,
                )
                continue
            forward_ms = (time.perf_counter() - t0) * 1000.0
            replica.consecutive_failures = 0
            extra = {}
            for name in _PASSTHROUGH_HEADERS:
                if name in rheaders:
                    extra["-".join(p.capitalize() for p in name.split("-"))] = (
                        rheaders[name]
                    )
            extra["X-Repro-Replica"] = address
            if attempts > 1:
                self._metrics.counter("route.failovers").inc()
            route_span = {
                "name": "serve.route",
                "duration_s": round(forward_ms / 1000.0, 9),
                "attrs": {"replica": address, "attempts": attempts},
            }
            return status, rbody, extra, address, route_span
        raise ProtocolError(
            f"all {attempts} routable replica(s) failed this request "
            f"(last: {last_error})",
            code="no-replicas",
            status=503,
        )

    def _finish_flight(
        self,
        record,
        *,
        status: int,
        cache: str | None,
        total_ms: float,
        error_code: str | None,
        replica: str | None,
        route_span: dict | None,
        endpoint: str,
    ) -> None:
        trace = None
        if route_span is not None:
            attrs = {
                "request_id": record.request_id,
                "endpoint": endpoint,
                "status": status,
                "router": True,
            }
            if cache is not None:
                attrs["cache"] = cache
            trace = {
                "name": "request",
                "duration_s": round(total_ms / 1000.0, 9),
                "attrs": attrs,
                "children": [route_span],
            }
        self._flight.finish(
            record,
            status=status,
            cache=cache,
            total_ms=round(total_ms, 3),
            error_code=error_code,
            trace=trace,
            replica=replica,
        )

    # -- GET endpoints ---------------------------------------------------
    async def _handle_get(self, path: str, headers: dict[str, str]):
        if path == "/healthz":
            return self._healthz()
        if path == "/metrics":
            accept = headers.get("accept", "")
            if "text/plain" in accept or "openmetrics" in accept:
                return _TextPayload(
                    prometheus_text_from_snapshot(
                        await self._merged_metric_entries()
                    ),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                )
            return await self._metrics_dump()
        if path == "/debug/requests":
            return {
                "schema": "repro.serve-debug-requests",
                "version": 1,
                "requests": self._flight.recent(50),
                "slowest": self._flight.slowest(),
            }
        if path == "/debug/inflight":
            return {
                "schema": "repro.serve-debug-inflight",
                "version": 1,
                "admitted": self._inflight,
                "inflight": self._flight.inflight(),
            }
        request_id = path[len(_DEBUG_REQUEST_PREFIX):]
        return await self._debug_request(request_id)

    async def _debug_request(self, request_id: str) -> dict:
        found = self._flight.get(request_id)
        if found is None:
            raise ProtocolError(
                f"no retained request {request_id!r} (records and traces "
                "are bounded rings; it may have been evicted)",
                code="not-found",
                status=404,
            )
        out = dict({"schema": "repro.serve-debug-request", "version": 1}, **found)
        record = out.get("record") or {}
        trace = out.get("trace")
        replica_address = record.get("replica")
        if trace is not None and replica_address in self._replicas:
            # Deep-copy before grafting: the stored trace must stay
            # router-only (the replica's retention is its own business).
            trace = json.loads(json.dumps(trace))
            replica_doc = await self._fetch_replica_json(
                self._replicas[replica_address], f"/debug/requests/{request_id}"
            )
            replica_trace = (replica_doc or {}).get("trace")
            if replica_trace is not None:
                for child in trace.get("children", []):
                    if child.get("name") == "serve.route":
                        child["children"] = [replica_trace]
                        break
            out["trace"] = trace
            if replica_doc and replica_doc.get("record"):
                out["replica_record"] = replica_doc["record"]
        return out

    def _healthz(self) -> dict:
        routable = sum(1 for r in self._replicas.values() if r.routable)
        return {
            "status": "draining" if self._draining else "ok",
            "ready": routable > 0 and not self._draining,
            "router": True,
            "version": __version__,
            "uptime_s": round(time.monotonic() - self.started_at, 3)
            if self.started_at is not None
            else 0.0,
            "inflight": self._inflight,
            "replicas_total": len(self._replicas),
            "replicas_routable": routable,
            "replicas": [r.to_dict() for r in self._replicas.values()],
        }

    async def _fetch_replica_json(self, replica: Replica, path: str) -> dict | None:
        try:
            status, _headers, body = await asyncio.wait_for(
                replica.pool.request_raw("GET", path),
                timeout=max(self.config.health_timeout_s, 10.0),
            )
            if status != 200:
                return None
            return json.loads(body.decode("utf-8"))
        except _FORWARD_ERRORS + (ServeError, ValueError):
            return None

    async def _replica_dumps(self) -> list[tuple[str, dict]]:
        """Every replica's ``/metrics`` JSON dump (unreachable → skipped)."""
        replicas = list(self._replicas.values())
        docs = await asyncio.gather(
            *(self._fetch_replica_json(r, "/metrics") for r in replicas)
        )
        return [(r.address, doc) for r, doc in zip(replicas, docs) if doc]

    async def _merged_metric_entries(self, dumps=None) -> list[dict]:
        """Router ``route.*`` entries + replica entries labeled ``replica=``.

        The router's registry is filtered to its own ``route.*`` names so
        the merge is well-defined even when router and replicas share a
        process (the embedded test harness); each replica series gains a
        ``replica="host:port"`` label so same-named series from different
        replicas stay distinct under one TYPE header.
        """
        if dumps is None:
            dumps = await self._replica_dumps()
        entries = [
            e for e in self._metrics.snapshot() if e.get("name", "").startswith("route.")
        ]
        for address, dump in dumps:
            for entry in dump.get("metrics", []):
                entry = dict(entry)
                labels = dict(entry.get("labels") or {})
                labels["replica"] = address
                entry["labels"] = labels
                entries.append(entry)
        return entries

    async def _metrics_dump(self) -> dict:
        dumps = await self._replica_dumps()
        caches: dict = {}
        servers = []
        for address, dump in dumps:
            _merge_numeric(caches, dump.get("caches", {}))
            servers.append((address, dump.get("server", {})))
        health = self._healthz()
        server = {
            "status": health["status"],
            "ready": health["ready"],
            "router": True,
            "uptime_s": health["uptime_s"],
            "inflight": sum(s.get("inflight", 0) for _, s in servers),
            "workers": sum(s.get("workers", 0) for _, s in servers),
            "queue_depth": sum(s.get("queue_depth", 0) for _, s in servers),
            "replicas_total": health["replicas_total"],
            "replicas_routable": health["replicas_routable"],
        }
        return {
            "schema": "repro.serve-metrics",
            "version": 1,
            "generated_by": f"repro {__version__} (router)",
            "server": server,
            "metrics": await self._merged_metric_entries(dumps),
            "caches": caches,
            "replicas": [
                dict(self._replicas[a].to_dict(), server=s) for a, s in servers
            ],
            "slo": {
                "p99_ms": self.config.slo_p99_ms,
                "error_rate": self.config.slo_error_rate,
            },
        }


def _merge_numeric(into: dict, src: dict) -> dict:
    """Recursively sum numeric leaves of ``src`` into ``into``."""
    for key, value in src.items():
        if isinstance(value, dict):
            into[key] = _merge_numeric(
                into.get(key) if isinstance(into.get(key), dict) else {}, value
            )
        elif isinstance(value, bool):
            into.setdefault(key, value)
        elif isinstance(value, (int, float)):
            base = into.get(key, 0)
            into[key] = (base if isinstance(base, (int, float)) else 0) + value
        else:
            into.setdefault(key, value)
    return into


class EmbeddedRouter(EmbeddedServer):
    """A :class:`RouterServer` on a background thread (tests, embedding)."""

    def __init__(self, config: RouterConfig):
        super().__init__(server=RouterServer(config))


def build_route_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro route",
        description="Consistent-hash front tier over N repro serve replicas: "
        "shard-affine routing by canonical request key, health-tracked "
        "failover, merged /metrics and /debug.",
    )
    p.add_argument("--replicas", action="append", default=[], metavar="HOST:PORT",
                   help="backend replica address (repeatable, or one "
                   "comma-separated list)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8790,
                   help="TCP port (0 = ephemeral; see --port-file)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--pool-size", type=int, default=8, metavar="N",
                   help="max keep-alive connections per replica")
    p.add_argument("--health-interval-s", type=float, default=0.5, metavar="S",
                   help="seconds between /healthz probe rounds")
    p.add_argument("--health-timeout-s", type=float, default=2.0, metavar="S")
    p.add_argument("--eject-after", type=int, default=2, metavar="N",
                   help="consecutive probe/forward failures before a "
                   "replica is ejected")
    p.add_argument("--readmit-after", type=int, default=2, metavar="N",
                   help="consecutive ready probes before an ejected "
                   "replica is re-admitted")
    p.add_argument("--forward-timeout-s", type=float, default=120.0, metavar="S",
                   help="per-forward ceiling before failing over")
    p.add_argument("--flight-capacity", type=int, default=512, metavar="N")
    p.add_argument("--slo-p99-ms", type=float, default=1000.0, metavar="MS")
    p.add_argument("--slo-error-rate", type=float, default=0.01, metavar="RATE")
    p.add_argument("--log-level", default=None,
                   choices=["debug", "info", "warning", "error"])
    return p


def route_main(argv: list[str] | None = None, *, out=None) -> int:
    """Entry point for ``repro route``."""
    parser = build_route_parser()
    args = parser.parse_args(argv)
    addresses: list[str] = []
    for chunk in args.replicas:
        addresses.extend(a for a in chunk.split(",") if a.strip())
    if not addresses:
        parser.error("at least one --replicas HOST:PORT is required")
    if args.pool_size < 1:
        parser.error(f"--pool-size must be >= 1, got {args.pool_size}")
    if args.log_level:
        configure_logging(args.log_level)
    out = out or sys.stdout
    try:
        config = RouterConfig(
            host=args.host,
            port=args.port,
            replicas=tuple(addresses),
            pool_size=args.pool_size,
            health_interval_s=args.health_interval_s,
            health_timeout_s=args.health_timeout_s,
            eject_after=args.eject_after,
            readmit_after=args.readmit_after,
            forward_timeout_s=args.forward_timeout_s,
            port_file=args.port_file,
            flight_capacity=args.flight_capacity,
            slo_p99_ms=args.slo_p99_ms,
            slo_error_rate=args.slo_error_rate,
        )
    except ValueError as e:
        parser.error(str(e))

    async def run() -> None:
        router = RouterServer(config)
        await router.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, router.signal_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        print(
            f"route: listening on http://{config.host}:{router.port} "
            f"across {len(config.replicas)} replica(s)",
            file=out,
            flush=True,
        )
        await router.serve_until_shutdown()
        print("route: drained, bye", file=out, flush=True)

    try:
        asyncio.run(run())
    except OSError as e:
        print(f"error: cannot listen on {config.host}:{config.port}: {e}", file=out)
        return 1
    return 0
