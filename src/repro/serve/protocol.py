"""Wire protocol of the partition service.

The service speaks JSON over HTTP/1.1.  This module owns everything
about the *shape* of that conversation — request schemas, validation
with typed error payloads, and the canonical request key that request
coalescing and the response cache share — and deliberately knows nothing
about sockets or event loops, so the client, the server, and the tests
all validate against the same code.

Error payloads have a single stable shape::

    {"error": {"code": "<kebab-case>", "message": "...", "field": "..."}}

``code`` is machine-matchable (``invalid-request``, ``pipeline-error``,
``overloaded``, ``deadline-exceeded``, ``worker-died``,
``internal-error``, ``not-found``, ``method-not-allowed``,
``shutting-down``); ``field`` names the offending request field when one
exists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "MAX_BODY_BYTES",
    "METHODS",
    "ENGINES",
    "PROGRAMS",
    "STRATEGIES",
    "ProtocolError",
    "PartitionRequest",
    "validate_partition_request",
    "validate_request_id",
    "error_payload",
]

#: Largest accepted request body.  Doall sources are a few hundred bytes;
#: a megabyte leaves two orders of magnitude of headroom while bounding
#: what a client can make the server buffer.
MAX_BODY_BYTES = 1 << 20

METHODS = ("rectangular", "parallelepiped", "auto")
ENGINES = ("auto", "fast", "exact")
PROGRAMS = ("doall", "flow")
STRATEGIES = ("co", "independent")

_ALLOWED_FIELDS = {
    "source",
    "processors",
    "bindings",
    "method",
    "simulate",
    "sweeps",
    "engine",
    "program",
    "strategy",
    "label",
    "deadline_ms",
}

#: Hard ceilings on request size knobs: the service refuses work that a
#: single request could use to monopolise the machine, rather than
#: letting the admission queue back up behind it.
MAX_PROCESSORS = 4096
MAX_SWEEPS = 64
MAX_SOURCE_BYTES = 64 * 1024


class ProtocolError(Exception):
    """A request the service refuses, with its HTTP status and error code."""

    def __init__(
        self,
        message: str,
        *,
        code: str = "invalid-request",
        status: int = 422,
        field: str | None = None,
    ):
        super().__init__(message)
        self.code = code
        self.status = status
        self.field = field

    def to_payload(self) -> dict:
        return error_payload(self.code, str(self), field=self.field)


def error_payload(code: str, message: str, *, field: str | None = None) -> dict:
    err: dict = {"code": code, "message": message}
    if field is not None:
        err["field"] = field
    return {"error": err}


@dataclass(frozen=True)
class PartitionRequest:
    """A validated, normalised ``/v1/partition`` (or ``/v1/simulate``) request.

    ``bindings`` is a sorted tuple of pairs so the whole request is
    hashable; :attr:`canonical_key` identifies requests that must produce
    byte-identical responses — it is the coalescing and response-cache
    key, and deliberately excludes ``deadline_ms`` (a delivery concern,
    not a compute input).
    """

    source: str
    processors: int
    bindings: tuple[tuple[str, int], ...] = ()
    method: str = "rectangular"
    simulate: bool = False
    sweeps: int = 1
    engine: str = "auto"
    program: str = "doall"
    strategy: str = "co"
    label: str | None = None
    deadline_ms: int | None = None

    @property
    def canonical_key(self) -> tuple:
        return (
            self.source,
            self.processors,
            self.bindings,
            self.method,
            self.simulate,
            self.sweeps,
            self.engine,
            self.program,
            self.strategy,
            self.label,
        )

    def to_dict(self) -> dict:
        out: dict = {
            "source": self.source,
            "processors": self.processors,
            "bindings": dict(self.bindings),
            "method": self.method,
            "simulate": self.simulate,
            "sweeps": self.sweeps,
            "engine": self.engine,
            "program": self.program,
            "strategy": self.strategy,
        }
        if self.label is not None:
            out["label"] = self.label
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out


#: Caller-supplied request ids (``X-Repro-Request-Id``): tight charset so
#: ids are safe to echo in headers, URLs (``/debug/requests/<id>``) and
#: logs without quoting, bounded so a hostile client cannot bloat the
#: flight recorder.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def validate_request_id(value: str | None) -> str | None:
    """Validate an inbound request id header (``None`` passes through).

    Raises :class:`ProtocolError` (status 400) on a malformed id rather
    than silently minting a replacement — a caller that sets the header
    wants correlation, and a silently changed id would break it.
    """
    if value is None:
        return None
    if not _REQUEST_ID_RE.match(value):
        raise ProtocolError(
            "X-Repro-Request-Id must be 1-128 characters of [A-Za-z0-9._-]",
            code="invalid-request",
            status=400,
        )
    return value


def _require(condition: bool, message: str, *, field: str | None = None) -> None:
    if not condition:
        raise ProtocolError(message, field=field)


def _int_field(payload: dict, name: str, *, lo: int, hi: int, default=None):
    value = payload.get(name, default)
    if value is default and name not in payload:
        return default
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name!r} must be an integer",
        field=name,
    )
    _require(lo <= value <= hi, f"{name!r} must be in [{lo}, {hi}], got {value}", field=name)
    return value


def validate_partition_request(
    payload, *, force_simulate: bool = False
) -> PartitionRequest:
    """Validate a decoded JSON body into a :class:`PartitionRequest`.

    Raises :class:`ProtocolError` (status 422) naming the offending
    field; unknown fields are rejected so typos fail loudly instead of
    being silently ignored.  ``force_simulate`` is the ``/v1/simulate``
    route: ``simulate`` defaults to true and may not be disabled.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = sorted(set(payload) - _ALLOWED_FIELDS)
    _require(
        not unknown,
        f"unknown request field(s): {', '.join(unknown)} "
        f"(allowed: {', '.join(sorted(_ALLOWED_FIELDS))})",
        field=unknown[0] if unknown else None,
    )

    source = payload.get("source")
    _require(isinstance(source, str), "'source' (Doall program text) is required", field="source")
    _require(source.strip() != "", "'source' must not be empty", field="source")
    _require(
        len(source.encode("utf-8", "replace")) <= MAX_SOURCE_BYTES,
        f"'source' exceeds {MAX_SOURCE_BYTES} bytes",
        field="source",
    )

    processors = _int_field(payload, "processors", lo=1, hi=MAX_PROCESSORS)
    _require(processors is not None, "'processors' is required", field="processors")

    bindings_raw = payload.get("bindings", {})
    _require(
        isinstance(bindings_raw, dict),
        "'bindings' must be an object of NAME -> integer",
        field="bindings",
    )
    bindings = []
    for name, value in bindings_raw.items():
        _require(
            isinstance(name, str) and name.strip() != "",
            "'bindings' keys must be non-empty strings",
            field="bindings",
        )
        _require(
            isinstance(value, int) and not isinstance(value, bool),
            f"binding {name!r} must be an integer, got {value!r}",
            field="bindings",
        )
        bindings.append((name, value))
    bindings.sort()

    method = payload.get("method", "rectangular")
    _require(
        method in METHODS,
        f"'method' must be one of {', '.join(METHODS)}; got {method!r}",
        field="method",
    )

    simulate = payload.get("simulate", True if force_simulate else False)
    _require(isinstance(simulate, bool), "'simulate' must be a boolean", field="simulate")
    if force_simulate:
        _require(simulate, "'simulate' cannot be false on /v1/simulate", field="simulate")

    sweeps = _int_field(payload, "sweeps", lo=1, hi=MAX_SWEEPS, default=1)

    engine = payload.get("engine", "auto")
    _require(
        engine in ENGINES,
        f"'engine' must be one of {', '.join(ENGINES)}; got {engine!r}",
        field="engine",
    )

    program = payload.get("program", "doall")
    _require(
        program in PROGRAMS,
        f"'program' must be one of {', '.join(PROGRAMS)}; got {program!r}",
        field="program",
    )

    strategy = payload.get("strategy", "co")
    _require(
        strategy in STRATEGIES,
        f"'strategy' must be one of {', '.join(STRATEGIES)}; got {strategy!r}",
        field="strategy",
    )
    _require(
        program == "flow" or "strategy" not in payload,
        "'strategy' only applies to flow programs (set \"program\": \"flow\")",
        field="strategy",
    )

    label = payload.get("label")
    if label is not None:
        _require(isinstance(label, str), "'label' must be a string", field="label")

    deadline_ms = _int_field(payload, "deadline_ms", lo=1, hi=24 * 3600 * 1000, default=None)

    return PartitionRequest(
        source=source,
        processors=processors,
        bindings=tuple(bindings),
        method=method,
        simulate=simulate,
        sweeps=sweeps,
        engine=engine,
        program=program,
        strategy=strategy,
        label=label,
        deadline_ms=deadline_ms,
    )
