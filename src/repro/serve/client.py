"""Clients for the partition service (blocking and asyncio).

:class:`ServeClient` wraps a keep-alive :class:`http.client.HTTPConnection`
for scripts, tests, and the load generator; :class:`AsyncServeClient`
speaks the same protocol over asyncio streams for embedding in event
loops.  Both raise :class:`ServeError` for any non-200 response, carrying
the HTTP status and the decoded typed error payload.

Both clients treat 429 (admission overload) as a retryable condition:
they honor the server's ``Retry-After`` hint with capped exponential
backoff and *deterministic* jitter (seeded per client, so a run is
reproducible), raising only once ``max_retries_429`` attempts are
exhausted.  ``retries_429`` counts the retries a client performed.

:class:`AsyncConnectionPool` is the router's building block: a bounded
keep-alive pool of raw HTTP/1.1 connections to one replica, exposing
byte-level request/response passthrough so the router never re-encodes
a replica's response body.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import time

__all__ = [
    "ServeError",
    "ServeClient",
    "AsyncServeClient",
    "AsyncConnectionPool",
    "backoff_delay_s",
]


class ServeError(Exception):
    """A non-200 response from the service."""

    def __init__(self, status: int, payload: dict | None = None):
        err = (payload or {}).get("error", {})
        self.status = status
        self.code = err.get("code", "unknown")
        self.payload = payload or {}
        self.retry_after: float | None = None
        super().__init__(
            f"HTTP {status} [{self.code}]: {err.get('message', 'no error payload')}"
        )


def backoff_delay_s(
    attempt: int,
    retry_after: float | None,
    *,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    rng: random.Random | None = None,
) -> float:
    """Backoff before retry number ``attempt`` (0-based) of a 429.

    Exponential from ``base_s``, never below the server's ``Retry-After``
    hint, capped at ``cap_s``; ``rng`` adds up to 10% deterministic
    jitter (callers seed it, so a retry schedule is reproducible).
    """
    delay = base_s * (2.0 ** attempt)
    if retry_after is not None and retry_after > 0:
        delay = max(delay, retry_after)
    delay = min(delay, cap_s)
    if rng is not None:
        delay *= 1.0 + 0.1 * rng.random()
    return delay


def _request_body(source, processors, **options) -> dict:
    body = {"source": source, "processors": processors}
    body.update({k: v for k, v in options.items() if v is not None})
    return body


class ServeClient:
    """Blocking keep-alive client."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        *,
        timeout: float = 60.0,
        max_retries_429: int = 4,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries_429 = max_retries_429
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._backoff_rng = random.Random(backoff_seed)
        self._conn: http.client.HTTPConnection | None = None
        #: Cache disposition of the last compute call (miss/hit/coalesced).
        self.last_cache_status: str | None = None
        #: Request id the server echoed (or minted) for the last call.
        self.last_request_id: str | None = None
        #: 429-overload retries this client has performed.
        self.retries_429 = 0

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        request_id: str | None = None,
        accept: str | None = None,
        raw_body: bool = False,
    ) -> dict | str:
        """One logical request (with transparent 429 retries).

        ``request_id`` travels as the ``X-Repro-Request-Id`` header
        (never in the body — the request schema is strict);
        ``accept``/``raw_body`` fetch non-JSON responses such as the
        Prometheus ``/metrics`` exposition."""
        attempt = 0
        while True:
            try:
                return self._round_trip(
                    method, path, payload,
                    request_id=request_id, accept=accept, raw_body=raw_body,
                )
            except ServeError as e:
                if e.status != 429 or attempt >= self.max_retries_429:
                    raise
                time.sleep(
                    backoff_delay_s(
                        attempt, e.retry_after,
                        base_s=self.backoff_base_s,
                        cap_s=self.backoff_cap_s,
                        rng=self._backoff_rng,
                    )
                )
                attempt += 1
                self.retries_429 += 1

    def _round_trip(
        self,
        method: str,
        path: str,
        payload: dict | None,
        *,
        request_id: str | None,
        accept: str | None,
        raw_body: bool,
    ) -> dict | str:
        conn = self._connection()
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers["X-Repro-Request-Id"] = request_id
        if accept is not None:
            headers["Accept"] = accept
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # A dropped keep-alive connection is retried once on a fresh
            # socket; a genuinely dead server fails the retry.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        self.last_cache_status = response.getheader("X-Repro-Cache")
        self.last_request_id = response.getheader("X-Repro-Request-Id")
        if raw_body and response.status == 200:
            return raw.decode("utf-8")
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError as e:
            raise ServeError(response.status, {"error": {
                "code": "bad-response", "message": f"undecodable body: {e}"}}) from None
        if response.status != 200:
            err = ServeError(response.status, decoded)
            retry_after = response.getheader("Retry-After")
            if retry_after is not None:
                try:
                    err.retry_after = float(retry_after)
                except ValueError:
                    pass
            raise err
        return decoded

    # -- endpoints -------------------------------------------------------
    def partition(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        """``POST /v1/partition``; options mirror the request schema
        (``bindings``, ``method``, ``simulate``, ``sweeps``, ``engine``,
        ``label``, ``deadline_ms``).  ``request_id`` tags the request for
        end-to-end tracing (``/debug/requests/<id>``)."""
        return self.request(
            "POST", "/v1/partition", _request_body(source, processors, **options),
            request_id=request_id,
        )

    def simulate(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        """``POST /v1/simulate`` (partition + machine-simulator validation)."""
        return self.request(
            "POST", "/v1/simulate", _request_body(source, processors, **options),
            request_id=request_id,
        )

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def metrics_text(self) -> str:
        """``GET /metrics`` in Prometheus text exposition format."""
        return self.request(
            "GET", "/metrics", accept="text/plain", raw_body=True
        )

    def debug_requests(self) -> dict:
        """``GET /debug/requests`` — the flight recorder's recent view."""
        return self.request("GET", "/debug/requests")

    def debug_request(self, request_id: str) -> dict:
        """``GET /debug/requests/<id>`` — record + stitched trace."""
        return self.request("GET", f"/debug/requests/{request_id}")

    def debug_inflight(self) -> dict:
        """``GET /debug/inflight`` — requests currently being served."""
        return self.request("GET", "/debug/inflight")


async def _read_http_response(reader: asyncio.StreamReader):
    """One HTTP/1.1 response from ``reader`` → ``(status, headers, body)``.

    ``headers`` keys are lower-cased.  Raises
    :class:`asyncio.IncompleteReadError` / :class:`ConnectionError` on a
    connection dropped mid-response and :class:`ServeError` on an empty
    stream (peer closed before the status line).
    """
    status_line = await reader.readline()
    if not status_line:
        raise ServeError(0, {"error": {"code": "connection-closed",
                                       "message": "server closed the connection"}})
    parts = status_line.decode("latin-1").split(" ", 2)
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def _encode_http_request(
    method: str,
    path: str,
    host: str,
    port: int,
    body: bytes,
    headers: dict[str, str] | None,
) -> bytes:
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}:{port}",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class AsyncConnectionPool:
    """Bounded keep-alive connection pool to one HTTP/1.1 peer.

    At most ``size`` connections exist at any moment (in use + idle);
    excess concurrent requests wait on the internal semaphore.  A
    connection that completes a round trip cleanly returns to the idle
    list for reuse; any transport error closes it, so the pool never
    reuses a stream in an unknown framing state.

    :meth:`request_raw` is byte-level passthrough — the response body is
    returned exactly as the peer framed it, which the router relies on
    to keep replica responses byte-identical through the extra hop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        size: int = 8,
        connect_timeout_s: float = 5.0,
        limit: int = 1 << 22,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.host = host
        self.port = port
        self.size = size
        self.connect_timeout_s = connect_timeout_s
        self._limit = limit
        self._idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._sem = asyncio.Semaphore(size)
        self._closed = False
        #: Connections opened over the pool's lifetime (reuse telemetry).
        self.connects = 0

    async def _checkout(self):
        while self._idle:
            reader, writer = self._idle.pop()
            if writer.is_closing():
                _close_writer(writer)
                continue
            return reader, writer
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port, limit=self._limit),
            timeout=self.connect_timeout_s,
        )
        self.connects += 1
        return reader, writer

    async def request_raw(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One round trip → ``(status, lowercase headers, raw body)``."""
        if self._closed:
            raise ConnectionError("pool is closed")
        async with self._sem:
            reader, writer = await self._checkout()
            try:
                writer.write(
                    _encode_http_request(
                        method, path, self.host, self.port, body, headers
                    )
                )
                await writer.drain()
                status, rheaders, rbody = await _read_http_response(reader)
            except BaseException:
                _close_writer(writer)
                raise
            if rheaders.get("connection", "").lower() == "close" or self._closed:
                _close_writer(writer)
            else:
                self._idle.append((reader, writer))
            return status, rheaders, rbody

    async def close(self) -> None:
        self._closed = True
        while self._idle:
            _, writer = self._idle.pop()
            _close_writer(writer)


def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
    except Exception:  # pragma: no cover - teardown best effort
        pass


class AsyncServeClient:
    """Asyncio client (one connection, sequential requests)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        *,
        max_retries_429: int = 4,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.max_retries_429 = max_retries_429
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._backoff_rng = random.Random(backoff_seed)
        self._reader = None
        self._writer = None
        self.last_cache_status: str | None = None
        self.last_request_id: str | None = None
        self.retries_429 = 0

    async def _connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=1 << 22
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        request_id: str | None = None,
    ) -> dict:
        attempt = 0
        while True:
            try:
                return await self._round_trip(method, path, payload, request_id)
            except ServeError as e:
                if e.status != 429 or attempt >= self.max_retries_429:
                    raise
                await asyncio.sleep(
                    backoff_delay_s(
                        attempt, e.retry_after,
                        base_s=self.backoff_base_s,
                        cap_s=self.backoff_cap_s,
                        rng=self._backoff_rng,
                    )
                )
                attempt += 1
                self.retries_429 += 1

    async def _round_trip(
        self, method: str, path: str, payload: dict | None, request_id: str | None
    ) -> dict:
        await self._connect()
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        headers = {"Content-Type": "application/json"}
        if request_id is not None:
            headers["X-Repro-Request-Id"] = request_id
        self._writer.write(
            _encode_http_request(method, path, self.host, self.port, body, headers)
        )
        await self._writer.drain()
        status, rheaders, raw = await _read_http_response(self._reader)
        if rheaders.get("connection", "").lower() == "close":
            await self.close()
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        self.last_cache_status = rheaders.get("x-repro-cache")
        self.last_request_id = rheaders.get("x-repro-request-id")
        if status != 200:
            err = ServeError(status, decoded)
            if "retry-after" in rheaders:
                try:
                    err.retry_after = float(rheaders["retry-after"])
                except ValueError:
                    pass
            raise err
        return decoded

    async def partition(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        return await self.request(
            "POST", "/v1/partition", _request_body(source, processors, **options),
            request_id=request_id,
        )

    async def simulate(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        return await self.request(
            "POST", "/v1/simulate", _request_body(source, processors, **options),
            request_id=request_id,
        )

    async def healthz(self) -> dict:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self.request("GET", "/metrics")
