"""Clients for the partition service (blocking and asyncio).

:class:`ServeClient` wraps a keep-alive :class:`http.client.HTTPConnection`
for scripts, tests, and the load generator; :class:`AsyncServeClient`
speaks the same protocol over asyncio streams for embedding in event
loops.  Both raise :class:`ServeError` for any non-200 response, carrying
the HTTP status and the decoded typed error payload.
"""

from __future__ import annotations

import http.client
import json

__all__ = ["ServeError", "ServeClient", "AsyncServeClient"]


class ServeError(Exception):
    """A non-200 response from the service."""

    def __init__(self, status: int, payload: dict | None = None):
        err = (payload or {}).get("error", {})
        self.status = status
        self.code = err.get("code", "unknown")
        self.payload = payload or {}
        self.retry_after: float | None = None
        super().__init__(
            f"HTTP {status} [{self.code}]: {err.get('message', 'no error payload')}"
        )


def _request_body(source, processors, **options) -> dict:
    body = {"source": source, "processors": processors}
    body.update({k: v for k, v in options.items() if v is not None})
    return body


class ServeClient:
    """Blocking keep-alive client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        #: Cache disposition of the last compute call (miss/hit/coalesced).
        self.last_cache_status: str | None = None
        #: Request id the server echoed (or minted) for the last call.
        self.last_request_id: str | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        request_id: str | None = None,
        accept: str | None = None,
        raw_body: bool = False,
    ) -> dict | str:
        """One round trip.  ``request_id`` travels as the
        ``X-Repro-Request-Id`` header (never in the body — the request
        schema is strict); ``accept``/``raw_body`` fetch non-JSON
        responses such as the Prometheus ``/metrics`` exposition."""
        conn = self._connection()
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers["X-Repro-Request-Id"] = request_id
        if accept is not None:
            headers["Accept"] = accept
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # A dropped keep-alive connection is retried once on a fresh
            # socket; a genuinely dead server fails the retry.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        self.last_cache_status = response.getheader("X-Repro-Cache")
        self.last_request_id = response.getheader("X-Repro-Request-Id")
        if raw_body and response.status == 200:
            return raw.decode("utf-8")
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError as e:
            raise ServeError(response.status, {"error": {
                "code": "bad-response", "message": f"undecodable body: {e}"}}) from None
        if response.status != 200:
            err = ServeError(response.status, decoded)
            retry_after = response.getheader("Retry-After")
            if retry_after is not None:
                try:
                    err.retry_after = float(retry_after)
                except ValueError:
                    pass
            raise err
        return decoded

    # -- endpoints -------------------------------------------------------
    def partition(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        """``POST /v1/partition``; options mirror the request schema
        (``bindings``, ``method``, ``simulate``, ``sweeps``, ``engine``,
        ``label``, ``deadline_ms``).  ``request_id`` tags the request for
        end-to-end tracing (``/debug/requests/<id>``)."""
        return self.request(
            "POST", "/v1/partition", _request_body(source, processors, **options),
            request_id=request_id,
        )

    def simulate(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        """``POST /v1/simulate`` (partition + machine-simulator validation)."""
        return self.request(
            "POST", "/v1/simulate", _request_body(source, processors, **options),
            request_id=request_id,
        )

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def metrics_text(self) -> str:
        """``GET /metrics`` in Prometheus text exposition format."""
        return self.request(
            "GET", "/metrics", accept="text/plain", raw_body=True
        )

    def debug_requests(self) -> dict:
        """``GET /debug/requests`` — the flight recorder's recent view."""
        return self.request("GET", "/debug/requests")

    def debug_request(self, request_id: str) -> dict:
        """``GET /debug/requests/<id>`` — record + stitched trace."""
        return self.request("GET", f"/debug/requests/{request_id}")

    def debug_inflight(self) -> dict:
        """``GET /debug/inflight`` — requests currently being served."""
        return self.request("GET", "/debug/inflight")


class AsyncServeClient:
    """Asyncio client (one connection, sequential requests)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self.last_cache_status: str | None = None
        self.last_request_id: str | None = None

    async def _connect(self) -> None:
        if self._writer is None:
            import asyncio

            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=1 << 22
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        request_id: str | None = None,
    ) -> dict:
        await self._connect()
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        id_header = (
            f"X-Repro-Request-Id: {request_id}\r\n" if request_id is not None else ""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            f"{id_header}"
            "Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ServeError(0, {"error": {"code": "connection-closed",
                                           "message": "server closed the connection"}})
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        self.last_cache_status = headers.get("x-repro-cache")
        self.last_request_id = headers.get("x-repro-request-id")
        if status != 200:
            err = ServeError(status, decoded)
            if "retry-after" in headers:
                try:
                    err.retry_after = float(headers["retry-after"])
                except ValueError:
                    pass
            raise err
        return decoded

    async def partition(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        return await self.request(
            "POST", "/v1/partition", _request_body(source, processors, **options),
            request_id=request_id,
        )

    async def simulate(
        self, source: str, processors: int, *, request_id: str | None = None, **options
    ) -> dict:
        return await self.request(
            "POST", "/v1/simulate", _request_body(source, processors, **options),
            request_id=request_id,
        )

    async def healthz(self) -> dict:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self.request("GET", "/metrics")
