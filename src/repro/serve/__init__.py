"""Partition-as-a-service (``repro serve``).

A long-lived asyncio JSON-over-HTTP service around the partitioning
pipeline, so many queries amortise one warm process: request validation
with typed errors (:mod:`~repro.serve.protocol`), canonical-key request
coalescing and a completed-response LRU, micro-batching of compute onto
a process pool (:mod:`~repro.serve.batching` →
:mod:`~repro.serve.pipeline`), bounded admission with 429 backpressure,
per-request deadlines, and graceful drain — all metered through
:mod:`repro.obs` (:mod:`~repro.serve.server`).  Blocking and asyncio
clients live in :mod:`~repro.serve.client`; the closed-loop load
generator behind ``repro loadgen`` in :mod:`~repro.serve.loadgen`.
"""

from .client import AsyncServeClient, ServeClient, ServeError
from .protocol import PartitionRequest, ProtocolError, validate_partition_request
from .server import EmbeddedServer, PartitionServer, ServeConfig, serve_main
from .loadgen import loadgen_main

__all__ = [
    "AsyncServeClient",
    "ServeClient",
    "ServeError",
    "PartitionRequest",
    "ProtocolError",
    "validate_partition_request",
    "EmbeddedServer",
    "PartitionServer",
    "ServeConfig",
    "serve_main",
    "loadgen_main",
]
