"""Partition-as-a-service (``repro serve`` / ``repro route``).

A long-lived asyncio JSON-over-HTTP service around the partitioning
pipeline, so many queries amortise one warm process: request validation
with typed errors (:mod:`~repro.serve.protocol`), canonical-key request
coalescing and a completed-response LRU, micro-batching of compute onto
a process pool (:mod:`~repro.serve.batching` →
:mod:`~repro.serve.pipeline`), bounded admission with 429 backpressure,
per-request deadlines, and graceful drain — all metered through
:mod:`repro.obs` (:mod:`~repro.serve.server`).  Blocking and asyncio
clients live in :mod:`~repro.serve.client`; the closed-loop load
generator behind ``repro loadgen`` in :mod:`~repro.serve.loadgen`.

:mod:`~repro.serve.cluster` scales this horizontally: ``repro route``
fronts N replicas with shard-affine rendezvous hashing of the canonical
request key, health-tracked failover, periodic cross-replica cache
exchange through the shared ``--cache-dir``, and merged ``/metrics`` +
``/debug`` aggregation.
"""

from .client import (
    AsyncConnectionPool,
    AsyncServeClient,
    ServeClient,
    ServeError,
    backoff_delay_s,
)
from .protocol import PartitionRequest, ProtocolError, validate_partition_request
from .server import EmbeddedServer, PartitionServer, ServeConfig, serve_main
from .cluster import (
    EmbeddedRouter,
    RouterConfig,
    RouterServer,
    rendezvous_order,
    route_main,
)
from .loadgen import ClusterHandle, loadgen_main, spawn_cluster, spawn_router

__all__ = [
    "AsyncConnectionPool",
    "AsyncServeClient",
    "ServeClient",
    "ServeError",
    "backoff_delay_s",
    "PartitionRequest",
    "ProtocolError",
    "validate_partition_request",
    "EmbeddedServer",
    "PartitionServer",
    "ServeConfig",
    "serve_main",
    "EmbeddedRouter",
    "RouterConfig",
    "RouterServer",
    "rendezvous_order",
    "route_main",
    "ClusterHandle",
    "loadgen_main",
    "spawn_cluster",
    "spawn_router",
]
