"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the framework with a single ``except``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NonIntegerMatrixError",
    "SingularMatrixError",
    "NotUnimodularError",
    "ParseError",
    "LoweringError",
    "FlowLoweringError",
    "PartitionError",
    "OptimizationError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class NonIntegerMatrixError(ReproError, ValueError):
    """A matrix expected to have integer entries did not."""


class SingularMatrixError(ReproError, ValueError):
    """A matrix expected to be nonsingular was singular."""


class NotUnimodularError(ReproError, ValueError):
    """A matrix expected to be unimodular was not."""


class ParseError(ReproError, SyntaxError):
    """The Doall-language parser rejected the input program.

    Attributes
    ----------
    line, column:
        1-based source position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class LoweringError(ReproError, ValueError):
    """The AST could not be lowered to the affine loop-nest IR.

    Raised e.g. for subscripts that are not affine in the loop indices.

    Attributes
    ----------
    line, column:
        1-based source position of the offending construct, when known.
        Multi-statement programs reuse index names across nests, so the
        position — not the index variable — is what disambiguates.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(message + location)
        self.line = line
        self.column = column


class FlowLoweringError(LoweringError):
    """A multi-statement dataflow program could not be legalized.

    Raised when a cross-statement dependence falls outside the paper's
    model — e.g. a producer/consumer reference pair on the same array
    that intersects but is not uniformly generated (Definition 4), so
    the Section 3 footprint machinery cannot price its communication.
    """


class PartitionError(ReproError, ValueError):
    """A loop/data partition request was invalid or infeasible."""


class OptimizationError(ReproError, RuntimeError):
    """The tile-shape optimizer failed to produce a feasible tile."""


class SimulationError(ReproError, RuntimeError):
    """The multiprocessor simulator was driven into an invalid state."""
