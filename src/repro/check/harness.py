"""Differential harness: run the whole pipeline per case, check invariants.

For every case the harness runs parse → classify → optimize → codegen →
simulate (both engines), evaluates the cross-oracle invariants
(:mod:`repro.check.invariants`), shrinks failures
(:mod:`repro.check.shrink`), and emits a ``repro.check-report`` through
the :mod:`repro.obs.report` layer.

Fault injection (``--inject-fault``) deliberately mis-computes one
analytic quantity so the checker's sensitivity can be demonstrated and
tested end-to-end: a run with an injected fault must *fail* and shrink
the failure to a small nest.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..core import cost as _cost
from ..core import cumulative as _cum
from ..core import optimize as _opt
from ..core.classify import partition_references
from ..core.optimize import optimize_parallelepiped
from ..core.partitioner import LoopPartitioner
from ..exceptions import OptimizationError, ReproError, SingularMatrixError
from ..lang.lower import lower_nest
from ..lang.parser import parse_program
from ..obs.log import configure_logging, get_logger
from ..obs.report import build_check_report, dump_report
from ..sim import Machine, MachineConfig, simulate_nest
from ..sim.trace import assign_tiles_to_processors, reference_streams
from .corpus import load_corpus, spec_from_dict, spec_to_dict
from .generator import CaseSpec, generate_case
from .invariants import CaseArtifacts, Tally, run_invariants
from .shrink import shrink

__all__ = ["CheckConfig", "run_case", "run_check", "check_main", "inject_fault"]

logger = get_logger("check.harness")


@dataclass(frozen=True)
class CheckConfig:
    """Declared envelopes and budgets of one check run."""

    max_accesses: int = 6000  # per-case access cap (generator)
    round_det_tol: float = 0.5  # |det L| vs V after parallelepiped rounding
    parallelepiped_every: int = 5  # run the SLSQP path on every k-th case
    shrink_budget: int = 200  # pipeline evaluations per shrink

    def to_dict(self) -> dict:
        return {
            "max_accesses": self.max_accesses,
            "round_det_tol": self.round_det_tol,
            "parallelepiped_every": self.parallelepiped_every,
            "shrink_budget": self.shrink_budget,
        }


# ----------------------------------------------------------------------
# Fault injection


@contextmanager
def _patched(module, name, fn):
    orig = getattr(module, name)
    setattr(module, name, fn)
    try:
        yield
    finally:
        setattr(module, name, orig)


@contextmanager
def _inject_spread():
    """Scale spread coefficients down: Theorem-4 costs undercount."""
    orig = _cum.spread_coefficients

    def bad(uiset):
        return orig(uiset) * 0.25

    with _patched(_cum, "spread_coefficients", bad):
        with _patched(_opt, "spread_coefficients", bad):
            yield


@contextmanager
def _inject_exact_count():
    """Off-by-one in the exact lattice union count."""
    orig = _cum.cumulative_footprint_size_exact

    def bad(uiset, tile, **kw):
        return orig(uiset, tile, **kw) + 1

    with _patched(_cum, "cumulative_footprint_size_exact", bad):
        with _patched(_opt, "cumulative_footprint_size_exact", bad):
            with _patched(_cost, "cumulative_footprint_size_exact", bad):
                yield


FAULTS = {
    "spread": _inject_spread,
    "exact-count": _inject_exact_count,
}


@contextmanager
def inject_fault(name: str | None):
    """Activate a named deliberate fault for the duration of the context."""
    if name is None:
        yield
        return
    if name not in FAULTS:
        raise ValueError(f"unknown fault {name!r}; known: {sorted(FAULTS)}")
    with FAULTS[name]():
        yield


# ----------------------------------------------------------------------
# Per-case pipeline


def run_case(spec: CaseSpec, config: CheckConfig | None = None) -> CaseArtifacts:
    """parse → classify → optimize → codegen → simulate → invariants."""
    config = config or CheckConfig()
    art = CaseArtifacts(
        spec=spec,
        nest=None,
        uisets=[],
        result=None,
        estimate=None,
        pepiped=None,
        sim_fast=None,
        sim_exact=None,
        streams=None,
        schedule_counts=None,
        emitted=None,
    )
    try:
        program = parse_program(spec.source())
        art.nest = lower_nest(program.nests[0], {})
        art.uisets = partition_references(art.nest.accesses)

        partitioner = LoopPartitioner(art.nest, spec.processors)
        art.result = partitioner.partition(method="rectangular", scoring="exact")
        art.estimate = art.result.estimate

        if spec.depth >= 2 and spec.case_id % config.parallelepiped_every == 0:
            try:
                art.pepiped = optimize_parallelepiped(
                    art.uisets,
                    spec.volume / spec.processors,
                    max_extents=art.nest.space.extents,
                )
            except (OptimizationError, SingularMatrixError):
                # Declared outcomes: no integer rounding satisfies the
                # volume tolerance, or a class's reduced G is rank-
                # deficient (Theorem 2 objective undefined).  Not a
                # violation.
                art.tally.hit("parallelepiped-infeasible")

        from ..codegen.schedule import TileSchedule
        from ..codegen.emit import emit_pseudocode

        if art.result.grid is not None:
            sched = TileSchedule(
                art.nest.space,
                art.result.tile,
                spec.processors,
                grid=tuple(int(g) for g in art.result.grid),
            )
            art.schedule_counts = sched.iteration_counts()
            art.emitted = emit_pseudocode(program.nests[0], sched, processors=[0])

        from ..core.tiles import Tiling

        tiling = Tiling(art.nest.space, art.result.tile)
        blocks = assign_tiles_to_processors(tiling, spec.processors)
        art.streams = {
            p: reference_streams(art.nest, its) for p, its in blocks.items()
        }

        def machine() -> Machine:
            return Machine(
                MachineConfig(
                    processors=spec.processors, line_size=spec.line_size
                )
            )

        art.sim_exact = simulate_nest(
            art.nest,
            art.result.tile,
            spec.processors,
            engine="exact",
            machine=machine(),
            check_invariants=True,
        )
        art.sim_fast = simulate_nest(
            art.nest,
            art.result.tile,
            spec.processors,
            engine="fast",
            machine=machine(),
            check_invariants=True,
        )
    except ReproError as e:
        art.fail("pipeline-error", f"{type(e).__name__}: {e}")
        return art
    except Exception as e:  # pragma: no cover - harness safety net
        art.fail("crash", f"{type(e).__name__}: {e}")
        return art

    run_invariants(art, round_det_tol=config.round_det_tol)
    return art


def _first_invariant(spec: CaseSpec, config: CheckConfig) -> str | None:
    out = run_case(spec, config)
    return out.violations[0].invariant if out.violations else None


# ----------------------------------------------------------------------
# Driver


def _failure_entry(
    spec: CaseSpec, art: CaseArtifacts, config: CheckConfig, origin: str
) -> dict:
    shrunk, steps = shrink(
        spec,
        lambda s: _first_invariant(s, config),
        budget=config.shrink_budget,
    )
    v = art.violations[0]
    return {
        "case_id": spec.case_id,
        "origin": origin,
        "invariant": v.invariant,
        "detail": v.detail,
        "all_violations": [
            {"invariant": x.invariant, "detail": x.detail} for x in art.violations
        ],
        "spec": spec_to_dict(spec),
        "shrunk_spec": spec_to_dict(shrunk),
        "shrunk_depth": shrunk.depth,
        "shrunk_source": shrunk.source(),
        "shrink_steps": steps,
    }


def run_check(
    *,
    cases: int = 100,
    seed: int = 0,
    corpus_path: str | None = None,
    config: CheckConfig | None = None,
    fault: str | None = None,
) -> dict:
    """Replay the corpus, fuzz ``cases`` fresh nests, report the verdict."""
    config = config or CheckConfig()
    tally = Tally()
    failures: list[dict] = []
    total = 0
    corpus_info: dict | None = None
    t0 = time.perf_counter()

    with inject_fault(fault):
        if corpus_path and os.path.exists(corpus_path):
            entries = load_corpus(corpus_path)
            corpus_info = {"path": str(corpus_path), "entries": len(entries)}
            for entry in entries:
                spec = spec_from_dict(entry["spec"])
                art = run_case(spec, config)
                tally.merge(art.tally)
                total += 1
                if art.violations:
                    failures.append(_failure_entry(spec, art, config, "corpus"))
        for case_id in range(cases):
            spec = generate_case(case_id, seed, max_accesses=config.max_accesses)
            art = run_case(spec, config)
            tally.merge(art.tally)
            total += 1
            if art.violations:
                logger.warning(
                    "case %d violated %s: %s",
                    case_id,
                    art.violations[0].invariant,
                    art.violations[0].detail,
                )
                failures.append(_failure_entry(spec, art, config, "generated"))

    return build_check_report(
        cases=total,
        seed=seed,
        passed=total - len(failures),
        failures=failures,
        invariant_evaluations=tally.counts,
        corpus=corpus_info,
        config=config.to_dict(),
        fault=fault,
        duration_s=time.perf_counter() - t0,
    )


def check_main(argv: list[str] | None = None, *, out=None) -> int:
    """Entry point for ``repro check``."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Differential self-check: fuzz loop nests and cross-"
        "validate the analytic model, the lattice oracles, and both "
        "simulator engines.",
    )
    parser.add_argument("--cases", type=int, default=100, metavar="N")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument("--corpus", default=None, metavar="PATH",
                        help="replay a persisted corpus before fuzzing")
    parser.add_argument("--json-report", default=None, metavar="PATH",
                        help="write the repro.check-report JSON here")
    parser.add_argument("--inject-fault", default=None, choices=sorted(FAULTS),
                        help="deliberately break one oracle (self-test)")
    parser.add_argument("--max-accesses", type=int, default=6000)
    parser.add_argument("--shrink-budget", type=int, default=200)
    parser.add_argument("--log-level", default=None,
                        choices=["DEBUG", "INFO", "WARNING", "ERROR"])
    args = parser.parse_args(argv)
    if args.cases < 0:
        parser.error("--cases must be >= 0")
    if args.log_level:
        configure_logging(args.log_level)
    out = out or sys.stdout

    config = CheckConfig(
        max_accesses=args.max_accesses, shrink_budget=args.shrink_budget
    )
    report = run_check(
        cases=args.cases,
        seed=args.seed,
        corpus_path=args.corpus,
        config=config,
        fault=args.inject_fault,
    )
    if args.json_report:
        dump_report(report, args.json_report)

    print(
        f"repro check: {report['cases']} cases (seed {report['seed']}) -> "
        f"{report['passed']} passed, {report['failed']} failed "
        f"in {report['duration_s']:.1f}s",
        file=out,
    )
    evals = report["invariant_evaluations"]
    print(
        "invariant evaluations: "
        + ", ".join(f"{k}={v}" for k, v in sorted(evals.items())),
        file=out,
    )
    for f in report["failures"]:
        print(
            f"FAILED case {f['case_id']} ({f['origin']}): {f['invariant']} — "
            f"{f['detail']}",
            file=out,
        )
        print(
            f"  shrunk to depth {f['shrunk_depth']} in {f['shrink_steps']} steps:",
            file=out,
        )
        for line in f["shrunk_source"].rstrip().splitlines():
            print(f"    {line}", file=out)
    if report["failed"] and args.inject_fault:
        print(
            f"(fault {args.inject_fault!r} was injected deliberately — "
            "failures above demonstrate detection)",
            file=out,
        )
    return 1 if report["failed"] else 0
