"""Differential harness: run the whole pipeline per case, check invariants.

For every case the harness runs parse → classify → optimize → codegen →
simulate (both engines), evaluates the cross-oracle invariants
(:mod:`repro.check.invariants`), shrinks failures
(:mod:`repro.check.shrink`), and emits a ``repro.check-report`` through
the :mod:`repro.obs.report` layer.

Fault injection (``--inject-fault``) deliberately mis-computes one
analytic quantity so the checker's sensitivity can be demonstrated and
tested end-to-end: a run with an injected fault must *fail* and shrink
the failure to a small nest.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..core import cost as _cost
from ..core import cumulative as _cum
from ..core import optimize as _opt
from ..core import plan as _plan
from ..core.classify import partition_references
from ..core.optimize import optimize_parallelepiped
from ..core.partitioner import LoopPartitioner
from ..exceptions import OptimizationError, ReproError, SingularMatrixError
from ..lang.lower import lower_nest
from ..lang.parser import parse_program
from ..obs.log import configure_logging, get_logger
from ..obs.report import build_check_report, dump_report
from ..obs.tracing import span
from ..sim import Machine, MachineConfig, simulate_nest
from ..sim.trace import assign_tiles_to_processors, reference_streams
from .corpus import load_corpus, spec_from_dict, spec_to_dict
from .generator import CaseSpec, generate_case
from .invariants import CaseArtifacts, Tally, run_invariants
from .shrink import shrink

__all__ = ["CheckConfig", "run_case", "run_check", "check_main", "inject_fault"]

logger = get_logger("check.harness")


@dataclass(frozen=True)
class CheckConfig:
    """Declared envelopes and budgets of one check run."""

    max_accesses: int = 6000  # per-case access cap (generator)
    round_det_tol: float = 0.5  # |det L| vs V after parallelepiped rounding
    parallelepiped_every: int = 5  # run the SLSQP path on every k-th case
    shrink_budget: int = 200  # pipeline evaluations per shrink

    def to_dict(self) -> dict:
        return {
            "max_accesses": self.max_accesses,
            "round_det_tol": self.round_det_tol,
            "parallelepiped_every": self.parallelepiped_every,
            "shrink_budget": self.shrink_budget,
        }


# ----------------------------------------------------------------------
# Fault injection


@contextmanager
def _patched(module, name, fn):
    orig = getattr(module, name)
    setattr(module, name, fn)
    try:
        yield
    finally:
        setattr(module, name, orig)


@contextmanager
def _inject_spread():
    """Scale spread coefficients down: Theorem-4 costs undercount.

    The plan solver's binding is patched too, so the plan-vs-numeric
    oracle stays green (the plan *intentionally* replicates the numeric
    formula — a consistent fault must be caught by the independent
    exact-lattice oracle, not by self-comparison).  The shared plan
    cache is cleared on both sides so faulted payloads never leak into
    or out of the faulted region.
    """
    orig = _cum.spread_coefficients

    def bad(uiset):
        return orig(uiset) * 0.25

    _plan.DEFAULT_PLAN_CACHE.clear()
    try:
        with _patched(_cum, "spread_coefficients", bad):
            with _patched(_opt, "spread_coefficients", bad):
                with _patched(_plan, "spread_coefficients", bad):
                    yield
    finally:
        _plan.DEFAULT_PLAN_CACHE.clear()


@contextmanager
def _inject_exact_count():
    """Off-by-one in the exact lattice union count."""
    orig = _cum.cumulative_footprint_size_exact

    def bad(uiset, tile, **kw):
        return orig(uiset, tile, **kw) + 1

    with _patched(_cum, "cumulative_footprint_size_exact", bad):
        with _patched(_opt, "cumulative_footprint_size_exact", bad):
            with _patched(_cost, "cumulative_footprint_size_exact", bad):
                yield


@contextmanager
def _inject_plan():
    """Corrupt plan instantiation: predicted cost scaled down 4x.

    Exercises the plan-parity oracle end to end: solved payloads stay
    correct (and uncached results cannot poison anything), but every
    instantiated plan reports a wrong cost, which ``plan-parity`` must
    flag on every applicable case.
    """
    import dataclasses

    orig = _plan.instantiate_plan

    def bad(payload, extents, processors):
        result, reason = orig(payload, extents, processors)
        if result is None:
            return result, reason
        return (
            dataclasses.replace(result, predicted_cost=result.predicted_cost * 0.25),
            None,
        )

    _plan.DEFAULT_PLAN_CACHE.clear()
    try:
        with _patched(_plan, "instantiate_plan", bad):
            yield
    finally:
        _plan.DEFAULT_PLAN_CACHE.clear()


@contextmanager
def _inject_anneal():
    """Annealer claims an objective 4x better than its matrix achieves.

    Exercises the portfolio oracles end to end: the lying member wins
    the deterministic merge (its claimed score beats everything), and
    ``pepiped-objective-consistent`` must flag the mismatch between the
    claimed objective and the Theorem-2 objective recomputed from the
    returned ``L``.  Both the defining module and the binding
    ``optimize`` imported by name are patched.
    """
    import dataclasses

    from ..core import anneal as _anneal

    orig = _anneal.anneal_parallelepiped

    def bad(objective, start, volume, **kw):
        result = orig(objective, start, volume, **kw)
        if result is None:
            return result
        return dataclasses.replace(result, objective=result.objective * 0.25)

    with _patched(_anneal, "anneal_parallelepiped", bad):
        with _patched(_opt, "anneal_parallelepiped", bad):
            yield


@contextmanager
def _inject_flow():
    """Drop one line from every multi-line footprint the scheduler sees.

    The communication schedule undercounts both consumer reads and
    producer writes; the replayed execution (an independent event-level
    walk in :mod:`repro.flow.execute`) is untouched, so the ``flow-
    parity`` and ``flow-conservation`` oracles must flag the mismatch on
    every transfer-bearing flow case.
    """
    from ..flow import schedule as _fsched

    orig = _fsched._line_keys

    def bad(array, coords, line_size):
        lines = orig(array, coords, line_size)
        if len(lines) > 1:
            lines = set(sorted(lines)[:-1])
        return lines

    with _patched(_fsched, "_line_keys", bad):
        yield


FAULTS = {
    "spread": _inject_spread,
    "exact-count": _inject_exact_count,
    "plan": _inject_plan,
    "anneal": _inject_anneal,
    "flow": _inject_flow,
}


@contextmanager
def inject_fault(name: str | None):
    """Activate a named deliberate fault for the duration of the context."""
    if name is None:
        yield
        return
    if name not in FAULTS:
        raise ValueError(f"unknown fault {name!r}; known: {sorted(FAULTS)}")
    with FAULTS[name]():
        yield


# ----------------------------------------------------------------------
# Per-case pipeline


def run_case(spec: CaseSpec, config: CheckConfig | None = None) -> CaseArtifacts:
    """parse → classify → optimize → codegen → simulate → invariants."""
    config = config or CheckConfig()
    art = CaseArtifacts(
        spec=spec,
        nest=None,
        uisets=[],
        result=None,
        estimate=None,
        pepiped=None,
        sim_fast=None,
        sim_exact=None,
        streams=None,
        schedule_counts=None,
        emitted=None,
    )
    try:
        program = parse_program(spec.source())
        art.nest = lower_nest(program.nests[0], {})
        art.uisets = partition_references(art.nest.accesses)

        partitioner = LoopPartitioner(art.nest, spec.processors)
        art.result = partitioner.partition(method="rectangular", scoring="exact")
        art.estimate = art.result.estimate

        # Plan-vs-numeric oracle (Sec 3.6 closed forms): the plan tier
        # must reproduce the numeric theorem-4 enumeration exactly, or
        # decline with a declared fallback.  Both sides share the
        # process-wide plan cache, so corpus replays also exercise the
        # warm-hit path.
        try:
            art.numeric_rect = _opt.optimize_rectangular(
                art.uisets, art.nest.space, spec.processors, scoring="theorem4"
            )
            art.plan_result = _plan.plan_optimize(
                art.uisets,
                art.nest.space,
                spec.processors,
                cache=_plan.DEFAULT_PLAN_CACHE,
            )
        except OptimizationError:
            # Theorem-4 scoring infeasible (the primary exact-scoring
            # partition above already succeeded); no parity to check.
            art.tally.hit("plan-oracle-skipped")

        if spec.depth >= 2 and spec.case_id % config.parallelepiped_every == 0:
            try:
                art.pepiped = optimize_parallelepiped(
                    art.uisets,
                    spec.volume / spec.processors,
                    max_extents=art.nest.space.extents,
                )
            except (OptimizationError, SingularMatrixError):
                # Declared outcomes: no integer rounding satisfies the
                # volume tolerance, or a class's reduced G is rank-
                # deficient (Theorem 2 objective undefined).  Not a
                # violation.
                art.tally.hit("parallelepiped-infeasible")
            if art.pepiped is not None:
                # Members-alone runs for the portfolio-never-loses oracle
                # (each reuses the portfolio's seeds, so it is a candidate
                # subset the merge must dominate).
                for member, attr in (
                    ("slsqp", "pepiped_slsqp"),
                    ("anneal", "pepiped_anneal"),
                ):
                    try:
                        setattr(
                            art,
                            attr,
                            optimize_parallelepiped(
                                art.uisets,
                                spec.volume / spec.processors,
                                max_extents=art.nest.space.extents,
                                members=(member,),
                            ),
                        )
                    except (OptimizationError, SingularMatrixError):
                        art.tally.hit(f"parallelepiped-{member}-infeasible")

        from ..codegen.schedule import TileSchedule
        from ..codegen.emit import emit_pseudocode

        if art.result.grid is not None:
            sched = TileSchedule(
                art.nest.space,
                art.result.tile,
                spec.processors,
                grid=tuple(int(g) for g in art.result.grid),
            )
            art.schedule_counts = sched.iteration_counts()
            art.emitted = emit_pseudocode(program.nests[0], sched, processors=[0])

        from ..core.tiles import Tiling

        tiling = Tiling(art.nest.space, art.result.tile)
        blocks = assign_tiles_to_processors(tiling, spec.processors)
        art.streams = {
            p: reference_streams(art.nest, its) for p, its in blocks.items()
        }

        def machine() -> Machine:
            return Machine(
                MachineConfig(
                    processors=spec.processors, line_size=spec.line_size
                )
            )

        art.sim_exact = simulate_nest(
            art.nest,
            art.result.tile,
            spec.processors,
            engine="exact",
            machine=machine(),
            check_invariants=True,
        )
        art.sim_fast = simulate_nest(
            art.nest,
            art.result.tile,
            spec.processors,
            engine="fast",
            machine=machine(),
            check_invariants=True,
        )
    except ReproError as e:
        art.fail("pipeline-error", f"{type(e).__name__}: {e}")
        return art
    except Exception as e:  # pragma: no cover - harness safety net
        art.fail("crash", f"{type(e).__name__}: {e}")
        return art

    run_invariants(art, round_det_tol=config.round_det_tol)
    return art


def _first_invariant(spec: CaseSpec, config: CheckConfig) -> str | None:
    out = run_case(spec, config)
    return out.violations[0].invariant if out.violations else None


# ----------------------------------------------------------------------
# Driver


def _failure_entry(
    spec: CaseSpec, art: CaseArtifacts, config: CheckConfig, origin: str
) -> dict:
    shrunk, steps = shrink(
        spec,
        lambda s: _first_invariant(s, config),
        budget=config.shrink_budget,
    )
    v = art.violations[0]
    return {
        "case_id": spec.case_id,
        "origin": origin,
        "invariant": v.invariant,
        "detail": v.detail,
        "all_violations": [
            {"invariant": x.invariant, "detail": x.detail} for x in art.violations
        ],
        "spec": spec_to_dict(spec),
        "shrunk_spec": spec_to_dict(shrunk),
        "shrunk_depth": shrunk.depth,
        "shrunk_source": shrunk.source(),
        "shrink_steps": steps,
    }


def _flow_failure_entry(spec, art, origin: str) -> dict:
    """Failure entry for a flow case (report-schema compatible).

    Flow cases are not shrunk (the generator already emits minimal
    two-statement programs); the ``shrunk_*`` fields echo the original
    spec so report consumers see one uniform failure shape.
    """
    from .flowcheck import flow_spec_to_dict

    v = art.violations[0]
    return {
        "case_id": spec.case_id,
        "origin": origin,
        "invariant": v.invariant,
        "detail": v.detail,
        "all_violations": [
            {"invariant": x.invariant, "detail": x.detail} for x in art.violations
        ],
        "spec": flow_spec_to_dict(spec),
        "shrunk_spec": flow_spec_to_dict(spec),
        "shrunk_depth": spec.depth,
        "shrunk_source": spec.source(),
        "shrink_steps": 0,
    }


def _run_task_batch(
    tasks: list[tuple],
    seed: int,
    config: CheckConfig,
    fault: str | None,
    mode: str = "doall",
) -> list[tuple]:
    """Run a contiguous batch of check tasks (module-level for pickling).

    Each task is ``("corpus", spec_dict)`` or ``("generated", case_id)``.
    ``mode="flow"`` swaps in the dataflow generator and oracles
    (:mod:`repro.check.flowcheck`) over the same plumbing.  The fault
    context is applied *inside* this function so fault injection behaves
    identically whether the batch runs in the driver process
    (``workers=1``) or in a pool child — the driver never activates the
    fault itself, which would double-apply it under the fork start
    method.  Shrinking of failures also happens here, so failing cases
    parallelise with the rest.
    """
    from ..lattice.points import DEFAULT_FOOTPRINT_TABLE, DEFAULT_LATTICE_CACHE

    if os.environ.get("REPRO_CHECK_KILL_WORKER"):
        import multiprocessing

        # Test hook: die abruptly (as a segfault or OOM kill would), but
        # only in a pool child — the driver process must survive to
        # report the failure.
        if multiprocessing.parent_process() is not None:
            os._exit(3)

    if mode == "flow":
        from .flowcheck import flow_spec_from_dict, generate_flow_case, run_flow_case

    out = []
    with inject_fault(fault):
        for origin, payload in tasks:
            if mode == "flow":
                if origin == "corpus":
                    spec = flow_spec_from_dict(payload)
                else:
                    spec = generate_flow_case(
                        payload, seed, max_accesses=config.max_accesses
                    )
            elif origin == "corpus":
                spec = spec_from_dict(payload)
            else:
                spec = generate_case(payload, seed, max_accesses=config.max_accesses)
            # A named span per case: `repro check` pool workers share the
            # tracing machinery the serve workers use, so per-case wall
            # time is attributable in any profile of a check run.
            with span("check.case", case_id=spec.case_id, origin=origin):
                art = (
                    run_flow_case(spec, config)
                    if mode == "flow"
                    else run_case(spec, config)
                )
            if not art.violations:
                entry = None
            elif mode == "flow":
                entry = _flow_failure_entry(spec, art, origin)
            else:
                entry = _failure_entry(spec, art, config, origin)
            first = (
                (art.violations[0].invariant, art.violations[0].detail)
                if art.violations
                else None
            )
            out.append((dict(art.tally.counts), entry, first))
    # Ship the analytic-cache entries back so a --cache-dir driver can
    # persist what the batch computed (child processes die with the pool).
    return (
        out,
        DEFAULT_LATTICE_CACHE.export_entries(),
        DEFAULT_FOOTPRINT_TABLE.export_entries(),
        _plan.DEFAULT_PLAN_CACHE.export_entries(),
    )


def run_check(
    *,
    cases: int = 100,
    seed: int = 0,
    corpus_path: str | None = None,
    config: CheckConfig | None = None,
    fault: str | None = None,
    workers: int = 1,
    mode: str = "doall",
) -> dict:
    """Replay the corpus, fuzz ``cases`` fresh nests, report the verdict.

    ``mode="flow"`` fuzzes two-statement dataflow programs and evaluates
    the schedule-vs-replay oracles (:mod:`repro.check.flowcheck`)
    instead of the single-nest pipeline; the corpus, when given, must be
    a ``repro.flow-corpus`` document.

    ``workers > 1`` partitions the tasks (corpus replays first, then the
    seeded generated cases) into contiguous batches across a
    ``ProcessPoolExecutor``.  Per-task results are merged back in the
    original task order — tallies, failure entries, and shrunk witnesses
    are all deterministic per case — so the report is identical for any
    worker count (``duration_s`` aside), and ``workers`` is deliberately
    not recorded in it.
    """
    config = config or CheckConfig()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tally = Tally()
    failures: list[dict] = []
    corpus_info: dict | None = None
    t0 = time.perf_counter()

    tasks: list[tuple] = []
    if corpus_path and os.path.exists(corpus_path):
        if mode == "flow":
            from .flowcheck import load_flow_corpus

            entries = load_flow_corpus(corpus_path)
        else:
            entries = load_corpus(corpus_path)
        corpus_info = {"path": str(corpus_path), "entries": len(entries)}
        tasks.extend(("corpus", entry["spec"]) for entry in entries)
    tasks.extend(("generated", case_id) for case_id in range(cases))

    if workers == 1 or len(tasks) <= 1:
        results, _, _, _ = _run_task_batch(tasks, seed, config, fault, mode)
    else:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        from ..lattice.points import DEFAULT_FOOTPRINT_TABLE, DEFAULT_LATTICE_CACHE

        # Small contiguous batches load-balance the uneven per-case cost
        # (a failing case also pays for shrinking); collecting futures in
        # submission order restores the serial task order.
        nworkers = min(workers, len(tasks))
        chunk = -(-len(tasks) // (nworkers * 4))
        batches = [tasks[i : i + chunk] for i in range(0, len(tasks), chunk)]
        results = []
        with ProcessPoolExecutor(max_workers=nworkers) as pool:
            futures = [
                pool.submit(_run_task_batch, batch, seed, config, fault, mode)
                for batch in batches
            ]
            for future in futures:
                try:
                    (
                        batch_results,
                        lattice_entries,
                        table_entries,
                        plan_entries,
                    ) = future.result()
                except BrokenProcessPool as exc:
                    raise ReproError(
                        f"a check worker process died mid-batch (killed or "
                        f"crashed) with {len(results)} of {len(tasks)} cases "
                        f"done; re-run with --workers 1 to isolate the "
                        f"failing case"
                    ) from exc
                results.extend(batch_results)
                if fault is None:
                    # Keep what the children computed (for --cache-dir
                    # persistence); faulted runs are self-tests whose
                    # poisoned values must never reach a shared cache.
                    DEFAULT_LATTICE_CACHE.absorb_entries(lattice_entries)
                    DEFAULT_FOOTPRINT_TABLE.absorb_entries(table_entries)
                    _plan.DEFAULT_PLAN_CACHE.absorb_entries(plan_entries)

    for (origin, payload), (counts, entry, first) in zip(tasks, results):
        for name, count in counts.items():
            tally.counts[name] = tally.counts.get(name, 0) + count
        if entry is not None:
            if origin == "generated" and first is not None:
                logger.warning(
                    "case %d violated %s: %s", payload, first[0], first[1]
                )
            failures.append(entry)

    return build_check_report(
        cases=len(tasks),
        seed=seed,
        passed=len(tasks) - len(failures),
        failures=failures,
        invariant_evaluations=tally.counts,
        corpus=corpus_info,
        config=config.to_dict(),
        fault=fault,
        duration_s=time.perf_counter() - t0,
        meta={"mode": "flow"} if mode == "flow" else None,
    )


def check_main(argv: list[str] | None = None, *, out=None) -> int:
    """Entry point for ``repro check``."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Differential self-check: fuzz loop nests and cross-"
        "validate the analytic model, the lattice oracles, and both "
        "simulator engines.",
    )
    parser.add_argument("--cases", type=int, default=100, metavar="N")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument("--corpus", default=None, metavar="PATH",
                        help="replay a persisted corpus before fuzzing")
    parser.add_argument("--json-report", default=None, metavar="PATH",
                        help="write the repro.check-report JSON here")
    parser.add_argument("--flow", action="store_true",
                        help="fuzz two-statement dataflow programs and check "
                        "the communication schedule against the replayed "
                        "execution (conservation + transfer-count parity)")
    parser.add_argument("--inject-fault", default=None, choices=sorted(FAULTS),
                        help="deliberately break one oracle (self-test)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="partition the cases across N worker processes "
                        "(the report is identical for any N)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist the analytic caches (warm start) in DIR; "
                        "defaults to $REPRO_CACHE_DIR when that is set")
    parser.add_argument("--max-accesses", type=int, default=6000)
    parser.add_argument("--shrink-budget", type=int, default=200)
    parser.add_argument("--log-level", default=None,
                        choices=["DEBUG", "INFO", "WARNING", "ERROR"])
    args = parser.parse_args(argv)
    if args.cases < 0:
        parser.error("--cases must be >= 0")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.log_level:
        configure_logging(args.log_level)
    out = out or sys.stdout

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if cache_dir:
        from ..lattice.persist import load_caches, save_caches

        loaded = load_caches(cache_dir)
        logger.info(
            "warm-started analytic caches: %d entries from %s", loaded, cache_dir
        )

    config = CheckConfig(
        max_accesses=args.max_accesses, shrink_budget=args.shrink_budget
    )
    try:
        report = run_check(
            cases=args.cases,
            seed=args.seed,
            corpus_path=args.corpus,
            config=config,
            fault=args.inject_fault,
            workers=args.workers,
            mode="flow" if args.flow else "doall",
        )
    except ReproError as e:
        print(f"repro check: error: {e}", file=out)
        return 1
    if cache_dir and args.inject_fault is None:
        # A faulted run computes deliberately wrong values; never let them
        # reach the persistent warm-start cache.
        save_caches(cache_dir)
    if args.json_report:
        dump_report(report, args.json_report)

    print(
        f"repro check: {report['cases']} cases (seed {report['seed']}) -> "
        f"{report['passed']} passed, {report['failed']} failed "
        f"in {report['duration_s']:.1f}s",
        file=out,
    )
    evals = report["invariant_evaluations"]
    print(
        "invariant evaluations: "
        + ", ".join(f"{k}={v}" for k, v in sorted(evals.items())),
        file=out,
    )
    for f in report["failures"]:
        print(
            f"FAILED case {f['case_id']} ({f['origin']}): {f['invariant']} — "
            f"{f['detail']}",
            file=out,
        )
        print(
            f"  shrunk to depth {f['shrunk_depth']} in {f['shrink_steps']} steps:",
            file=out,
        )
        for line in f["shrunk_source"].rstrip().splitlines():
            print(f"    {line}", file=out)
    if report["failed"] and args.inject_fault:
        print(
            f"(fault {args.inject_fault!r} was injected deliberately — "
            "failures above demonstrate detection)",
            file=out,
        )
    return 1 if report["failed"] else 0
