"""Cross-oracle invariants for the differential checker.

Each invariant is a function over :class:`CaseArtifacts` (everything the
pipeline produced for one case) that appends :class:`Violation` records
and tallies how often it was *applicable* — several of the sharp
equalities only hold under explicit guards (injective ``G``, single
class per array, no write-shared lines), and an "all green" verdict is
only meaningful alongside the applicability counts.

The theorem chain implemented here is the provable version of the
paper's approximations:

* ``single == |det L|`` when ``rank(G) = depth`` (injectivity);
* ``single ≤ exact ≤ R·single`` (union bound, always);
* ``exact ≤ Π(sides_k + u'_k)`` — the coefficient-space envelope, with
  ``u'`` the member-offset spread *in coefficient space* (Theorem 4's
  dilation argument made exact);
* ``Theorem-4 ≥ exact`` for two-member classes whose offset difference
  has uniform sign per coordinate (Lemma 3's overlap bound; with mixed
  signs or ≥3 members the paper's first-order formula can undercount
  the true union, so the guard is part of the declared contract).

Simulator-side, misses are tied to footprints exactly where the MSI
protocol makes them equal: on a fresh infinite cache with no write-shared
lines, per-processor misses are the distinct lines touched, directory
cold fills are the distinct (array, line) pairs, and the processor that
owns the full origin tile measures exactly the analytic per-tile
cumulative footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import int_rank
from ..core import cumulative as _cum
from ..core.footprint import footprint_size
from ..core.tiles import RectangularTile
from ..lattice.snf import solve_integer

__all__ = ["Violation", "Tally", "CaseArtifacts", "run_invariants"]


@dataclass(frozen=True)
class Violation:
    """One invariant failure on one case."""

    invariant: str
    detail: str


class Tally:
    """invariant name → number of times it was applicable."""

    def __init__(self):
        self.counts: dict[str, int] = {}

    def hit(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    def merge(self, other: "Tally") -> None:
        for k, v in other.counts.items():
            self.hit(k, v)


@dataclass
class CaseArtifacts:
    """Everything the pipeline produced for one case."""

    spec: object
    nest: object
    uisets: list
    result: object  # PartitionResult (rectangular primary)
    estimate: object  # TrafficEstimate (exact method) for result.tile
    pepiped: object | None  # ParallelepipedOptResult or None
    sim_fast: object | None
    sim_exact: object | None
    streams: dict | None  # proc -> list[RefStream]
    schedule_counts: list[int] | None
    emitted: str | None
    numeric_rect: object | None = None  # RectOptResult, theorem-4 scoring
    plan_result: object | None = None  # plan-tier RectOptResult (None = fallback)
    pepiped_slsqp: object | None = None  # SLSQP-alone portfolio result
    pepiped_anneal: object | None = None  # anneal-alone portfolio result
    violations: list[Violation] = field(default_factory=list)
    tally: Tally = field(default_factory=Tally)

    def fail(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))


# ----------------------------------------------------------------------
# Stream-derived measurements (independent of both the analytic model
# and the directory's own bookkeeping).


def _line_key(array: str, coords: tuple, line_size: int) -> tuple:
    if line_size == 1:
        return (array, coords)
    return (array, coords[:-1] + (coords[-1] // line_size,))


def stream_measurements(streams: dict, line_size: int) -> dict:
    """Distinct lines/elements, write-sharing, and predicted upgrades.

    Walks each processor's accesses in issue order (iteration-major,
    streams in list order within an iteration), so the first access kind
    per line is known: a line whose first access is a read and that the
    same processor later writes costs exactly one S→M upgrade when nobody
    else writes it.
    """
    lines_per_proc: dict[int, set] = {}
    upgrades_per_proc: dict[int, int] = {}
    elements_per_array: dict[str, set] = {}
    line_touchers: dict[tuple, set] = {}
    line_written: set = set()
    for p, st in streams.items():
        first_kind: dict[tuple, bool] = {}  # line -> first access was a write
        written: set = set()
        count = int(st[0].coords.shape[0]) if st else 0
        per_ref = [
            (s.array, getattr(s.kind, "value", s.kind) != "read", s.coords)
            for s in st
        ]
        for n in range(count):
            for array, write_like, coords_arr in per_ref:
                coords = tuple(int(x) for x in coords_arr[n])
                key = _line_key(array, coords, line_size)
                if key not in first_kind:
                    first_kind[key] = write_like
                elements_per_array.setdefault(array, set()).add((array, coords))
                line_touchers.setdefault(key, set()).add(p)
                if write_like:
                    written.add(key)
                    line_written.add(key)
        lines_per_proc[p] = set(first_kind)
        upgrades_per_proc[p] = sum(
            1 for key in written if not first_kind[key]
        )
    write_shared = {
        key
        for key, procs in line_touchers.items()
        if len(procs) > 1 and key in line_written
    }
    return {
        "lines_per_proc": {p: len(v) for p, v in lines_per_proc.items()},
        "upgrades_per_proc": upgrades_per_proc,
        "distinct_lines": len(line_touchers),
        "elements_per_array": {a: len(v) for a, v in elements_per_array.items()},
        "write_shared_lines": len(write_shared),
    }


# ----------------------------------------------------------------------
# Invariant groups


def check_parse_roundtrip(art: CaseArtifacts) -> None:
    """The lowered nest carries exactly the spec's reference multiset."""
    art.tally.hit("parse-roundtrip")
    got = sorted(
        (
            a.ref.array,
            a.kind.value,
            tuple(tuple(int(x) for x in row) for row in a.ref.g),
            tuple(int(x) for x in a.ref.offset),
        )
        for a in art.nest.accesses
    )
    want = art.spec.access_multiset()
    if got != want:
        art.fail("parse-roundtrip", f"lowered accesses {got} != spec {want}")
    extents = tuple(int(x) for x in art.nest.space.extents)
    if extents != tuple(art.spec.extents):
        art.fail(
            "parse-roundtrip", f"space extents {extents} != spec {art.spec.extents}"
        )


def check_classification(art: CaseArtifacts) -> None:
    """Classification is a partition of the accesses."""
    art.tally.hit("classification-partition")
    classified = sum(s.size for s in art.uisets)
    if classified != len(art.nest.accesses):
        art.fail(
            "classification-partition",
            f"{classified} classified refs != {len(art.nest.accesses)} accesses",
        )


def check_theorem_chain(art: CaseArtifacts, *, eps: float = 1e-6) -> None:
    """Analytic model vs exact lattice enumeration, per class."""
    tile = art.result.tile
    sides = np.asarray(tile.sides, dtype=np.int64)
    depth = art.nest.space.depth
    det_l = int(tile.iterations)
    for s in art.uisets:
        exact = _cum.cumulative_footprint_size_exact(s, tile)
        single = footprint_size(s.base_ref(), tile)
        art.tally.hit("union-bound")
        if not (single <= exact <= s.size * single):
            art.fail(
                "union-bound",
                f"{s.array}: single={single} exact={exact} R={s.size}",
            )
        injective = int_rank(s.g) == depth
        if injective:
            art.tally.hit("exact-ge-detL")
            if single != det_l:
                art.fail(
                    "exact-ge-detL",
                    f"{s.array}: injective G but single={single} != |det L|={det_l}",
                )
            if exact < det_l:
                art.fail(
                    "exact-ge-detL", f"{s.array}: exact={exact} < |det L|={det_l}"
                )
            # Coefficient-space envelope: members sit at integer lattice
            # offsets x_r (x_r·G = a_r − a_0); the union of their boxes
            # fits in the bounding box with per-axis spread u'.
            xs = []
            for r in range(s.size):
                x = solve_integer(s.g, s.offsets[r] - s.offsets[0])
                if x is None:  # pragma: no cover - contradicts classification
                    xs = None
                    break
                xs.append(x)
            if xs is not None:
                xs = np.asarray(xs, dtype=np.int64)
                u_prime = xs.max(axis=0) - xs.min(axis=0)
                envelope = int(np.prod(sides + u_prime))
                art.tally.hit("envelope-upper")
                if exact > envelope:
                    art.fail(
                        "envelope-upper",
                        f"{s.array}: exact={exact} > envelope={envelope} "
                        f"(sides={sides.tolist()}, u'={u_prime.tolist()})",
                    )
                if s.size == 2:
                    diff = s.offsets[1] - s.offsets[0]
                    uniform_sign = bool(np.all(diff >= 0) or np.all(diff <= 0))
                    if uniform_sign:
                        try:
                            th4 = _cum.cumulative_footprint_rect(s, tile)
                        except Exception:  # pragma: no cover - guard said ok
                            th4 = None
                        if th4 is not None:
                            art.tally.hit("theorem4-ge-exact")
                            if th4 + eps < exact:
                                art.fail(
                                    "theorem4-ge-exact",
                                    f"{s.array}: Theorem-4 cost {th4} < exact "
                                    f"count {exact} (sides={sides.tolist()})",
                                )


def check_integerisation(art: CaseArtifacts, *, round_det_tol: float) -> None:
    """``|det L| = V`` survives integerisation within declared envelopes."""
    spec = art.spec
    v = spec.volume / spec.processors
    tile_vol = int(art.result.tile.iterations)
    art.tally.hit("rect-integerisation")
    if not (v - 1e-9 <= tile_vol <= v * 2**spec.depth + 1e-9):
        art.fail(
            "rect-integerisation",
            f"tile volume {tile_vol} outside [V, V·2^depth] = "
            f"[{v}, {v * 2 ** spec.depth}]",
        )
    if art.pepiped is not None:
        det = abs(float(np.linalg.det(art.pepiped.tile.l_matrix.astype(float))))
        art.tally.hit("pepiped-integerisation")
        if abs(det - v) > round_det_tol * v + 1e-9:
            art.fail(
                "pepiped-integerisation",
                f"|det L|={det} drifts more than {round_det_tol:.0%} from V={v}",
            )
        art.tally.hit("pepiped-improvement")
        claimed = art.pepiped.improvement
        rect_obj = art.pepiped.rectangular_objective
        actual = (rect_obj - art.pepiped.objective) / rect_obj if rect_obj else 0.0
        if claimed > 0 and abs(claimed - actual) > 1e-6:
            art.fail(
                "pepiped-improvement",
                f"claimed improvement {claimed} != (rect-obj)/rect {actual}",
            )


def check_portfolio(art: CaseArtifacts, *, eps: float = 1e-6) -> None:
    """The optimizer portfolio never loses to its members or lies.

    * ``pepiped-improvement-nonneg`` — the reported ``improvement`` is
      never negative (the rectangular diagonal is always a portfolio
      member, so a worse member must not surface as the result);
    * ``pepiped-objective-consistent`` — every claimed objective
      (portfolio and members-alone) matches the Theorem-2 objective
      recomputed from the returned ``L`` matrix (catches a member that
      reports a better score than its matrix achieves — the ``anneal``
      fault);
    * ``portfolio-never-loses`` — the portfolio objective is no worse
      than SLSQP-alone, anneal-alone, or the rectangular baseline
      (member runs share the portfolio's seeds, so each alone-run is a
      candidate subset and the merge must dominate it).
    """
    from ..core.optimize import _theorem2_objective

    pe = art.pepiped
    if pe is None:
        return

    art.tally.hit("pepiped-improvement-nonneg")
    if pe.improvement < 0:
        art.fail(
            "pepiped-improvement-nonneg",
            f"portfolio reported improvement {pe.improvement} < 0 "
            f"(winner {pe.winner})",
        )

    for name, res in (
        ("portfolio", pe),
        ("slsqp-alone", art.pepiped_slsqp),
        ("anneal-alone", art.pepiped_anneal),
    ):
        if res is None:
            continue
        art.tally.hit("pepiped-objective-consistent")
        l = res.l_matrix.shape[0]
        recomputed = _theorem2_objective(
            art.uisets, np.asarray(res.l_matrix, dtype=float).ravel(), l
        )
        denom = max(abs(recomputed), 1.0)
        if abs(res.objective - recomputed) > eps * denom:
            art.fail(
                "pepiped-objective-consistent",
                f"{name}: claimed objective {res.objective} != Theorem-2 "
                f"objective {recomputed} recomputed from its L matrix",
            )

    for name, res in (
        ("slsqp-alone", art.pepiped_slsqp),
        ("anneal-alone", art.pepiped_anneal),
    ):
        if res is None:
            continue
        art.tally.hit("portfolio-never-loses")
        if pe.objective > res.objective * (1.0 + eps) + eps:
            art.fail(
                "portfolio-never-loses",
                f"portfolio objective {pe.objective} (winner {pe.winner}) "
                f"costlier than {name} objective {res.objective}",
            )
    if pe.objective <= pe.rectangular_objective * (1.0 + eps) + eps:
        art.tally.hit("portfolio-never-loses")
    else:
        # Only legal when the continuous diagonal itself has no feasible
        # integer rounding (it was a candidate and lost on feasibility).
        art.tally.hit("pepiped-rect-unroundable")


def check_codegen(art: CaseArtifacts) -> None:
    """Generated schedules cover the iteration space exactly once."""
    if art.schedule_counts is None:
        return
    art.tally.hit("codegen-coverage")
    total = sum(art.schedule_counts)
    if total != art.spec.volume:
        art.fail(
            "codegen-coverage",
            f"schedule covers {total} iterations, space has {art.spec.volume}",
        )
    if art.emitted is not None and "processor 0" not in art.emitted:
        art.fail("codegen-coverage", "emitted pseudo-code lacks processor block")


def check_engine_parity(art: CaseArtifacts) -> None:
    """Fast and exact engines must agree on every counter."""
    fast, exact = art.sim_fast, art.sim_exact
    if fast is None or exact is None:
        return
    art.tally.hit("engine-parity")
    if fast != exact:
        art.fail("engine-parity", f"SimulationResult mismatch: {fast} != {exact}")
        return
    for p in range(art.spec.processors):
        if fast.machine.caches[p].stats != exact.machine.caches[p].stats:
            art.fail("engine-parity", f"cache stats differ on processor {p}")
    if fast.machine.directory.stats != exact.machine.directory.stats:
        art.fail("engine-parity", "directory stats differ")
    if (
        fast.machine.directory.sharer_histogram()
        != exact.machine.directory.sharer_histogram()
    ):
        art.fail("engine-parity", "sharer histograms differ")


def check_simulation_model(art: CaseArtifacts, *, ratio_eps: float = 1e-9) -> None:
    """Simulator counters vs stream measurements vs analytic predictions."""
    sim = art.sim_exact or art.sim_fast
    if sim is None or art.streams is None:
        return
    spec = art.spec
    meas = stream_measurements(art.streams, spec.line_size)
    no_write_sharing = meas["write_shared_lines"] == 0

    art.tally.hit("accesses-conserved")
    expected = spec.total_accesses
    if sim.total_accesses != expected:
        art.fail(
            "accesses-conserved",
            f"total accesses {sim.total_accesses} != volume·refs·sweeps {expected}",
        )

    art.tally.hit("cold-fills-distinct-lines")
    if int(sim.cold_misses) != meas["distinct_lines"]:
        art.fail(
            "cold-fills-distinct-lines",
            f"directory cold fills {sim.cold_misses} != distinct (array,line) "
            f"pairs {meas['distinct_lines']}",
        )

    # CacheStats.misses counts all memory-visible events, including S->M
    # upgrades; line *fills* (misses minus upgrades) are what map onto
    # distinct lines.
    for p in sim.processors:
        lines = meas["lines_per_proc"].get(p.processor, 0)
        fills = int(p.misses) - int(p.write_upgrades)
        art.tally.hit("fills-ge-distinct-lines")
        if fills < lines:
            art.fail(
                "fills-ge-distinct-lines",
                f"proc {p.processor}: line fills {fills} < distinct lines "
                f"{lines}",
            )
        if no_write_sharing:
            art.tally.hit("fills-eq-distinct-lines")
            if fills != lines:
                art.fail(
                    "fills-eq-distinct-lines",
                    f"proc {p.processor}: line fills {fills} (misses "
                    f"{p.misses} - upgrades {p.write_upgrades}) != distinct "
                    f"lines {lines} with no write-shared lines",
                )
            # Private written lines upgrade iff first touched by a read.
            predicted_up = meas["upgrades_per_proc"].get(p.processor, 0)
            art.tally.hit("upgrades-predicted")
            if int(p.write_upgrades) != predicted_up:
                art.fail(
                    "upgrades-predicted",
                    f"proc {p.processor}: write upgrades {p.write_upgrades} "
                    f"!= read-before-write lines {predicted_up}",
                )
    if no_write_sharing:
        art.tally.hit("no-sharing-no-coherence")
        if int(sim.coherence_misses) or int(sim.invalidations):
            art.fail(
                "no-sharing-no-coherence",
                f"coherence misses {sim.coherence_misses} / invalidations "
                f"{sim.invalidations} without write-shared lines",
            )

    # Analytic per-tile footprints vs measured per-processor footprints.
    tile = art.result.tile
    classes_by_array: dict[str, list] = {}
    for s in art.uisets:
        classes_by_array.setdefault(s.array, []).append(s)
    exact_by_array = {
        a: sum(_cum.cumulative_footprint_size_exact(s, tile) for s in cl)
        for a, cl in classes_by_array.items()
    }
    for p in sim.processors:
        for array, measured in p.footprint.items():
            art.tally.hit("footprint-upper")
            if measured > exact_by_array.get(array, 0):
                art.fail(
                    "footprint-upper",
                    f"proc {p.processor}: measured footprint of {array} "
                    f"({measured}) exceeds per-tile exact bound "
                    f"({exact_by_array.get(array, 0)})",
                )

    # The processor owning the full origin tile measures the prediction
    # exactly (single-class arrays only: classes of one array may overlap).
    origin = sim.processors[0]
    if origin.iterations == int(tile.iterations):
        for array, cl in classes_by_array.items():
            if len(cl) != 1:
                continue
            art.tally.hit("origin-tile-footprint-exact")
            measured = origin.footprint.get(array, 0)
            if measured != exact_by_array[array]:
                art.fail(
                    "origin-tile-footprint-exact",
                    f"origin processor footprint of {array} = {measured}, "
                    f"exact per-tile cumulative = {exact_by_array[array]}",
                )

    # Whole-space: lattice-union oracle == brute stream enumeration.
    whole = RectangularTile(spec.extents)
    for array, cl in classes_by_array.items():
        if len(cl) != 1:
            continue
        art.tally.hit("whole-space-footprint")
        analytic = _cum.cumulative_footprint_size_exact(cl[0], whole)
        measured = meas["elements_per_array"].get(array, 0)
        if analytic != measured:
            art.fail(
                "whole-space-footprint",
                f"{array}: lattice-union count {analytic} != enumerated "
                f"distinct elements {measured}",
            )

    # Declared predicted-vs-measured envelope (traffic ratio).
    if no_write_sharing and all(len(cl) == 1 for cl in classes_by_array.values()):
        predicted = float(art.estimate.cold_misses)
        if predicted > 0 and origin.iterations == int(tile.iterations):
            art.tally.hit("traffic-ratio-envelope")
            max_fills = max(
                float(int(p.misses) - int(p.write_upgrades))
                for p in sim.processors
            )
            lo = predicted / spec.line_size - ratio_eps
            hi = predicted * (1.0 + ratio_eps)
            if not (lo <= max_fills <= hi):
                art.fail(
                    "traffic-ratio-envelope",
                    f"max line fills/processor {max_fills} outside declared "
                    f"envelope [{lo:.1f}, {hi:.1f}] (predicted {predicted}, "
                    f"line_size {spec.line_size})",
                )


def check_plan_parity(art: CaseArtifacts, *, eps: float = 1e-6) -> None:
    """Plan-tier instantiation vs the numeric Theorem-4 optimizer.

    When the structure has a closed-form plan, the instantiated cost and
    grid must match the numeric enumeration (the plan replicates the
    numeric float arithmetic, so the match is exact up to ``eps`` of
    defensive slack); a ``None`` plan result is a declared fallback, not
    a violation, and is tallied so the fallback *rate* stays observable.
    """
    if art.numeric_rect is None:
        return
    if art.plan_result is None:
        art.tally.hit("plan-fallback")
        return
    art.tally.hit("plan-parity")
    num, plan = art.numeric_rect, art.plan_result
    denom = max(abs(num.predicted_cost), 1.0)
    if abs(plan.predicted_cost - num.predicted_cost) > eps * denom:
        art.fail(
            "plan-parity",
            f"plan cost {plan.predicted_cost} != numeric theorem-4 cost "
            f"{num.predicted_cost}",
        )
    elif tuple(plan.grid) != tuple(num.grid):
        art.fail(
            "plan-parity",
            f"plan grid {tuple(plan.grid)} != numeric grid {tuple(num.grid)} "
            f"at equal cost {num.predicted_cost}",
        )


def run_invariants(art: CaseArtifacts, *, round_det_tol: float) -> None:
    """Evaluate every invariant group on a completed case."""
    check_parse_roundtrip(art)
    check_classification(art)
    check_theorem_chain(art)
    check_integerisation(art, round_det_tol=round_det_tol)
    check_portfolio(art)
    check_codegen(art)
    check_engine_parity(art)
    check_simulation_model(art)
    check_plan_parity(art)
