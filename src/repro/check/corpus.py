"""Persisted seed corpus for the differential checker.

Minimised failing cases (and hand-picked interesting ones) are stored as
JSON and replayed ahead of freshly generated cases — both by ``repro
check --corpus PATH`` and by the tier-1 regression test — so every bug
the fuzzer ever found stays fixed.
"""

from __future__ import annotations

import json

from .generator import CaseSpec, ClassSpec

__all__ = [
    "CORPUS_SCHEMA",
    "CORPUS_VERSION",
    "spec_to_dict",
    "spec_from_dict",
    "load_corpus",
    "save_corpus",
]

CORPUS_SCHEMA = "repro.check-corpus"
CORPUS_VERSION = 1


def spec_to_dict(spec: CaseSpec) -> dict:
    return {
        "case_id": spec.case_id,
        "depth": spec.depth,
        "extents": list(spec.extents),
        "processors": spec.processors,
        "line_size": spec.line_size,
        "sweeps": spec.sweeps,
        "classes": [
            {
                "array": c.array,
                "g": [list(row) for row in c.g],
                "offsets": [list(off) for off in c.offsets],
                "kinds": list(c.kinds),
            }
            for c in spec.classes
        ],
    }


def spec_from_dict(d: dict) -> CaseSpec:
    return CaseSpec(
        case_id=int(d.get("case_id", -1)),
        depth=int(d["depth"]),
        extents=tuple(int(x) for x in d["extents"]),
        processors=int(d["processors"]),
        line_size=int(d["line_size"]),
        sweeps=int(d["sweeps"]),
        classes=tuple(
            ClassSpec(
                array=c["array"],
                g=tuple(tuple(int(x) for x in row) for row in c["g"]),
                offsets=tuple(tuple(int(x) for x in off) for off in c["offsets"]),
                kinds=tuple(c["kinds"]),
            )
            for c in d["classes"]
        ),
    )


def load_corpus(path) -> list[dict]:
    """Corpus entries ``{"spec": ..., "invariant": ..., "note": ...}``."""
    if hasattr(path, "read"):
        doc = json.load(path)
    else:
        with open(path) as fh:
            doc = json.load(fh)
    if doc.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"not a check corpus: schema={doc.get('schema')!r}")
    if doc.get("version") != CORPUS_VERSION:
        raise ValueError(f"unsupported corpus version {doc.get('version')!r}")
    return list(doc.get("entries", []))


def save_corpus(path, entries: list[dict]) -> None:
    doc = {
        "schema": CORPUS_SCHEMA,
        "version": CORPUS_VERSION,
        "entries": list(entries),
    }
    if hasattr(path, "write"):
        json.dump(doc, path, indent=2)
        path.write("\n")
    else:
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
