"""Differential self-check subsystem (``repro check``).

The repository carries three independent oracles for the same physical
quantity — the analytic footprint model (:mod:`repro.core.cumulative`),
exact lattice enumeration (:mod:`repro.lattice.points`), and the
bit-identical pair of simulator engines (:mod:`repro.sim`).  This package
turns them into a standing bug-finder:

* :mod:`repro.check.generator` — seeded random generation of valid
  affine loop nests (depth 1–3, unimodular/nonsingular/singular ``G``,
  offset clusters forming uniformly intersecting classes, line sizes
  1–8, 2–16 processors);
* :mod:`repro.check.invariants` — the cross-oracle invariants each case
  must satisfy, with explicit applicability guards;
* :mod:`repro.check.harness` — runs parse→classify→optimize→codegen→
  simulate per case, evaluates the invariants, and assembles a
  ``repro.check-report``;
* :mod:`repro.check.shrink` — greedy minimisation of failing cases;
* :mod:`repro.check.corpus` — the persisted seed corpus replayed in
  tier-1 tests.

CLI: ``repro check --cases N --seed S [--corpus PATH]``.
"""

from .corpus import load_corpus, save_corpus, spec_from_dict, spec_to_dict
from .generator import CaseSpec, ClassSpec, generate_case
from .harness import CheckConfig, check_main, run_case, run_check
from .shrink import shrink

__all__ = [
    "CaseSpec",
    "ClassSpec",
    "CheckConfig",
    "check_main",
    "generate_case",
    "load_corpus",
    "run_case",
    "run_check",
    "save_corpus",
    "shrink",
    "spec_from_dict",
    "spec_to_dict",
]
