"""Seeded generation + oracles for dataflow (flow) programs.

``repro check --flow`` fuzzes two-statement producer/consumer programs —
statement one writes a handoff array ``T``, statement two reads it at
several uniformly generated offsets — and cross-validates the
communication schedule (:mod:`repro.flow.schedule`) against the replayed
execution (:mod:`repro.flow.execute`) with two oracles:

* ``flow-conservation`` — every line a consumer processor reads that an
  earlier statement's *other* processors wrote appears in the schedule's
  embedded line keys for that (consumer statement, processor).  The
  measured side walks the per-processor access streams event by event;
  the schedule side enumerates tile footprints — agreement is a genuine
  differential.
* ``flow-parity`` — the schedule's distinct-remote-line counts per
  (consumer statement, processor) equal the replay's, exactly.

Plus two cheap self-consistency oracles: the schedule digest must be
identical with and without embedded line keys
(``flow-schedule-deterministic``), and the totals block must be
internally consistent (``flow-totals-consistent``).

Validity by construction mirrors :mod:`repro.check.generator`: handoff
references share the identity reference matrix, so every cross-statement
intersecting pair is uniformly generated (Definition 5) and lowering
never rejects a generated case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ReproError
from .generator import _gen_processors
from .invariants import Tally, Violation

__all__ = [
    "FLOW_CORPUS_SCHEMA",
    "FLOW_CORPUS_VERSION",
    "FlowCaseSpec",
    "FlowCaseArtifacts",
    "generate_flow_case",
    "run_flow_case",
    "flow_spec_to_dict",
    "flow_spec_from_dict",
    "load_flow_corpus",
    "save_flow_corpus",
]

FLOW_CORPUS_SCHEMA = "repro.flow-corpus"
FLOW_CORPUS_VERSION = 1

_INDICES = ("i1", "i2", "i3")


@dataclass(frozen=True)
class FlowCaseSpec:
    """A complete generated flow test case.

    ``producer_depth`` may be smaller than ``depth`` (the consumer's):
    the producer then writes a lower-rank handoff array indexed by the
    leading indices — the imperfect-nest regime loop distribution must
    handle.  ``consumer_offsets`` are the consumer's read offsets into
    the handoff array ``T`` (identity reference matrix on both sides).
    """

    case_id: int
    depth: int
    producer_depth: int
    extents: tuple[int, ...]
    processors: int
    line_size: int
    sweeps: int
    strategy: str  # "co" | "independent"
    producer_offsets: tuple[tuple[int, ...], ...]  # reads of A in S1
    consumer_offsets: tuple[tuple[int, ...], ...]  # reads of T in S2

    @property
    def volume(self) -> int:
        v = 1
        for n in self.extents:
            v *= n
        return v

    @property
    def total_accesses(self) -> int:
        prod_vol = 1
        for n in self.extents[: self.producer_depth]:
            prod_vol *= n
        refs = (
            prod_vol * (1 + len(self.producer_offsets))
            + self.volume * (1 + len(self.consumer_offsets))
        )
        return refs * self.sweeps

    def source(self) -> str:
        return render_flow_source(self)

    def describe(self) -> str:
        return (
            f"flow case {self.case_id}: depth={self.depth} "
            f"(producer {self.producer_depth}) extents={self.extents} "
            f"P={self.processors} line={self.line_size} "
            f"sweeps={self.sweeps} strategy={self.strategy} "
            f"reads={len(self.consumer_offsets)}"
        )


@dataclass
class FlowCaseArtifacts:
    """Everything the flow pipeline produced for one case."""

    spec: FlowCaseSpec
    graph: object = None
    partition: object = None
    schedule: dict | None = None
    sim: object = None
    violations: list[Violation] = field(default_factory=list)
    tally: Tally = field(default_factory=Tally)

    def fail(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))


# ----------------------------------------------------------------------
# Rendering


def _sub(dim: int, offset: int) -> str:
    name = _INDICES[dim]
    if offset > 0:
        return f"{name} + {offset}"
    if offset < 0:
        return f"{name} - {-offset}"
    return name


def _identity_ref(array: str, offsets: tuple[int, ...]) -> str:
    subs = ", ".join(_sub(d, off) for d, off in enumerate(offsets))
    return f"{array}[{subs}]"


def render_flow_source(spec: FlowCaseSpec) -> str:
    """Two-nest producer/consumer ``Doall`` source for the spec."""
    lines: list[str] = []
    indent = 0
    if spec.sweeps > 1:
        lines.append(f"Doseq (t, 1, {spec.sweeps})")
        indent += 1

    def nest(depth: int, stmt: str) -> None:
        nonlocal indent
        base = indent
        for dim in range(depth):
            lines.append(
                "  " * indent
                + f"Doall ({_INDICES[dim]}, 0, {spec.extents[dim] - 1})"
            )
            indent += 1
        lines.append("  " * indent + stmt)
        while indent > base:
            indent -= 1
            lines.append("  " * indent + "EndDoall")

    zero_p = tuple(0 for _ in range(spec.producer_depth))
    rhs1 = (
        " + ".join(_identity_ref("A", off) for off in spec.producer_offsets)
        or "1"
    )
    nest(spec.producer_depth, f"{_identity_ref('T', zero_p)} = {rhs1}")

    zero_c = tuple(0 for _ in range(spec.depth))
    reads = " + ".join(
        _identity_ref("T", off) for off in spec.consumer_offsets
    )
    nest(spec.depth, f"{_identity_ref('B', zero_c)} = {reads}")

    if spec.sweeps > 1:
        lines.append("EndDoseq")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Generation


def generate_flow_case(
    case_id: int, seed: int, *, max_accesses: int = 6000
) -> FlowCaseSpec:
    """Deterministically generate one flow case (``(seed, case_id)``-keyed)."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, case_id, 0xF10]))
    depth = int(rng.integers(1, 3))
    if depth == 1:
        extents = [int(rng.integers(6, 33))]
    else:
        extents = [int(rng.integers(4, 13)) for _ in range(2)]
    # Occasionally an imperfect pipeline: rank-1 producer feeding a
    # rank-2 consumer (no shared grid exists across the depth groups).
    producer_depth = depth
    if depth == 2 and rng.random() < 0.2:
        producer_depth = 1
    line_size = int(rng.choice([1, 1, 1, 2, 4]))
    sweeps = 2 if rng.random() < 0.15 else 1
    strategy = "co" if case_id % 2 == 0 else "independent"

    n_prod_reads = int(rng.integers(0, 3))
    producer_offsets = tuple(
        tuple(int(x) for x in rng.integers(-2, 3, size=producer_depth))
        for _ in range(n_prod_reads)
    )
    # The consumer reads T at 1-3 offsets, at least one nonzero so the
    # handoff crosses tile boundaries and the schedule is non-trivial.
    n_cons_reads = int(rng.integers(1, 4))
    consumer_offsets = []
    for k in range(n_cons_reads):
        off = [int(x) for x in rng.integers(-2, 3, size=producer_depth)]
        if k == 0 and not any(off):
            off[int(rng.integers(0, producer_depth))] = int(rng.choice([-1, 1]))
        consumer_offsets.append(tuple(off))

    refs = 2 + n_prod_reads + n_cons_reads
    while True:
        volume = int(np.prod(extents))
        if volume * refs * sweeps <= max_accesses or max(extents) <= 2:
            break
        k = int(np.argmax(extents))
        extents[k] = max(2, extents[k] // 2)

    processors = _gen_processors(rng, tuple(extents))
    # A rank-1 producer in an imperfect pipeline must still split its
    # extents[0] iterations over every processor.
    if producer_depth < depth:
        processors = max(2, min(processors, extents[0]))
    return FlowCaseSpec(
        case_id=case_id,
        depth=depth,
        producer_depth=producer_depth,
        extents=tuple(extents),
        processors=processors,
        line_size=line_size,
        sweeps=sweeps,
        strategy=strategy,
        producer_offsets=producer_offsets,
        consumer_offsets=tuple(consumer_offsets),
    )


# ----------------------------------------------------------------------
# Corpus persistence


def flow_spec_to_dict(spec: FlowCaseSpec) -> dict:
    return {
        "case_id": spec.case_id,
        "depth": spec.depth,
        "producer_depth": spec.producer_depth,
        "extents": list(spec.extents),
        "processors": spec.processors,
        "line_size": spec.line_size,
        "sweeps": spec.sweeps,
        "strategy": spec.strategy,
        "producer_offsets": [list(o) for o in spec.producer_offsets],
        "consumer_offsets": [list(o) for o in spec.consumer_offsets],
    }


def flow_spec_from_dict(d: dict) -> FlowCaseSpec:
    return FlowCaseSpec(
        case_id=int(d.get("case_id", -1)),
        depth=int(d["depth"]),
        producer_depth=int(d.get("producer_depth", d["depth"])),
        extents=tuple(int(x) for x in d["extents"]),
        processors=int(d["processors"]),
        line_size=int(d["line_size"]),
        sweeps=int(d.get("sweeps", 1)),
        strategy=str(d.get("strategy", "co")),
        producer_offsets=tuple(
            tuple(int(x) for x in o) for o in d.get("producer_offsets", [])
        ),
        consumer_offsets=tuple(
            tuple(int(x) for x in o) for o in d["consumer_offsets"]
        ),
    )


def load_flow_corpus(path) -> list[dict]:
    """Flow corpus entries ``{"spec": ..., "invariant": ..., "note": ...}``."""
    import json

    if hasattr(path, "read"):
        doc = json.load(path)
    else:
        with open(path) as fh:
            doc = json.load(fh)
    if doc.get("schema") != FLOW_CORPUS_SCHEMA:
        raise ValueError(f"not a flow corpus: schema={doc.get('schema')!r}")
    if doc.get("version") != FLOW_CORPUS_VERSION:
        raise ValueError(f"unsupported flow corpus version {doc.get('version')!r}")
    return list(doc.get("entries", []))


def save_flow_corpus(path, entries: list[dict]) -> None:
    import json

    doc = {
        "schema": FLOW_CORPUS_SCHEMA,
        "version": FLOW_CORPUS_VERSION,
        "entries": list(entries),
    }
    if hasattr(path, "write"):
        json.dump(doc, path, indent=2)
        path.write("\n")
    else:
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")


# ----------------------------------------------------------------------
# Per-case pipeline + oracles


def run_flow_case(spec: FlowCaseSpec, config=None) -> FlowCaseArtifacts:
    """compile → co-partition → schedule → replay → flow oracles."""
    from ..flow import (
        build_schedule,
        compile_flow,
        partition_flow,
        simulate_flow,
    )

    art = FlowCaseArtifacts(spec=spec)
    try:
        art.graph = compile_flow(spec.source(), {})
        art.partition = partition_flow(
            art.graph, spec.processors, strategy=spec.strategy
        )
        art.schedule = build_schedule(
            art.graph,
            art.partition,
            processors=spec.processors,
            line_size=spec.line_size,
            include_lines=True,
        )
        bare = build_schedule(
            art.graph,
            art.partition,
            processors=spec.processors,
            line_size=spec.line_size,
            include_lines=False,
        )
        art.sim = simulate_flow(
            art.graph,
            art.partition,
            processors=spec.processors,
            line_size=spec.line_size,
            collect_lines=True,
        )
    except ReproError as e:
        art.fail("pipeline-error", f"{type(e).__name__}: {e}")
        return art
    except Exception as e:  # pragma: no cover - harness safety net
        art.fail("crash", f"{type(e).__name__}: {e}")
        return art

    totals = art.schedule["totals"]
    measured = art.sim.transfers

    # -- flow-parity: distinct remote lines per (consumer, processor) --
    art.tally.hit("flow-parity")
    if totals["per_consumer"] != measured["per_consumer"]:
        art.fail(
            "flow-parity",
            f"schedule per-consumer counts {totals['per_consumer']} != "
            f"replayed {measured['per_consumer']}",
        )

    # -- flow-conservation: measured remote lines ⊆ scheduled lines ----
    art.tally.hit("flow-conservation")
    scheduled: dict[tuple[str, int], set] = {}
    for row in art.schedule["transfers"]:
        key = (row["consumer"], row["consumer_proc"])
        bucket = scheduled.setdefault(key, set())
        for array, coords in row["line_keys"]:
            bucket.add((array, tuple(coords)))
    for stmt_name, per_proc in measured.get("lines", {}).items():
        for proc_str, lines in per_proc.items():
            key = (stmt_name, int(proc_str))
            missing = {
                (a, tuple(c)) for a, c in lines
            } - scheduled.get(key, set())
            if missing:
                art.fail(
                    "flow-conservation",
                    f"{len(missing)} line(s) read remotely by processor "
                    f"{proc_str} in {stmt_name} are absent from the "
                    f"schedule, e.g. {sorted(missing)[:3]}",
                )
                break

    # -- flow-schedule-deterministic: digest invariant to line embedding
    art.tally.hit("flow-schedule-deterministic")
    if art.schedule["digest"] != bare["digest"]:
        art.fail(
            "flow-schedule-deterministic",
            f"digest changed with include_lines: {art.schedule['digest']} "
            f"vs {bare['digest']}",
        )

    # -- flow-totals-consistent: the totals block adds up ---------------
    art.tally.hit("flow-totals-consistent")
    row_sum = sum(r["lines"] for r in art.schedule["transfers"])
    pc_sum = sum(
        n for per in totals["per_consumer"].values() for n in per.values()
    )
    pair_sum = sum(totals["by_pair"].values())
    if totals["transfer_lines"] != row_sum or totals["transfer_lines"] != pair_sum:
        art.fail(
            "flow-totals-consistent",
            f"transfer_lines={totals['transfer_lines']} but rows sum to "
            f"{row_sum} and by_pair to {pair_sum}",
        )
    elif totals["remote_lines"] != pc_sum:
        art.fail(
            "flow-totals-consistent",
            f"remote_lines={totals['remote_lines']} but per_consumer sums "
            f"to {pc_sum}",
        )

    return art
