"""Greedy minimisation of failing cases.

Given a failing :class:`~repro.check.generator.CaseSpec` and a predicate
``fails(spec) -> str | None`` (the violated invariant's name, or ``None``
when the case passes), repeatedly try structural simplifications —
fewer classes and members, lower depth, smaller extents / coefficients /
offsets, fewer processors, unit lines, one sweep — keeping any mutation
that still fails with the *same* invariant, until a fixpoint or the
evaluation budget runs out.

The mutations preserve spec validity (at least one write-like reference
survives); candidates the pipeline cannot partition are rejected by the
predicate itself, since they fail with a different invariant.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from .generator import CaseSpec, ClassSpec

__all__ = ["shrink", "candidates"]


def _ensure_write(classes: tuple[ClassSpec, ...]) -> tuple[ClassSpec, ...] | None:
    """Flip the first member to a write when no write-like ref survives."""
    if not classes:
        return None
    if any(k != "read" for c in classes for k in c.kinds):
        return classes
    c0 = classes[0]
    return (replace(c0, kinds=("write",) + c0.kinds[1:]),) + classes[1:]


def _drop_dimension(spec: CaseSpec, dim: int) -> CaseSpec | None:
    if spec.depth <= 1:
        return None
    extents = spec.extents[:dim] + spec.extents[dim + 1 :]
    classes = tuple(
        replace(c, g=c.g[:dim] + c.g[dim + 1 :]) for c in spec.classes
    )
    volume = 1
    for n in extents:
        volume *= n
    if volume < 2:
        return None
    return replace(
        spec,
        depth=spec.depth - 1,
        extents=extents,
        classes=classes,
        processors=min(spec.processors, 2),
    )


def candidates(spec: CaseSpec) -> Iterator[CaseSpec]:
    """Simplification candidates, most aggressive first."""
    # Drop a whole class.
    if len(spec.classes) > 1:
        for k in range(len(spec.classes)):
            classes = _ensure_write(spec.classes[:k] + spec.classes[k + 1 :])
            if classes:
                yield replace(spec, classes=classes)
    # Drop a class member.
    for k, c in enumerate(spec.classes):
        if c.size <= 1:
            continue
        for m in range(c.size):
            smaller = ClassSpec(
                array=c.array,
                g=c.g,
                offsets=c.offsets[:m] + c.offsets[m + 1 :],
                kinds=c.kinds[:m] + c.kinds[m + 1 :],
            )
            classes = _ensure_write(
                spec.classes[:k] + (smaller,) + spec.classes[k + 1 :]
            )
            if classes:
                yield replace(spec, classes=classes)
    # Drop a loop dimension.
    for dim in range(spec.depth - 1, -1, -1):
        cand = _drop_dimension(spec, dim)
        if cand is not None:
            yield cand
    # Shrink extents (halve, then decrement).
    for dim in range(spec.depth):
        n = spec.extents[dim]
        for smaller in {max(2, n // 2), n - 1}:
            if 2 <= smaller < n:
                extents = (
                    spec.extents[:dim] + (smaller,) + spec.extents[dim + 1 :]
                )
                volume = 1
                for x in extents:
                    volume *= x
                yield replace(
                    spec,
                    extents=extents,
                    processors=min(spec.processors, max(2, volume)),
                )
    # Fewer processors, unit lines, one sweep, simpler protocol traffic.
    if spec.processors > 2:
        yield replace(spec, processors=2)
        yield replace(spec, processors=spec.processors // 2)
    if spec.line_size > 1:
        yield replace(spec, line_size=1)
        if spec.line_size // 2 > 1:
            yield replace(spec, line_size=spec.line_size // 2)
    if spec.sweeps > 1:
        yield replace(spec, sweeps=1)
    # Simplify G entries (zero them, then reduce magnitude).
    for k, c in enumerate(spec.classes):
        for r in range(len(c.g)):
            for col in range(len(c.g[r])):
                e = c.g[r][col]
                if e == 0:
                    continue
                for smaller in ((0, e // abs(e)) if abs(e) > 1 else (0,)):
                    if smaller == e:
                        continue
                    row = c.g[r][:col] + (smaller,) + c.g[r][col + 1 :]
                    g = c.g[:r] + (row,) + c.g[r + 1 :]
                    yield replace(
                        spec,
                        classes=spec.classes[:k]
                        + (replace(c, g=g),)
                        + spec.classes[k + 1 :],
                    )
    # Pull offsets toward zero.
    for k, c in enumerate(spec.classes):
        for m in range(c.size):
            for col in range(c.dims):
                e = c.offsets[m][col]
                if e == 0:
                    continue
                smaller = 0 if abs(e) == 1 else e - e // abs(e)
                off = c.offsets[m][:col] + (smaller,) + c.offsets[m][col + 1 :]
                offsets = c.offsets[:m] + (off,) + c.offsets[m + 1 :]
                yield replace(
                    spec,
                    classes=spec.classes[:k]
                    + (replace(c, offsets=offsets),)
                    + spec.classes[k + 1 :],
                )
    # Sync accumulates → plain writes.
    for k, c in enumerate(spec.classes):
        if "sync" in c.kinds:
            kinds = tuple("write" if x == "sync" else x for x in c.kinds)
            yield replace(
                spec,
                classes=spec.classes[:k]
                + (replace(c, kinds=kinds),)
                + spec.classes[k + 1 :],
            )


def shrink(
    spec: CaseSpec,
    fails: Callable[[CaseSpec], str | None],
    *,
    budget: int = 250,
) -> tuple[CaseSpec, int]:
    """Greedily minimise ``spec`` while ``fails`` reports the same invariant.

    Returns ``(minimised spec, accepted steps)``; ``budget`` caps the
    number of predicate evaluations (each is a full pipeline run).
    """
    target = fails(spec)
    if target is None:
        return spec, 0
    steps = 0
    evals = 0
    progressed = True
    while progressed and evals < budget:
        progressed = False
        for cand in candidates(spec):
            if evals >= budget:
                break
            evals += 1
            try:
                verdict = fails(cand)
            except Exception:  # pragma: no cover - mutant crashed the harness
                continue
            if verdict == target:
                spec = cand
                steps += 1
                progressed = True
                break
    return spec, steps
