"""Seeded random generation of valid affine loop nests.

A :class:`CaseSpec` is the generator's unit of work: a complete,
self-contained description of one test case (loop depth and extents,
uniformly intersecting reference classes, processor count, line size,
sweep count) that can be rendered to ``Doall`` source text, replayed
from JSON (:mod:`repro.check.corpus`), and mutated structurally by the
shrinker (:mod:`repro.check.shrink`).

Validity by construction:

* every class's members are ``offset₀ + x·G`` for small integer ``x`` —
  their pairwise offset differences lie in the row lattice of ``G``, so
  the members are uniformly intersecting (Definition 6);
* at least one reference is write-like (the rendered statement needs an
  LHS);
* the processor count is a product of per-dimension factors that fit the
  extents, so a feasible rectangular grid always exists;
* the total access count is capped so the exact MSI engine stays fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["ClassSpec", "CaseSpec", "generate_case", "render_source"]

_ARRAYS = ("A", "B", "C", "D")
_INDICES = ("i1", "i2", "i3")


@dataclass(frozen=True)
class ClassSpec:
    """One intended uniformly intersecting class.

    ``g`` is the shared ``(depth, d)`` reference matrix; ``offsets`` the
    per-member length-``d`` offset vectors; ``kinds`` the per-member
    access kinds (``"read"`` / ``"write"`` / ``"sync"``).
    """

    array: str
    g: tuple[tuple[int, ...], ...]
    offsets: tuple[tuple[int, ...], ...]
    kinds: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.offsets)

    @property
    def dims(self) -> int:
        return len(self.g[0]) if self.g else 0

    def g_array(self) -> np.ndarray:
        return np.asarray(self.g, dtype=np.int64)


@dataclass(frozen=True)
class CaseSpec:
    """A complete generated test case."""

    case_id: int
    depth: int
    extents: tuple[int, ...]
    processors: int
    line_size: int
    sweeps: int
    classes: tuple[ClassSpec, ...]

    @property
    def volume(self) -> int:
        v = 1
        for n in self.extents:
            v *= n
        return v

    @property
    def total_refs(self) -> int:
        return sum(c.size for c in self.classes)

    @property
    def total_accesses(self) -> int:
        return self.volume * self.total_refs * self.sweeps

    def source(self) -> str:
        return render_source(self)

    def access_multiset(self) -> list[tuple]:
        """Expected ``(array, kind, G, offset)`` rows, as hashable tuples."""
        rows = []
        for c in self.classes:
            for off, kind in zip(c.offsets, c.kinds):
                rows.append((c.array, kind, c.g, off))
        return sorted(rows)

    def describe(self) -> str:
        return (
            f"case {self.case_id}: depth={self.depth} extents={self.extents} "
            f"P={self.processors} line={self.line_size} sweeps={self.sweeps} "
            f"classes={[(c.array, c.size) for c in self.classes]}"
        )


# ----------------------------------------------------------------------
# Rendering


def _subscript(col: int, g: np.ndarray, offset: np.ndarray) -> str:
    """Render one subscript expression, e.g. ``2i1 - i2 + 1``."""
    terms: list[str] = []
    for row in range(g.shape[0]):
        coeff = int(g[row, col])
        if coeff == 0:
            continue
        name = _INDICES[row]
        mag = f"{abs(coeff)}{name}" if abs(coeff) != 1 else name
        if not terms:
            terms.append(mag if coeff > 0 else f"-{mag}")
        else:
            terms.append(f"+ {mag}" if coeff > 0 else f"- {mag}")
    const = int(offset[col])
    if const or not terms:
        if not terms:
            terms.append(str(const))
        else:
            terms.append(f"+ {const}" if const > 0 else f"- {abs(const)}")
    return " ".join(terms)


def _ref(array: str, g: np.ndarray, offset: np.ndarray, *, sync: bool) -> str:
    subs = ", ".join(_subscript(c, g, offset) for c in range(g.shape[1]))
    return f"{'l$' if sync else ''}{array}[{subs}]"


def render_source(spec: CaseSpec) -> str:
    """``Doall`` source text whose lowering reproduces the spec's accesses.

    Every write-like member becomes the LHS of its own statement; all
    read members ride on the first statement's RHS (extra statements get
    a constant RHS).  A ``Doseq`` wrapper models ``sweeps > 1``.
    """
    writes: list[str] = []
    reads: list[str] = []
    for c in spec.classes:
        g = c.g_array()
        for off, kind in zip(c.offsets, c.kinds):
            text = _ref(c.array, g, np.asarray(off), sync=(kind == "sync"))
            (reads if kind == "read" else writes).append(text)
    if not writes:
        raise ValueError("spec has no write-like reference to use as an LHS")

    lines: list[str] = []
    indent = 0
    if spec.sweeps > 1:
        lines.append(f"Doseq (t, 1, {spec.sweeps})")
        indent += 1
    for dim in range(spec.depth):
        lines.append("  " * indent + f"Doall ({_INDICES[dim]}, 0, {spec.extents[dim] - 1})")
        indent += 1
    for n, lhs in enumerate(writes):
        rhs = " + ".join(reads) if (n == 0 and reads) else "1"
        lines.append("  " * indent + f"{lhs} = {rhs}")
    for dim in range(spec.depth - 1, -1, -1):
        indent -= 1
        lines.append("  " * indent + "EndDoall")
    if spec.sweeps > 1:
        lines.append("EndDoseq")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Generation


def _gen_g(rng: np.random.Generator, depth: int, d: int) -> tuple[tuple[int, ...], ...]:
    """A reference matrix: unimodular-ish, general nonsingular, or singular."""
    flavor = rng.choice(["unimodular", "general", "singular"], p=[0.4, 0.4, 0.2])
    if flavor == "unimodular":
        g = np.zeros((depth, d), dtype=np.int64)
        m = min(depth, d)
        for k in range(m):
            g[k, k] = rng.choice([-1, 1])
        for _ in range(int(rng.integers(0, 3))):
            r, s = rng.integers(0, depth, 2)
            if r == s:
                continue
            cand = g.copy()
            cand[r] += int(rng.choice([-1, 1])) * cand[s]
            if np.abs(cand).max() <= 2:
                g = cand
    else:
        g = rng.integers(-2, 3, size=(depth, d)).astype(np.int64)
        if flavor == "singular":
            if depth >= 2 and rng.random() < 0.5:
                r, s = rng.choice(depth, 2, replace=False)
                g[r] = int(rng.integers(0, 3)) * g[s]
            elif d >= 2:
                g[:, int(rng.integers(0, d))] = 0
            else:
                g[:, 0] = 0
    if not np.any(g):
        g[0, 0] = 1
    return tuple(tuple(int(x) for x in row) for row in g)


def _gen_class(
    rng: np.random.Generator, depth: int, array: str, d: int
) -> ClassSpec:
    g = _gen_g(rng, depth, d)
    g_arr = np.asarray(g, dtype=np.int64)
    size = int(rng.integers(1, 4))
    base = rng.integers(-3, 4, size=d).astype(np.int64)
    offsets = [base]
    for _ in range(size - 1):
        x = rng.integers(-2, 3, size=depth).astype(np.int64)
        offsets.append(base + x @ g_arr)
    kinds = tuple(
        "sync" if rng.random() < 0.07 else ("write" if rng.random() < 0.25 else "read")
        for _ in range(size)
    )
    return ClassSpec(
        array=array,
        g=g,
        offsets=tuple(tuple(int(x) for x in off) for off in offsets),
        kinds=kinds,
    )


def _gen_processors(rng: np.random.Generator, extents: tuple[int, ...]) -> int:
    """A product of per-dimension factors that fit the extents (≤ 16)."""
    factors = []
    for n in extents:
        if rng.random() < 0.5:
            divisors = [k for k in range(1, min(n, 4) + 1) if n % k == 0]
            factors.append(int(rng.choice(divisors)))
        else:
            factors.append(int(rng.integers(1, min(n, 4) + 1)))
    p = 1
    for f in factors:
        p *= f
    while p > 16:
        k = int(np.argmax(factors))
        p //= factors[k]
        factors[k] = 1
    if p < 2:
        for k, n in enumerate(extents):
            if n >= 2:
                factors[k] = 2
                p *= 2
                break
    return max(2, min(16, p))


def generate_case(case_id: int, seed: int, *, max_accesses: int = 6000) -> CaseSpec:
    """Deterministically generate one case (``(seed, case_id)``-keyed)."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, case_id]))
    depth = int(rng.integers(1, 4))
    if depth == 1:
        extents = [int(rng.integers(4, 25))]
    elif depth == 2:
        extents = [int(rng.integers(3, 11)) for _ in range(2)]
    else:
        extents = [int(rng.integers(3, 7)) for _ in range(3)]
    line_size = int(rng.choice([1, 1, 1, 2, 4, 8]))
    sweeps = 2 if rng.random() < 0.15 else 1

    n_classes = int(rng.integers(1, 4))
    classes: list[ClassSpec] = []
    used: list[tuple[str, int]] = []
    for k in range(n_classes):
        if used and rng.random() < 0.15:
            array, d = used[int(rng.integers(0, len(used)))]
        else:
            array = _ARRAYS[len({a for a, _ in used})]
            d = int(rng.integers(1, min(3, depth + 1) + 1))
            used.append((array, d))
        classes.append(_gen_class(rng, depth, array, d))

    if not any(k != "read" for c in classes for k in c.kinds):
        c0 = classes[0]
        classes[0] = replace(c0, kinds=("write",) + c0.kinds[1:])

    # Cap the exact-engine workload: shrink the largest extent until the
    # total access count fits the budget.
    total_refs = sum(c.size for c in classes)
    while True:
        volume = int(np.prod(extents))
        if volume * total_refs * sweeps <= max_accesses or max(extents) <= 2:
            break
        k = int(np.argmax(extents))
        extents[k] = max(2, extents[k] // 2)

    processors = _gen_processors(rng, tuple(extents))
    return CaseSpec(
        case_id=case_id,
        depth=depth,
        extents=tuple(extents),
        processors=processors,
        line_size=line_size,
        sweeps=sweeps,
        classes=tuple(classes),
    )
