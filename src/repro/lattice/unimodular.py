"""Unimodularity and mapping-property tests for reference matrices.

Implements the linear-algebraic conditions of Section 3.4:

* Lemma 1 — ``i ↦ i·G`` is one-to-one iff the *rows* of ``G`` are linearly
  independent.
* Lemma 2 — the map is onto (every integer point of the image space is
  hit) iff the *columns* of ``G`` are independent and the gcd of the
  maximal-order subdeterminants is 1 (Hermite normal form theorem).
* Theorem 1 — for square ``G``, the footprint of tile ``L`` is exactly the
  integer points of the parallelepiped ``L·G`` when ``G`` is unimodular.
* Section 3.4.1 — when the columns of ``G`` are dependent, select a maximal
  independent subset of columns (preferring one that makes the reduced
  matrix unimodular) and analyse the lower-dimensional reference.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._util import as_int_matrix, int_det, int_rank, minors_gcd
from ..exceptions import SingularMatrixError

__all__ = [
    "is_unimodular",
    "is_nonsingular",
    "is_one_to_one",
    "is_onto",
    "maximal_independent_columns",
    "select_unimodular_columns",
]


def is_unimodular(g) -> bool:
    """True iff ``g`` is square with determinant ±1."""
    g = as_int_matrix(g, name="G")
    if g.shape[0] != g.shape[1]:
        return False
    return abs(int_det(g)) == 1


def is_nonsingular(g) -> bool:
    """True iff ``g`` is square with nonzero determinant."""
    g = as_int_matrix(g, name="G")
    if g.shape[0] != g.shape[1]:
        return False
    return int_det(g) != 0


def is_one_to_one(g) -> bool:
    """Lemma 1: the map ``i ↦ i·G`` is injective iff rows are independent."""
    g = as_int_matrix(g, name="G")
    return int_rank(g) == g.shape[0]


def is_onto(g) -> bool:
    """Lemma 2: ``i ↦ i·G`` is onto Z^d iff columns are independent and the
    gcd of the order-``d`` subdeterminants is 1."""
    g = as_int_matrix(g, name="G")
    l, d = g.shape
    if int_rank(g) < d:
        return False
    return minors_gcd(g, d) == 1


def maximal_independent_columns(g) -> tuple[int, ...]:
    """Indices of a maximal set of linearly independent columns of ``g``.

    Greedy left-to-right selection (so e.g. for Example 7's
    ``[[1,2,1],[0,0,1]]`` it picks columns ``(0, 2)`` giving
    ``[[1,1],[0,1]]``, the paper's choice).
    """
    g = as_int_matrix(g, name="G")
    l, d = g.shape
    chosen: list[int] = []
    for c in range(d):
        candidate = chosen + [c]
        if int_rank(g[:, candidate]) == len(candidate):
            chosen.append(c)
    return tuple(chosen)


def select_unimodular_columns(g) -> tuple[int, ...] | None:
    """Find column indices making a square *unimodular* submatrix of ``g``.

    Section 3.4.1: "We derive a G' from G by choosing a maximal set of
    independent columns from G, such that G' is unimodular."  Searches all
    size-``rank`` column subsets; returns ``None`` when no unimodular
    selection exists ("It is possible that none of the maximal independent
    columns satisfy the conditions in Theorem 1").

    Only meaningful when ``rank(G) == l`` (full row rank); otherwise no
    square submatrix with ``l`` rows exists and ``None`` is returned.
    """
    g = as_int_matrix(g, name="G")
    l, d = g.shape
    if int_rank(g) < l:
        return None
    for cols in combinations(range(d), l):
        if abs(int_det(g[:, list(cols)])) == 1:
            return cols
    return None


def nonsingular_column_selection(g) -> tuple[int, ...]:
    """Column indices of a nonsingular ``l×l`` submatrix (needed by Thm 4).

    Prefers a unimodular selection when one exists; falls back to any
    nonsingular one (Theorem 4 only requires nonsingularity).  Raises
    :class:`SingularMatrixError` when ``rank(G) < l`` (the map is not
    injective; footprint needs the Theorem 5 / general-case treatment).
    """
    g = as_int_matrix(g, name="G")
    l, d = g.shape
    uni = select_unimodular_columns(g)
    if uni is not None:
        return uni
    if int_rank(g) < l:
        raise SingularMatrixError(
            "G has dependent rows; no nonsingular column selection exists"
        )
    for cols in combinations(range(d), l):
        if int_det(g[:, list(cols)]) != 0:
            return cols
    raise SingularMatrixError("no nonsingular column selection found")


__all__.append("nonsingular_column_selection")
__all__.append("is_nonsingular")
