"""Exact integer-point counting.

This module is the *oracle* layer: every closed-form footprint expression
in the paper (Eq 2, Theorems 1-5, Lemma 3) is validated against the exact
counts computed here.

Contents
--------
* :func:`count_distinct_images` — exact footprint of a box tile under an
  affine reference, by vectorised enumeration (Definition 3 verbatim).
* :func:`parallelepiped_lattice_points` — integer points on or inside the
  parallelepiped ``S(Q)`` of Definition 7 (Pick's theorem in 2-D, chunked
  exact-integer membership enumeration in general).
* :func:`parallelogram_boundary_points` — boundary lattice points of a 2-D
  parallelogram (the "+ L1 + L2" term of Example 6).
* :func:`union_of_boxes_size` — exact size of a union of translated integer
  boxes by coordinate compression; this gives the *exact* cumulative
  footprint for rectangular tiles, sharpening the paper's Theorem 4
  approximation.
* :func:`distinct_values_1d` — distinct values of a 1-D affine form over a
  box (the hard ``d = 1`` case of Section 3.8).

Kernel variants
---------------
The hot kernels (:func:`union_of_boxes_size`,
:func:`parallelepiped_lattice_points`) each exist twice: a vectorized
NumPy implementation (the default) and the original scalar reference
implementation, kept as a differential oracle.  Setting
``REPRO_SCALAR_KERNELS=1`` in the environment routes the public names to
the scalar paths; the ``*_scalar`` functions are also callable directly.
Both variants are exact — ``tests/test_kernels_vectorized.py`` asserts
they bit-match on fuzzed inputs.
"""

from __future__ import annotations

import itertools
import math
import os
import threading
from fractions import Fraction

import numpy as np

from .._util import (
    as_int_matrix,
    as_int_vector,
    box_points_array,
    box_volume,
    int_adjugate,
    int_det,
    int_rank,
    iter_box_chunks,
    vector_gcd,
)
from ..obs.tracing import span as _span

__all__ = [
    "count_distinct_images",
    "enumerate_footprint",
    "parallelepiped_lattice_points",
    "parallelepiped_lattice_points_scalar",
    "parallelogram_boundary_points",
    "union_of_boxes_size",
    "union_of_boxes_size_scalar",
    "distinct_values_1d",
    "scalar_kernels_enabled",
    "analytic_cache_stats",
    "FootprintTable",
    "DEFAULT_FOOTPRINT_TABLE",
    "LatticeCountCache",
    "DEFAULT_LATTICE_CACHE",
]

#: Bounding-box point budget of the chunked vectorized general-case
#: parallelepiped count.  Peak memory is bounded by the chunk size, not
#: this cap (the scalar oracle materialises the whole box and keeps the
#: historical 5M cap).
PARALLELEPIPED_ENUM_CAP = 50_000_000
_PARALLELEPIPED_SCALAR_CAP = 5_000_000
_MEMBERSHIP_CHUNK = 1 << 18


def scalar_kernels_enabled() -> bool:
    """True when ``REPRO_SCALAR_KERNELS`` selects the scalar oracle paths."""
    return os.environ.get("REPRO_SCALAR_KERNELS", "") not in ("", "0")


def enumerate_footprint(g, lo, hi, offset=None) -> np.ndarray:
    """All *distinct* data points ``i·G + a`` for ``i`` in the box ``[lo, hi]``.

    Returns an ``(N, d)`` int64 array of unique points — the footprint of
    Definition 3 for a rectangular tile, computed by brute force.
    """
    g = as_int_matrix(g, name="G")
    pts = box_points_array(lo, hi)
    imgs = pts @ g
    if offset is not None:
        imgs = imgs + as_int_vector(offset, name="offset")
    return np.unique(imgs, axis=0)


def count_distinct_images(g, lo, hi) -> int:
    """Exact footprint *size* of the box tile ``[lo, hi]`` under ``G``.

    The offset vector does not change the size (Proposition 1: footprints
    of uniformly generated references are translations of one another), so
    none is taken.
    """
    return int(enumerate_footprint(g, lo, hi).shape[0])


def _pick_parallelogram(q: np.ndarray) -> int:
    """Lattice points on or inside a 2-D parallelogram via Pick's theorem.

    For integer vertex vectors ``q1, q2`` anchored at the origin:
    ``points = Area + B/2 + 1`` where ``B = 2·(gcd(q1) + gcd(q2))``.
    Degenerate (zero-area) parallelograms fall back to segment counting.
    """
    area = abs(int_det(q))
    b1 = vector_gcd(q[0])
    b2 = vector_gcd(q[1])
    if area == 0:
        # Both edges collinear: the figure is the segment hull.  The number
        # of lattice points on a segment from 0 to v is gcd(v)+1.
        if b1 == 0 and b2 == 0:
            return 1
        # Points of {a*q1 + b*q2 : 0<=a,b<=1} all lie on the line through the
        # longer direction; count distinct integer points by enumeration of
        # the four corner-sum combinations' hull.
        direction = q[0] if b1 >= b2 else q[1]
        g = vector_gcd(direction)
        unit = direction // g if g else direction
        # Project corners onto the line (corners are 0, q1, q2, q1+q2).
        corners = [np.zeros(2, dtype=np.int64), q[0], q[1], q[0] + q[1]]
        coords = []
        for c in corners:
            # c = t * unit for rational t; with integer c and primitive unit,
            # t is integral iff c is a lattice point of the line.
            idx = 0 if unit[0] != 0 else 1
            t = Fraction(int(c[idx]), int(unit[idx]))
            coords.append(t)
        tmin, tmax = min(coords), max(coords)
        return int(math.floor(tmax) - math.ceil(tmin)) + 1
    return area + b1 + b2 + 1


def parallelepiped_lattice_points(q) -> int:
    """Number of integer points on or inside the parallelepiped ``S(Q)``.

    ``Q`` is ``(m, n)`` with rows the edge vectors (Definition 7).  Uses
    Pick's theorem for ``2×2`` inputs; the general case streams the
    bounding box in bounded-memory chunks through an exact-integer
    membership test (:class:`_ExactMembership`).  With
    ``REPRO_SCALAR_KERNELS=1`` the original scalar/float oracle runs
    instead (:func:`parallelepiped_lattice_points_scalar`).
    """
    if scalar_kernels_enabled():
        return parallelepiped_lattice_points_scalar(q)
    q = as_int_matrix(q, name="Q")
    m, n = q.shape
    if m == 2 and n == 2:
        return _pick_parallelogram(q)
    corners = _corner_points(q)
    lo = corners.min(axis=0)
    hi = corners.max(axis=0)
    if box_volume(lo, hi) > PARALLELEPIPED_ENUM_CAP:
        raise ValueError("parallelepiped too large for exact enumeration")
    if int_rank(q) < m:
        raise ValueError("S(Q) membership requires independent rows of Q")
    member = _ExactMembership(q, lo, hi)
    total = member.count_grid(lo, hi)
    if total is not None:
        return total
    total = 0
    for pts in iter_box_chunks(lo, hi, _MEMBERSHIP_CHUNK):
        total += member.count(pts)
    return total


def parallelepiped_lattice_points_scalar(q) -> int:
    """Scalar oracle for :func:`parallelepiped_lattice_points`.

    The original implementation: materialise the whole bounding box
    (capped at 5M points), solve for membership coefficients with float
    least squares, and re-verify borderline points exactly with
    ``fractions``.  Kept as the differential reference for the chunked
    exact-integer path.
    """
    q = as_int_matrix(q, name="Q")
    m, n = q.shape
    if m == 2 and n == 2:
        return _pick_parallelogram(q)
    corners = _corner_points_scalar(q)
    lo = corners.min(axis=0)
    hi = corners.max(axis=0)
    if box_volume(lo, hi) > _PARALLELEPIPED_SCALAR_CAP:
        raise ValueError("parallelepiped too large for exact enumeration")
    pts = box_points_array(lo, hi)
    mask = _in_parallelepiped_mask(q, pts)
    return int(mask.sum())


def _corner_points(q: np.ndarray) -> np.ndarray:
    """The 2^m corner points ``sum_{i in S} q_i`` of ``S(Q)`` (vectorized).

    Corner ``k`` is the subset-sum selected by the bits of ``k`` — one
    ``(2^m, m) @ (m, n)`` integer product instead of a Python double loop.
    """
    m = q.shape[0]
    bits = (np.arange(1 << m, dtype=np.int64)[:, None] >> np.arange(m)[None, :]) & 1
    return bits @ q


def _corner_points_scalar(q: np.ndarray) -> np.ndarray:
    """Scalar oracle for :func:`_corner_points` (original double loop)."""
    m = q.shape[0]
    n = q.shape[1]
    corners = np.zeros((1 << m, n), dtype=np.int64)
    for mask in range(1 << m):
        s = np.zeros(n, dtype=np.int64)
        for i in range(m):
            if mask >> i & 1:
                s = s + q[i]
        corners[mask] = s
    return corners


class _ExactMembership:
    """Chunked exact membership test ``x ∈ S(Q)`` for independent-row ``Q``.

    ``x ∈ S(Q)`` iff its (unique) coefficient vector ``c`` with
    ``c·Q = x`` satisfies ``0 ≤ c_i ≤ 1``.  Pick ``m`` independent
    columns of ``Q`` forming the invertible ``B = Q[:, cols]``; then
    ``c = x[cols]·B⁻¹ = x[cols]·adj(B)/det(B)``, so with
    ``s = x[cols]·adj(B)`` (all integers) membership is

    * bounds: ``0 ≤ s_i ≤ det`` (sign-flipped for negative ``det``), and
    * row-space: ``s·Q = det·x`` on *all* columns.

    No floats anywhere, so no border slop to re-verify — this replaces
    the float-lstsq + per-point ``Fraction`` recheck of the scalar
    oracle.  int64 arithmetic is used when a conservative magnitude bound
    proves it cannot overflow; otherwise the float + exact-border scalar
    mask runs per chunk (still bounded memory).
    """

    def __init__(self, q: np.ndarray, lo: np.ndarray, hi: np.ndarray):
        from .unimodular import maximal_independent_columns

        self.q = q
        m, n = q.shape
        self.cols = list(maximal_independent_columns(q))
        b = q[:, self.cols]
        self.det = int_det(b)
        adj = int_adjugate(b)  # object dtype: exact Python ints
        # Square Q: every x is in the row space, so s·Q = det·x holds
        # identically and the bounds check alone decides membership.
        self.need_recon = m < n
        max_pt = max(
            (max(abs(int(a)), abs(int(b_))) for a, b_ in zip(lo, hi)), default=0
        )
        max_adj = max((abs(int(x)) for x in adj.ravel()), default=0)
        max_q = int(np.abs(q).max()) if q.size else 0
        bound_scaled = m * max_pt * max_adj
        bound_recon = max(m * bound_scaled * max_q, abs(self.det) * max_pt)
        self.safe = max(bound_scaled, bound_recon) < 2**62
        self.adj64 = adj.astype(np.int64) if self.safe else None

    #: Bound on the per-slab working-set rows of :meth:`count_grid`.
    _SLAB_LIMIT = 2_000_000

    def count_grid(self, lo: np.ndarray, hi: np.ndarray) -> int | None:
        """Separable whole-box count for square ``Q``; None when inapplicable.

        With ``m == n`` the coefficient map is linear in each coordinate,
        so the scaled coefficients over the grid are a sum of per-axis
        contribution vectors — the box is swept one slab (of the longest
        axis) at a time with broadcast adds, never materialising point
        coordinates.  Falls back (``None``) for ``m < n`` (row-space
        check needs the full coordinates), unsafe int64 bounds, or
        degenerate slab shapes.
        """
        n = self.q.shape[1]
        if not self.safe or self.need_recon or n == 0:
            return None
        dims = [int(h - l + 1) for l, h in zip(lo, hi)]
        slab_axis = int(np.argmax(dims))
        rest_rows = 1
        for a, d in enumerate(dims):
            if a != slab_axis:
                rest_rows *= d
        if rest_rows > self._SLAB_LIMIT:
            return None
        # contrib[a][i] = (lo_a + i) · (adj row of axis a), shape (D_a, m).
        contrib = [None] * n
        for j, a in enumerate(self.cols):
            vals = np.int64(lo[a]) + np.arange(dims[a], dtype=np.int64)
            contrib[a] = vals[:, None] * self.adj64[j][None, :]
        rest = np.zeros((1, n), dtype=np.int64)
        for a in range(n):
            if a != slab_axis:
                rest = (rest[:, None, :] + contrib[a][None, :, :]).reshape(-1, n)
        lo_b, hi_b = (0, self.det) if self.det > 0 else (self.det, 0)
        total = 0
        for v in contrib[slab_axis]:
            s = rest + v
            total += int(np.all((s >= lo_b) & (s <= hi_b), axis=1).sum())
        return total

    def count(self, pts: np.ndarray) -> int:
        if not self.safe:
            return int(_in_parallelepiped_mask(self.q, pts).sum())
        scaled = pts[:, self.cols] @ self.adj64
        det = self.det
        if det > 0:
            cand = np.all((scaled >= 0) & (scaled <= det), axis=1)
        else:
            cand = np.all((scaled <= 0) & (scaled >= det), axis=1)
        if not self.need_recon:
            return int(cand.sum())
        if not cand.any():
            return 0
        recon = scaled[cand] @ self.q
        return int(np.all(recon == det * pts[cand], axis=1).sum())


def _in_parallelepiped_mask(q: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Boolean mask of ``pts`` lying in ``S(Q)`` (rational-exact).

    Requires the rows of ``Q`` to be linearly independent; then
    ``x ∈ S(Q)`` iff ``x`` is in the row space and its (unique) coefficient
    vector lies in ``[0, 1]^m``.  Uses float solve with exact verification
    on the boundary margin — entries are small ints in practice, and the
    verification step re-checks borderline coefficients with Fractions.
    """
    from .._util import exact_solve, int_rank

    m, n = q.shape
    if int_rank(q) < m:
        raise ValueError("S(Q) membership requires independent rows of Q")
    qf = q.astype(np.float64)
    # Solve coeff @ q = pts  => q.T @ coeff.T = pts.T
    coeff, *_ = np.linalg.lstsq(qf.T, pts.T.astype(np.float64), rcond=None)
    coeff = coeff.T  # (N, m)
    recon = coeff @ qf
    on_rowspace = np.all(np.abs(recon - pts) < 1e-7, axis=1)
    eps = 1e-9
    inside = np.all((coeff >= -eps) & (coeff <= 1 + eps), axis=1) & on_rowspace
    # Re-verify points within float slop of the boundary exactly.
    border = inside & (
        np.any((np.abs(coeff) < 1e-6) | (np.abs(coeff - 1) < 1e-6), axis=1)
    )
    maybe = on_rowspace & ~inside & np.all(
        (coeff > -1e-6) & (coeff < 1 + 1e-6), axis=1
    )
    for idx in np.nonzero(border | maybe)[0]:
        sol = exact_solve(q, pts[idx])
        ok = sol is not None and all(0 <= c <= 1 for c in sol)
        # exact_solve returns a particular solution; with independent rows
        # it is the unique one.
        inside[idx] = bool(ok) and np.array_equal(
            np.array([[float(c) for c in sol]]) @ qf,
            np.asarray([pts[idx]], dtype=np.float64),
        ) if sol is not None else False
        if sol is not None and ok:
            # exact reconstruction check in rationals
            recon_exact = [sum(sol[r] * int(q[r, c]) for r in range(m)) for c in range(n)]
            inside[idx] = all(recon_exact[c] == int(pts[idx, c]) for c in range(n))
    return inside


def parallelogram_boundary_points(q) -> int:
    """Lattice points on the *boundary* of the 2-D parallelogram ``S(Q)``.

    Equals ``2·(gcd(q1) + gcd(q2))`` for a nondegenerate parallelogram —
    the correction the paper folds into Example 6's
    ``L1·L2 + L1 + L2`` count.
    """
    q = as_int_matrix(q, name="Q")
    if q.shape != (2, 2):
        raise ValueError("boundary count implemented for 2x2 Q only")
    if int_det(q) == 0:
        raise ValueError("degenerate parallelogram has no interior/boundary split")
    return 2 * (vector_gcd(q[0]) + vector_gcd(q[1]))


def _union_axes(offsets: np.ndarray, extents: np.ndarray):
    """Coordinate compression: per-axis cell starts and widths."""
    starts = []
    widths = []
    for k in range(offsets.shape[1]):
        cuts = np.unique(
            np.concatenate([offsets[:, k], offsets[:, k] + extents[k] + 1])
        )
        starts.append(cuts[:-1])
        widths.append(np.diff(cuts))
    return starts, widths


def union_of_boxes_size(offsets, extents) -> int:
    """Exact number of integer points in ``∪_r [offset_r, offset_r + extents]``.

    All boxes share the same (inclusive) ``extents``; ``offsets`` is an
    ``(R, l)`` integer array.  Computed by coordinate compression: the
    union is decomposed into the grid cells induced by all box edges, a
    boolean coverage mask over the cell grid is built as the OR over boxes
    of per-axis interval-mask outer products, and the covered cells'
    exact volumes (Python-int arithmetic, overflow-free) are summed.
    With ``REPRO_SCALAR_KERNELS=1`` the original per-cell Python loop
    (:func:`union_of_boxes_size_scalar`) runs instead.

    This yields the *exact* cumulative footprint of a rectangular tile for
    a uniformly intersecting class once offsets are expressed in lattice
    coordinates ``u_r = a_r · G⁻¹`` (cf. Theorem 4, which approximates the
    same quantity from the spread vector alone).
    """
    if scalar_kernels_enabled():
        return union_of_boxes_size_scalar(offsets, extents)
    offsets = as_int_matrix(np.atleast_2d(offsets), name="offsets")
    extents = as_int_vector(extents, name="extents")
    r, l = offsets.shape
    if extents.shape[0] != l:
        raise ValueError("extents length must match offset dimension")
    if np.any(extents < 0):
        return 0
    if r == 1:
        return int(np.prod((extents + 1).astype(object)))
    starts, widths = _union_axes(offsets, extents)
    # Per-axis interval masks: cover[k][i, j] ⇔ box i covers cell j on axis k.
    cover = [
        (offsets[:, k, None] <= starts[k][None, :])
        & (starts[k][None, :] <= offsets[:, k, None] + extents[k])
        for k in range(l)
    ]
    covered = np.zeros(tuple(len(s) for s in starts), dtype=bool)
    for i in range(r):
        m = cover[0][i]
        for k in range(1, l):
            m = m[..., None] & cover[k][i]
        covered |= m
    # Exact cell volumes via Python-int outer products (no int64 overflow).
    vols = widths[0].astype(object)
    for k in range(1, l):
        vols = np.multiply.outer(vols, widths[k].astype(object))
    return int((covered * vols).sum())


def union_of_boxes_size_scalar(offsets, extents) -> int:
    """Scalar oracle for :func:`union_of_boxes_size` (per-cell loop)."""
    offsets = as_int_matrix(np.atleast_2d(offsets), name="offsets")
    extents = as_int_vector(extents, name="extents")
    r, l = offsets.shape
    if extents.shape[0] != l:
        raise ValueError("extents length must match offset dimension")
    if np.any(extents < 0):
        return 0
    if r == 1:
        return int(np.prod((extents + 1).astype(object)))
    starts, widths = _union_axes(offsets, extents)
    total = 0
    cell_ranges = [range(len(s)) for s in starts]
    for cell in itertools.product(*cell_ranges):
        point = np.array([starts[k][cell[k]] for k in range(l)], dtype=np.int64)
        covered = np.any(
            np.all((offsets <= point) & (point <= offsets + extents), axis=1)
        )
        if covered:
            vol = 1
            for k in range(l):
                vol *= int(widths[k][cell[k]])
            total += vol
    return total


def distinct_values_1d(coeffs, lo, hi) -> int:
    """Distinct values of ``Σ c_k · i_k`` over the integer box ``[lo, hi]``.

    This is the footprint size for a one-dimensional array reference
    (``d = 1``) — the case Section 3.8 flags as having no easy closed form
    for ``l = 3`` ("one can compute the exact size of the footprint
    efficiently using a table lookup when the elements of G are small").
    We compute it exactly:

    * ``l = 1``: closed form ``hi - lo + 1`` (scaled values are distinct).
    * ``l = 2`` and the box is *large* relative to the coefficients: closed
      form based on the classical structure of ``{a·i + b·j}``.
    * otherwise: vectorised enumeration (the "table lookup" regime).
    """
    c = as_int_vector(coeffs, name="coeffs")
    lo = as_int_vector(lo, name="lo")
    hi = as_int_vector(hi, name="hi")
    if np.any(hi < lo):
        return 0
    nz = c != 0
    c, lo, hi = c[nz], lo[nz], hi[nz]
    if c.size == 0:
        return 1
    if c.size == 1:
        return int(hi[0] - lo[0] + 1)
    if c.size == 2:
        a, b = abs(int(c[0])), abs(int(c[1]))
        n1 = int(hi[0] - lo[0])  # lambda_1
        n2 = int(hi[1] - lo[1])
        g = math.gcd(a, b)
        ap, bp = a // g, b // g
        # Values (up to sign/shift) are g*(ap*i + bp*j), 0<=i<=n1, 0<=j<=n2.
        # When the box is large enough (n1 >= bp-1 and n2 >= ap-1) the image
        # is the interval [0, ap*n1 + bp*n2] minus the classical Frobenius
        # non-representable sets at both ends, (ap-1)(bp-1)/2 values each
        # (Sylvester's count for coprime ap, bp):
        if n1 >= bp - 1 and n2 >= ap - 1:
            return ap * n1 + bp * n2 + 1 - (ap - 1) * (bp - 1)
        # Small box: enumerate (cheap by definition of "small").
        vals = (
            np.arange(n1 + 1, dtype=np.int64)[:, None] * ap
            + np.arange(n2 + 1, dtype=np.int64)[None, :] * bp
        )
        return int(np.unique(vals).size)
    # l >= 3: enumeration over the box.
    if box_volume(lo, hi) > 20_000_000:
        raise ValueError("box too large for exact 1-D footprint enumeration")
    vals = box_points_array(lo, hi) @ c
    return int(np.unique(vals).size)


class _CacheMetrics:
    """Registry-backed mirrors of one named cache's hit/miss/load counts.

    The cache instances keep plain-int fields (cheap, per-instance,
    exactly the pre-existing semantics tests rely on); a named cache
    additionally mirrors every event into the process metrics registry so
    run reports and ``repro.obs`` consumers can see it.
    """

    __slots__ = ("hits", "misses", "loads")

    def __init__(self, name: str):
        from ..obs.metrics import get_registry

        reg = get_registry()
        self.hits = reg.counter("analytic.cache.hits", cache=name)
        self.misses = reg.counter("analytic.cache.misses", cache=name)
        self.loads = reg.counter("analytic.cache.loads", cache=name)


class FootprintTable:
    """Section 3.8's "table lookup" for exact 1-D footprints.

    "For the case when l = 3 and d = 1, it seems difficult to express the
    size of the footprint by a closed form expression.  However, one can
    compute the exact size of the footprint efficiently using a table
    lookup when the elements of G are small, which is mostly the case in
    practice."

    The table memoises :func:`distinct_values_1d` under a canonical key
    that exploits the count's invariances: the footprint size of
    ``Σ c_k·i_k`` over a box depends only on the multiset of
    ``(|c_k|, extent_k)`` pairs with the gcd of the coefficients divided
    out (scaling by the gcd relabels values bijectively; sign flips and
    reorderings are coordinate changes of the box).

    ``metrics_name`` mirrors hit/miss/load counts into the process
    metrics registry (used by the shared default instance); entries can
    be persisted across runs via :mod:`repro.lattice.persist`.

    Mutations are lock-protected so concurrent threads (the ``repro
    serve`` process absorbs worker cache entries while handling
    requests) cannot corrupt the table or lose counter updates; a miss
    computes *outside* the lock, so at worst two threads redundantly
    compute the same (identical) value.
    """

    def __init__(self, *, metrics_name: str | None = None):
        self._table: dict = {}
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self._metrics = _CacheMetrics(metrics_name) if metrics_name else None
        self._lock = threading.Lock()

    @staticmethod
    def canonical_key(coeffs, extents) -> tuple:
        # (coeff, extent=0) axes contribute a single value, zero
        # coefficients none: drop both.
        pairs = [
            (abs(int(c)), int(e))
            for c, e in zip(coeffs, extents)
            if c != 0 and e > 0
        ]
        if not pairs:
            return ()
        g = 0
        for c, _ in pairs:
            g = math.gcd(g, c)
        # The gcd itself is NOT part of the key: scaling all coefficients
        # by g relabels the values bijectively, leaving the count fixed.
        return tuple(sorted((c // g, e) for c, e in pairs))

    def lookup(self, coeffs, extents) -> int:
        """Exact distinct-value count, memoised."""
        # Span at the method layer (hit and miss alike) so trace
        # structure does not depend on cache warmth.
        with _span("lattice.footprint_lookup", aggregate=True):
            key = self.canonical_key(coeffs, extents)
            with self._lock:
                cached = self._table.get(key)
                if cached is not None:
                    self.hits += 1
                    if self._metrics:
                        self._metrics.hits.inc()
                    return cached
                self.misses += 1
                if self._metrics:
                    self._metrics.misses.inc()
            if not key:
                value = 1
            else:
                cs = [c for c, _ in key]
                es = [e for _, e in key]
                value = distinct_values_1d(cs, [0] * len(cs), es)
            with self._lock:
                self._table[key] = value
            return value

    # -- persistence hooks (see repro.lattice.persist) -------------------
    def export_entries(self) -> list:
        """``(key, value)`` pairs in a stable order."""
        with self._lock:
            items = list(self._table.items())
        return sorted(items, key=repr)

    def absorb_entries(self, entries) -> int:
        """Merge persisted entries; returns how many keys were new."""
        added = 0
        with self._lock:
            for key, value in entries:
                if key not in self._table:
                    self._table[key] = value
                    added += 1
            if added:
                self.loads += added
        if added and self._metrics:
            self._metrics.loads.inc(added)
        return added

    def __len__(self) -> int:
        return len(self._table)


#: Shared default table used by :func:`repro.core.footprint.footprint_size`.
DEFAULT_FOOTPRINT_TABLE = FootprintTable(metrics_name="footprint_table")


class LatticeCountCache:
    """Memoised exact lattice counts for the optimiser's hot loop.

    :func:`count_distinct_images` and
    :func:`parallelepiped_lattice_points` are enumeration oracles — exact
    but expensive, and the rectangular-tile grid search evaluates them for
    the same ``(G, extents)`` over and over (many grids share tile sides,
    and distinct references often share a reduced ``G``).  This cache
    keys each count on a *canonical form* that quotients out the count's
    invariances, so geometrically equivalent queries hit:

    * zero rows and zero-extent rows contribute nothing to the image —
      dropped;
    * negating a row reflects (and integer-translates) the image without
      changing its size — rows are sign-normalised on their first nonzero
      entry;
    * reordering rows (with their extents) relabels loop dimensions —
      ``(row, extent)`` pairs are sorted.

    The gcd of a row is *not* divided out: unlike the 1-D
    :class:`FootprintTable`, scaling one row of a multi-column ``G``
    changes the image lattice geometry, so it is not an invariance here.

    On a miss the count is recomputed *from the canonical form itself*,
    so a key collision can only map to the correct value.

    ``metrics_name`` mirrors hit/miss/load counts into the process
    metrics registry (used by the shared default instance); entries can
    be persisted across runs via :mod:`repro.lattice.persist`.

    Mutations are lock-protected (same discipline as
    :class:`FootprintTable`): lookup/count under the lock, enumeration on
    a miss outside it — concurrent misses may redundantly compute the
    same deterministic value, never a wrong one.
    """

    def __init__(self, *, metrics_name: str | None = None):
        self._table: dict = {}
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self._metrics = _CacheMetrics(metrics_name) if metrics_name else None
        self._lock = threading.Lock()

    def _probe(self, key):
        """Cached value (counting a hit) or ``None`` (counting a miss)."""
        with self._lock:
            cached = self._table.get(key)
            if cached is not None:
                self.hits += 1
                if self._metrics:
                    self._metrics.hits.inc()
                return cached
            self.misses += 1
            if self._metrics:
                self._metrics.misses.inc()
            return None

    def _store(self, key, value):
        with self._lock:
            self._table[key] = value
        return value

    # -- canonicalisation ------------------------------------------------
    @staticmethod
    def _canonical_rows(g, extents=None) -> tuple:
        """Canonical ``(row, extent)`` pairs (or bare rows when no extents)."""
        g = as_int_matrix(np.atleast_2d(g), name="G")
        if extents is None:
            ext_list = [1] * g.shape[0]
        else:
            ext = as_int_vector(extents, name="extents")
            if ext.shape[0] != g.shape[0]:
                raise ValueError("extents length must match row count of G")
            if np.any(ext < 0):
                return ("empty",)
            ext_list = ext.tolist()
        pairs = []
        for row, e in zip(g.tolist(), ext_list):
            if e == 0 or not any(row):
                continue
            first = next(v for v in row if v)
            if first < 0:
                row = [-v for v in row]
            pairs.append((tuple(row), e))
        pairs.sort()
        return tuple(pairs)

    @classmethod
    def canonical_key(cls, g, extents) -> tuple:
        """Public canonical key for a box-image count (testing hook)."""
        return cls._canonical_rows(g, extents)

    # -- memoised oracles ------------------------------------------------
    def count_distinct_images(self, g, extents) -> int:
        """Memoised :func:`count_distinct_images` over ``[0, extents]``."""
        # Aggregated span: fires on hit *and* miss so the trace structure
        # (and its ``calls`` count) is independent of cache warmth — the
        # serve/CLI differential check compares span trees byte-for-byte.
        with _span("lattice.count_images", aggregate=True):
            key = ("img", self._canonical_rows(g, extents))
            cached = self._probe(key)
            if cached is not None:
                return cached
            pairs = key[1]
            if pairs == ("empty",):
                value = 0
            elif not pairs:
                value = 1
            else:
                rows = np.array([list(r) for r, _ in pairs], dtype=np.int64)
                ext = np.array([e for _, e in pairs], dtype=np.int64)
                value = count_distinct_images(rows, np.zeros_like(ext), ext)
            return self._store(key, value)

    def parallelepiped_lattice_points(self, q) -> int:
        """Memoised :func:`parallelepiped_lattice_points` of ``S(Q)``."""
        with _span("lattice.ppd_points", aggregate=True):
            key = ("ppd", self._canonical_rows(q))
            cached = self._probe(key)
            if cached is not None:
                return cached
            rows = key[1]
            if not rows:
                value = 1
            else:
                value = parallelepiped_lattice_points(
                    np.array([list(r) for r, _ in rows], dtype=np.int64)
                )
            return self._store(key, value)

    def get_or_compute(self, key, fn):
        """Generic memoisation under a caller-supplied hashable key.

        ``fn`` must be deterministic for the key and must not return
        ``None`` (absence marker).  Used by the optimiser for exact
        cumulative-footprint evaluations whose invariances (class ``G``,
        translated offsets, tile sides) the caller canonicalises itself.
        """
        with _span("lattice.memo", aggregate=True):
            cached = self._probe(key)
            if cached is not None:
                return cached
            return self._store(key, fn())

    # -- persistence hooks (see repro.lattice.persist) -------------------
    def export_entries(self) -> list:
        """``(key, value)`` pairs in a stable order."""
        with self._lock:
            items = list(self._table.items())
        return sorted(items, key=repr)

    def absorb_entries(self, entries) -> int:
        """Merge persisted entries; returns how many keys were new."""
        added = 0
        with self._lock:
            for key, value in entries:
                if key not in self._table:
                    self._table[key] = value
                    added += 1
            if added:
                self.loads += added
        if added and self._metrics:
            self._metrics.loads.inc(added)
        return added

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
            self.hits = 0
            self.misses = 0
            self.loads = 0


#: Process-wide cache shared by the footprint call sites
#: (:mod:`repro.core.footprint`); optimiser calls create private instances
#: by default so their enumeration counts are reproducible per call.
DEFAULT_LATTICE_CACHE = LatticeCountCache(metrics_name="lattice")


def analytic_cache_stats() -> dict:
    """Hit/miss/load/entry counts of the process-default analytic caches.

    The dict is JSON-ready and lands in run reports (``caches`` section)
    and check reports, making the previously invisible bare-int counters
    observable.
    """

    def one(cache) -> dict:
        return {
            "entries": len(cache),
            "hits": int(cache.hits),
            "misses": int(cache.misses),
            "loads": int(cache.loads),
        }

    from ..core.plan import DEFAULT_PLAN_CACHE

    return {
        "footprint_table": one(DEFAULT_FOOTPRINT_TABLE),
        "lattice_cache": one(DEFAULT_LATTICE_CACHE),
        "plan": DEFAULT_PLAN_CACHE.stats(),
    }
