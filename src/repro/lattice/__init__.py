"""Integer-lattice toolkit (substrate S1).

The paper's exact footprint machinery (Section 3.7, Theorems 3-5, Lemma 3)
rests on computations over integer lattices:

* :mod:`repro.lattice.hnf` — Hermite normal form with unimodular transform,
  used for lattice membership and the onto test of Lemma 2.
* :mod:`repro.lattice.snf` — Smith normal form, used to count lattice index
  (``[Z^d : L]``) and solve integer linear systems.
* :mod:`repro.lattice.unimodular` — unimodularity tests, gcd of maximal
  minors, maximal-independent-column selection (Section 3.4.1).
* :mod:`repro.lattice.lattice` — :class:`Lattice` and
  :class:`BoundedLattice` with the Theorem 3 intersection test and the
  Lemma 3 union size.
* :mod:`repro.lattice.points` — exact integer-point counting: images of
  boxes under affine maps (the footprint oracle), parallelepiped lattice
  point counts via Pick's theorem in 2-D, boundary point counts.
"""

from .hnf import hermite_normal_form, row_style_hnf
from .snf import smith_normal_form, solve_integer
from .unimodular import (
    is_unimodular,
    is_onto,
    is_one_to_one,
    maximal_independent_columns,
    select_unimodular_columns,
)
from .lattice import Lattice, BoundedLattice
from .points import (
    DEFAULT_FOOTPRINT_TABLE,
    DEFAULT_LATTICE_CACHE,
    FootprintTable,
    LatticeCountCache,
    analytic_cache_stats,
    count_distinct_images,
    parallelepiped_lattice_points,
    parallelepiped_lattice_points_scalar,
    parallelogram_boundary_points,
    distinct_values_1d,
    scalar_kernels_enabled,
    union_of_boxes_size,
    union_of_boxes_size_scalar,
)
from .persist import default_cache_dir, load_caches, save_caches

__all__ = [
    "hermite_normal_form",
    "row_style_hnf",
    "smith_normal_form",
    "solve_integer",
    "is_unimodular",
    "is_onto",
    "is_one_to_one",
    "maximal_independent_columns",
    "select_unimodular_columns",
    "Lattice",
    "BoundedLattice",
    "count_distinct_images",
    "parallelepiped_lattice_points",
    "parallelepiped_lattice_points_scalar",
    "parallelogram_boundary_points",
    "union_of_boxes_size",
    "union_of_boxes_size_scalar",
    "distinct_values_1d",
    "scalar_kernels_enabled",
    "analytic_cache_stats",
    "FootprintTable",
    "DEFAULT_FOOTPRINT_TABLE",
    "LatticeCountCache",
    "DEFAULT_LATTICE_CACHE",
    "default_cache_dir",
    "load_caches",
    "save_caches",
]
