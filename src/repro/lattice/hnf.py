"""Hermite normal form of integer matrices.

We use the *row-style* HNF throughout, matching the paper's row-vector
convention: for an integer matrix ``A`` (rows generate a lattice), the HNF
is ``H = U·A`` with ``U`` unimodular, ``H`` in row-echelon form with
positive pivots and entries below each pivot zero, entries above each pivot
reduced into ``[0, pivot)``.

The row lattice of ``A`` equals the row lattice of ``H``, which makes HNF
the workhorse for lattice membership (Definition 9 / Theorem 3) and for the
"onto" test of Lemma 2 via the Hermite normal form theorem the paper cites
(Schrijver, *Theory of Linear and Integer Programming*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_int_matrix

__all__ = ["HNFResult", "hermite_normal_form", "row_style_hnf"]


@dataclass(frozen=True)
class HNFResult:
    """Result of a Hermite normal form computation.

    Attributes
    ----------
    h:
        The HNF matrix, same shape as the input, ``h = u @ a``.
    u:
        The unimodular row-transform matrix (``|det u| = 1``).
    pivots:
        ``(row, col)`` positions of the echelon pivots; ``len(pivots)`` is
        the rank of the input.
    """

    h: np.ndarray
    u: np.ndarray
    pivots: tuple[tuple[int, int], ...]

    @property
    def rank(self) -> int:
        return len(self.pivots)


def hermite_normal_form(a) -> HNFResult:
    """Row-style Hermite normal form ``H = U·A`` of an integer matrix.

    Works for any (possibly rank-deficient, possibly non-square) integer
    matrix.  Entries are Python ints internally, so no overflow.

    Examples
    --------
    >>> res = hermite_normal_form([[2, 4], [1, 3]])
    >>> res.h.tolist()
    [[1, 1], [0, 2]]
    """
    a = as_int_matrix(a, name="HNF argument")
    m, n = a.shape
    # python-int working copies
    h = [[int(x) for x in row] for row in a]
    u = [[int(i == j) for j in range(m)] for i in range(m)]

    def swap_rows(i: int, j: int) -> None:
        h[i], h[j] = h[j], h[i]
        u[i], u[j] = u[j], u[i]

    def add_multiple(dst: int, src: int, k: int) -> None:
        if k == 0:
            return
        h[dst] = [x + k * y for x, y in zip(h[dst], h[src])]
        u[dst] = [x + k * y for x, y in zip(u[dst], u[src])]

    def negate(i: int) -> None:
        h[i] = [-x for x in h[i]]
        u[i] = [-x for x in u[i]]

    pivots: list[tuple[int, int]] = []
    row = 0
    for col in range(n):
        if row >= m:
            break
        # Euclidean elimination below position (row, col): repeatedly reduce
        # by the smallest nonzero entry until a single nonzero remains.
        while True:
            nz = [r for r in range(row, m) if h[r][col] != 0]
            if not nz:
                break
            r_min = min(nz, key=lambda r: abs(h[r][col]))
            if r_min != row:
                swap_rows(row, r_min)
            done = True
            for r in range(row + 1, m):
                if h[r][col] != 0:
                    q = h[r][col] // h[row][col]
                    add_multiple(r, row, -q)
                    if h[r][col] != 0:
                        done = False
            if done:
                break
        if h[row][col] != 0:
            if h[row][col] < 0:
                negate(row)
            # Reduce entries above the pivot into [0, pivot).
            p = h[row][col]
            for r in range(row):
                q = h[r][col] // p
                add_multiple(r, row, -q)
            pivots.append((row, col))
            row += 1

    return HNFResult(
        h=np.array(h, dtype=np.int64),
        u=np.array(u, dtype=np.int64),
        pivots=tuple(pivots),
    )


def row_style_hnf(a) -> np.ndarray:
    """Convenience wrapper returning only the HNF matrix ``H``."""
    return hermite_normal_form(a).h
