"""On-disk persistence for the analytic caches (warm start).

:class:`~repro.lattice.points.LatticeCountCache` and
:class:`~repro.lattice.points.FootprintTable` memoise exact enumeration
counts under canonical keys — values that never change for a given key.
That makes them safe to persist: repeated CLI runs and fuzz shards over
the same programs keep recomputing identical counts from scratch, so the
CLI (``--cache-dir``) and ``repro check`` load a versioned JSON snapshot
at startup and merge the session's new entries back at exit.

File format (``analytic_cache.json`` in the cache directory)::

    {"schema": "repro.analytic-cache", "version": 2,
     "caches": {"footprint_table": [[key, value], ...],
                "lattice_cache":   [[key, value], ...],
                "plan_cache":      [[key, payload], ...]}}

Keys are nested tuples of ints / strings / bytes; they are encoded
recursively with tagged objects (``{"t": [...]}`` for tuples,
``{"b": "<hex>"}`` for bytes) so the JSON roundtrip is lossless.  A file
with an unknown schema or version is ignored, never migrated: the cache
is a pure accelerator and stale data must not poison results.

Version 2 adds the ``plan_cache`` section (structure-keyed partition
plans, whose values are JSON objects rather than numbers) and the
forward-compatibility rule that makes such additions safe from now on:
readers *skip* cache sections they do not recognise instead of erroring,
and the merge-write preserves unrecognised sections verbatim so a newer
writer's entries survive an older writer's save.  Version-1 files are
still read (their sections are a subset of ours).
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from pathlib import Path

from .points import DEFAULT_FOOTPRINT_TABLE, DEFAULT_LATTICE_CACHE

__all__ = [
    "CACHE_SCHEMA",
    "CACHE_VERSION",
    "ACCEPTED_VERSIONS",
    "CACHE_FILENAME",
    "default_cache_dir",
    "encode_key",
    "decode_key",
    "load_caches",
    "save_caches",
    "exchange_caches",
]

logger = logging.getLogger("repro.lattice.persist")

CACHE_SCHEMA = "repro.analytic-cache"
CACHE_VERSION = 2
#: Versions this reader accepts.  v1 files lack the plan section but are
#: otherwise identical; anything newer is ignored wholesale (stale data
#: must not poison results).
ACCEPTED_VERSIONS = (1, 2)
CACHE_FILENAME = "analytic_cache.json"
LOCK_FILENAME = CACHE_FILENAME + ".lock"

#: How long :func:`save_caches` waits for a concurrent writer before
#: giving up, and the age past which an orphaned lockfile (a writer that
#: died between creating and removing it) is broken.
LOCK_TIMEOUT_S = 10.0
LOCK_STALE_S = 30.0


class _CacheLock:
    """O_EXCL lockfile serialising the read-merge-write in save_caches.

    ``os.replace`` makes each write atomic, but two concurrent writers
    both read the same on-disk snapshot, merge their own entries, and
    the last replace drops the first writer's keys.  Creating
    ``analytic_cache.json.lock`` with O_CREAT|O_EXCL is itself atomic on
    every platform and filesystem we care about, so holding it makes the
    whole read-merge-write critical.  Locks older than LOCK_STALE_S are
    broken (the holder died); waiting longer than the timeout raises.
    """

    def __init__(self, directory: Path, *, timeout_s: float | None = None):
        self.path = directory / LOCK_FILENAME
        # Resolved at construction so tests can shrink the module default.
        self.timeout_s = LOCK_TIMEOUT_S if timeout_s is None else timeout_s
        self._held = False

    def __enter__(self):
        deadline = time.monotonic() + self.timeout_s
        delay = 0.01
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"analytic-cache lock {self.path} held by another "
                        f"writer for over {self.timeout_s:.0f}s"
                    ) from None
                time.sleep(delay)
                delay = min(delay * 2, 0.2)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(str(os.getpid()))
            self._held = True
            return self

    def __exit__(self, *exc):
        if self._held:
            self._held = False
            try:
                os.unlink(self.path)
            except OSError:
                pass
        return False

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # holder released it between our open and stat
        if age > LOCK_STALE_S:
            logger.warning(
                "breaking stale analytic-cache lock %s (age %.0fs)", self.path, age
            )
            try:
                os.unlink(self.path)
            except OSError:
                pass


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def encode_key(obj):
    """Lossless JSON encoding of a cache key (int/str/bytes/nested tuple)."""
    if isinstance(obj, bool):  # bool is an int subclass; keys never use it
        raise TypeError(f"unsupported cache key component: {obj!r}")
    if isinstance(obj, int):
        return obj
    if isinstance(obj, str):
        return obj
    if isinstance(obj, bytes):
        return {"b": obj.hex()}
    if isinstance(obj, tuple):
        return {"t": [encode_key(x) for x in obj]}
    raise TypeError(f"unsupported cache key component: {type(obj).__name__}")


def decode_key(obj):
    """Inverse of :func:`encode_key`."""
    if isinstance(obj, int):
        return obj
    if isinstance(obj, str):
        return obj
    if isinstance(obj, dict):
        if set(obj) == {"b"}:
            return bytes.fromhex(obj["b"])
        if set(obj) == {"t"}:
            return tuple(decode_key(x) for x in obj["t"])
    raise ValueError(f"malformed cache key component: {obj!r}")


def _cache_map(footprint_table, lattice_cache, plan_cache) -> dict:
    from ..core.plan import DEFAULT_PLAN_CACHE

    return {
        "footprint_table": footprint_table
        if footprint_table is not None
        else DEFAULT_FOOTPRINT_TABLE,
        "lattice_cache": lattice_cache if lattice_cache is not None else DEFAULT_LATTICE_CACHE,
        "plan_cache": plan_cache if plan_cache is not None else DEFAULT_PLAN_CACHE,
    }


def _value_ok(name: str, value) -> bool:
    """Per-section value shape: numbers for the count caches, JSON
    objects for plan payloads, anything for sections we do not know
    (they are preserved, not interpreted)."""
    if name == "plan_cache":
        return isinstance(value, dict)
    if name in ("footprint_table", "lattice_cache"):
        return not isinstance(value, bool) and isinstance(value, (int, float))
    return True


def _read_entries(path: Path) -> dict[str, list] | None:
    """Decoded ``{cache_name: [(key, value), ...]}`` from ``path``, or None.

    Sections with malformed entries are skipped individually (and
    therefore dropped from the next merge-write); unknown section
    *names* are kept so newer writers' entries survive our saves.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        logger.warning("ignoring unreadable analytic cache %s: %s", path, exc)
        return None
    if (
        not isinstance(data, dict)
        or data.get("schema") != CACHE_SCHEMA
        or data.get("version") not in ACCEPTED_VERSIONS
        or not isinstance(data.get("caches"), dict)
    ):
        logger.warning("ignoring analytic cache %s with unknown schema/version", path)
        return None
    out: dict[str, list] = {}
    for name, pairs in data["caches"].items():
        decoded = []
        try:
            for key, value in pairs:
                if not _value_ok(name, value):
                    raise TypeError(f"bad cache value for {name!r}: {value!r}")
                decoded.append((decode_key(key), value))
        except (TypeError, ValueError) as exc:
            logger.warning("ignoring malformed entries for cache %r in %s: %s", name, path, exc)
            continue
        out[name] = decoded
    return out


def load_caches(
    cache_dir=None, *, footprint_table=None, lattice_cache=None, plan_cache=None
) -> int:
    """Warm-start the analytic caches from ``cache_dir``.

    Returns the number of entries absorbed (also visible as the caches'
    ``loads`` counters).  Missing or invalid files load nothing.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    entries = _read_entries(directory / CACHE_FILENAME)
    if not entries:
        return 0
    caches = _cache_map(footprint_table, lattice_cache, plan_cache)
    loaded = 0
    for name, cache in caches.items():
        loaded += cache.absorb_entries(entries.get(name, []))
    return loaded


def save_caches(
    cache_dir=None, *, footprint_table=None, lattice_cache=None, plan_cache=None
) -> int:
    """Persist the analytic caches into ``cache_dir`` (merge semantics).

    Entries already on disk are kept (union with the in-memory tables),
    so concurrent runs only ever add keys.  The whole read-merge-write
    runs under an on-disk lockfile (:class:`_CacheLock`) so concurrent
    writers serialise instead of overwriting each other's new keys, and
    the write itself is atomic (temp file + ``os.replace``).  Returns
    the total number of entries written.
    """
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / CACHE_FILENAME
    with _CacheLock(directory):
        on_disk = _read_entries(path) or {}
        caches = _cache_map(footprint_table, lattice_cache, plan_cache)
        payload: dict[str, list] = {}
        written = 0
        for name, cache in caches.items():
            merged = {}
            for key, value in on_disk.get(name, []):
                merged[key] = value
            for key, value in cache.export_entries():
                merged[key] = value
            payload[name] = sorted(
                ([encode_key(k), v] for k, v in merged.items()), key=repr
            )
            written += len(merged)
        # Forward compatibility: sections written by a newer version are
        # carried through the merge untouched instead of being dropped.
        for name, pairs in on_disk.items():
            if name in payload:
                continue
            payload[name] = sorted(
                ([encode_key(k), v] for k, v in pairs), key=repr
            )
            written += len(pairs)
        doc = {"schema": CACHE_SCHEMA, "version": CACHE_VERSION, "caches": payload}
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".analytic_cache.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    return written


def exchange_caches(
    cache_dir=None, *, footprint_table=None, lattice_cache=None, plan_cache=None
) -> tuple[int, int]:
    """One cross-process cache-exchange cycle over ``cache_dir``.

    Snapshot this process's entries into the shared file (union-merge
    under the lockfile), then absorb whatever peers have published since
    the last cycle.  This is the access pattern the multi-replica serve
    tier runs periodically: every replica both contributes its fresh
    plan/lattice entries and warms from the others', so a cold or newly
    re-admitted replica converges on the cluster's union instead of
    recomputing from scratch.  Returns ``(written, absorbed)`` —
    entries written to disk and entries newly absorbed into memory.
    """
    written = save_caches(
        cache_dir,
        footprint_table=footprint_table,
        lattice_cache=lattice_cache,
        plan_cache=plan_cache,
    )
    absorbed = load_caches(
        cache_dir,
        footprint_table=footprint_table,
        lattice_cache=lattice_cache,
        plan_cache=plan_cache,
    )
    return written, absorbed
