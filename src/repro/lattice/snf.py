"""Smith normal form and integer linear system solving.

The Smith normal form ``D = U·A·V`` (``U``, ``V`` unimodular, ``D``
diagonal with ``d_1 | d_2 | ...``) gives:

* the lattice index ``[Z^n : rowlattice(A)] = Π d_i`` when ``A`` has full
  column rank — the density of a reference's image lattice;
* an exact solver for ``x·A = b`` over the *integers*, which is precisely
  the intersection test of Definition 4 ("two references intersect if
  there are two integer vectors i1, i2 with g1(i1) = g2(i2)").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import as_int_matrix, as_int_vector

__all__ = [
    "SNFResult",
    "smith_normal_form",
    "solve_integer",
    "lattice_index",
    "integer_kernel_basis",
]


@dataclass(frozen=True)
class SNFResult:
    """Smith normal form ``d = u @ a @ v`` with unimodular ``u``, ``v``.

    ``d`` is (rectangular-)diagonal with nonnegative invariant factors
    ``d[0,0] | d[1,1] | ...``; trailing factors may be zero when the input
    is rank-deficient.
    """

    d: np.ndarray
    u: np.ndarray
    v: np.ndarray

    @property
    def invariant_factors(self) -> tuple[int, ...]:
        k = min(self.d.shape)
        return tuple(int(self.d[i, i]) for i in range(k))

    @property
    def rank(self) -> int:
        return sum(1 for f in self.invariant_factors if f != 0)


def smith_normal_form(a) -> SNFResult:
    """Compute the Smith normal form of an integer matrix.

    Classic algorithm: repeatedly move the minimum-magnitude nonzero entry
    to the pivot position, eliminate its row and column by Euclidean steps,
    and fix divisibility violations by row-addition.  Exact (python ints).

    Examples
    --------
    >>> smith_normal_form([[2, 0], [0, 3]]).invariant_factors
    (1, 6)
    """
    a = as_int_matrix(a, name="SNF argument")
    m, n = a.shape
    d = [[int(x) for x in row] for row in a]
    u = [[int(i == j) for j in range(m)] for i in range(m)]
    v = [[int(i == j) for j in range(n)] for i in range(n)]

    def row_op(i: int, j: int, k: int) -> None:  # row_i += k * row_j
        d[i] = [x + k * y for x, y in zip(d[i], d[j])]
        u[i] = [x + k * y for x, y in zip(u[i], u[j])]

    def col_op(i: int, j: int, k: int) -> None:  # col_i += k * col_j
        for r in range(m):
            d[r][i] += k * d[r][j]
        for r in range(n):
            v[r][i] += k * v[r][j]

    def swap_rows(i: int, j: int) -> None:
        d[i], d[j] = d[j], d[i]
        u[i], u[j] = u[j], u[i]

    def swap_cols(i: int, j: int) -> None:
        for r in range(m):
            d[r][i], d[r][j] = d[r][j], d[r][i]
        for r in range(n):
            v[r][i], v[r][j] = v[r][j], v[r][i]

    def negate_row(i: int) -> None:
        d[i] = [-x for x in d[i]]
        u[i] = [-x for x in u[i]]

    k = 0
    size = min(m, n)
    while k < size:
        # Find minimal-magnitude nonzero entry in the trailing submatrix.
        best = None
        for i in range(k, m):
            for j in range(k, n):
                if d[i][j] != 0 and (best is None or abs(d[i][j]) < abs(d[best[0]][best[1]])):
                    best = (i, j)
        if best is None:
            break
        bi, bj = best
        if bi != k:
            swap_rows(k, bi)
        if bj != k:
            swap_cols(k, bj)
        # Eliminate column k below and row k to the right of the pivot.
        dirty = False
        for i in range(k + 1, m):
            if d[i][k] != 0:
                q = d[i][k] // d[k][k]
                row_op(i, k, -q)
                if d[i][k] != 0:
                    dirty = True
        for j in range(k + 1, n):
            if d[k][j] != 0:
                q = d[k][j] // d[k][k]
                col_op(j, k, -q)
                if d[k][j] != 0:
                    dirty = True
        if dirty:
            continue  # pivot shrank; redo with new minimum
        if d[k][k] < 0:
            negate_row(k)
        # Enforce divisibility d[k][k] | d[i][j] for the trailing block.
        violation = None
        for i in range(k + 1, m):
            for j in range(k + 1, n):
                if d[i][j] % d[k][k] != 0:
                    violation = i
                    break
            if violation is not None:
                break
        if violation is not None:
            row_op(k, violation, 1)
            continue
        k += 1

    return SNFResult(
        d=np.array(d, dtype=np.int64),
        u=np.array(u, dtype=np.int64),
        v=np.array(v, dtype=np.int64),
    )


def solve_integer(a, b) -> np.ndarray | None:
    """Find one integer solution ``x`` of ``x·A = b``, or ``None``.

    ``A`` is ``(m, n)``, ``b`` length ``n``, the returned ``x`` length
    ``m``.  Uses the Smith decomposition: with ``D = U·A·V``, ``x·A = b``
    iff ``y·D = b·V`` for ``y = x·U⁻¹``, which decouples per coordinate.
    """
    a = as_int_matrix(a, name="a")
    b = as_int_vector(b, name="b")
    m, n = a.shape
    if b.shape[0] != n:
        raise ValueError(f"shape mismatch: a is {a.shape}, b has length {b.shape[0]}")
    snf = smith_normal_form(a)
    c = [int(x) for x in (b.astype(object) @ snf.v.astype(object))]
    y = [0] * m
    k = min(m, n)
    for i in range(n):
        di = int(snf.d[i, i]) if i < k else 0
        if di == 0:
            if c[i] != 0:
                return None
        else:
            if c[i] % di != 0:
                return None
            if i < m:
                y[i] = c[i] // di
    x = np.array(y, dtype=object) @ snf.u.astype(object)
    return np.array([int(t) for t in x], dtype=np.int64)


def lattice_index(a) -> int:
    """Index ``[Z^n : rowlattice(A)]`` for full-column-rank ``A``.

    This is the product of the invariant factors; it equals ``|det A|`` for
    square ``A``.  Returns 0 when the rows do not span rank ``n`` (the
    sublattice then has infinite index).
    """
    a = as_int_matrix(a, name="lattice_index argument")
    snf = smith_normal_form(a)
    n = a.shape[1]
    factors = snf.invariant_factors
    if snf.rank < n:
        return 0
    prod = 1
    for f in factors[:n]:
        prod *= int(f)
    return prod


def integer_kernel_basis(a) -> np.ndarray:
    """Basis of the left integer kernel ``{x ∈ Z^m : x·A = 0}``.

    With ``D = U·A·V``, ``x·A = 0`` iff ``y·D = 0`` for ``y = x·U⁻¹``,
    which forces ``y_i = 0`` exactly where the invariant factor ``d_i`` is
    nonzero; the remaining unit vectors pull back to rows of ``U``.

    Returns a ``(k, m)`` int64 array (``k = m − rank``); the rows generate
    the kernel lattice (and are a basis, since ``U`` is unimodular).

    In loop-partitioning terms: kernel vectors are iteration-space
    directions along which a reference re-touches the *same* array element
    — the self-reuse directions a communication-free partition must not
    cut (cf. Section 3.6's coherence discussion and the R&S comparison).
    """
    a = as_int_matrix(a, name="kernel argument")
    m, n = a.shape
    snf = smith_normal_form(a)
    k = min(m, n)
    rows = [i for i in range(m) if i >= k or snf.d[i, i] == 0]
    if not rows:
        return np.empty((0, m), dtype=np.int64)
    return snf.u[rows, :].copy()
