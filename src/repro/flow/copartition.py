"""Per-statement tile selection for dataflow programs.

Two strategies:

* ``independent`` — each statement is handed to the ordinary
  :class:`~repro.core.partitioner.LoopPartitioner` on its own (plan
  cache and all).  Optimal per nest, but nothing aligns the tiles of a
  producer with those of its consumer, so inter-statement transfers can
  dominate.
* ``co`` — statements of equal depth are forced onto one shared
  processor grid, chosen to minimize *total* traffic: per-statement
  cumulative footprints (Theorem 2/4, evaluated exactly) **plus** an
  inter-statement transfer term per flow edge.  With producer and
  consumer tiled by the same grid, the data a consumer tile must fetch
  remotely is its read footprint minus what its aligned producer tile
  wrote locally — the cross-statement uniformly-intersecting class makes
  that ``F(writes ∪ reads) − F(writes)`` per tile, the same dilation
  algebra as Section 3's boundary terms (and the alignment idea of
  ``core.datapart``: computation and data distributions chosen
  together).

The transfer term is separable per consumer statement (it depends only
on the consumer's tile), so depth groups are optimized independently —
no combinatorial blow-up across groups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classify import UISet, partition_references
from ..core.cost import estimate_traffic
from ..core.cumulative import cumulative_footprint_size_exact
from ..core.loopnest import LoopNest
from ..core.optimize import (
    communication_free_partition,
    factorizations,
    sharing_directions,
)
from ..core.partitioner import LoopPartitioner, PartitionResult
from ..core.tiles import RectangularTile
from ..exceptions import PartitionError
from ..obs.tracing import span
from .graph import DataflowGraph, FlowStatement

__all__ = [
    "StatementPartition",
    "FlowPartition",
    "partition_flow",
    "transfer_proxy",
    "STRATEGIES",
]

STRATEGIES = ("co", "independent")


@dataclass(frozen=True)
class StatementPartition:
    """One statement's chosen partition."""

    statement: FlowStatement
    result: PartitionResult

    @property
    def name(self) -> str:
        return self.statement.name

    @property
    def tile(self) -> RectangularTile:
        return self.result.tile

    def num_tiles(self) -> int:
        ext = self.statement.nest.space.extents
        if getattr(self.result.tile, "sides", None) is not None:
            sides = self.result.tile.sides
            prod = 1
            for e, s in zip(ext, sides):
                prod *= -(-int(e) // int(s))
            return prod
        from ..core.tiles import Tiling

        return Tiling(self.statement.nest.space, self.result.tile).num_tiles()


@dataclass(frozen=True)
class FlowPartition:
    """The full program's partition plus the scoring that produced it.

    ``predicted_compute`` sums every statement's exact cumulative
    footprint over all of its tiles; ``predicted_transfers`` sums the
    per-flow-edge transfer proxy (element granularity, aligned-tile
    assumption — the *exact* line-level numbers come from the
    communication schedule).
    """

    strategy: str
    statements: tuple[StatementPartition, ...]
    predicted_compute: float
    predicted_transfers: float
    candidates_scored: int

    def by_name(self) -> dict[str, StatementPartition]:
        return {sp.name: sp for sp in self.statements}


def _mixed_classes(
    producer: FlowStatement, consumer: FlowStatement, array: str
) -> list[tuple[UISet, UISet]]:
    """(combined class, write-members-only class) pairs for one edge."""
    writes = [
        a
        for a in producer.nest.accesses
        if a.ref.array == array and a.kind.is_write_like
    ]
    reads = [
        a
        for a in consumer.nest.accesses
        if a.ref.array == array and not a.kind.is_write_like
    ]
    out = []
    for cls in partition_references(writes + reads):
        w = tuple(a for a in cls.accesses if a.kind.is_write_like)
        r = tuple(a for a in cls.accesses if not a.kind.is_write_like)
        if w and r:
            out.append((cls, UISet(w)))
    return out


def transfer_proxy(
    graph: DataflowGraph, consumer: FlowStatement, tile: RectangularTile
) -> float:
    """Per-consumer-tile transfer estimate for all flow edges into
    ``consumer``, assuming the producer is tiled on the same grid:
    ``F(writes ∪ reads) − F(writes)`` per cross-statement class."""
    total = 0.0
    for edge in graph.flow_edges:
        if edge.consumer != consumer.order:
            continue
        producer = graph.statements[edge.producer]
        for combined, writes_only in _mixed_classes(producer, consumer, edge.array):
            f_combined = float(cumulative_footprint_size_exact(combined, tile))
            f_writes = float(cumulative_footprint_size_exact(writes_only, tile))
            total += max(f_combined - f_writes, 0.0)
    return total


def _grid_tile(nest: LoopNest, grid: tuple[int, ...]) -> RectangularTile:
    ext = nest.space.extents
    return RectangularTile([-(-int(e) // int(g)) for e, g in zip(ext, grid)])


def _num_tiles(nest: LoopNest, tile: RectangularTile) -> int:
    prod = 1
    for e, s in zip(nest.space.extents, tile.sides):
        prod *= -(-int(e) // int(s))
    return prod


def _forced_partition(nest: LoopNest, grid: tuple[int, ...]) -> PartitionResult:
    """A :class:`PartitionResult` for an externally chosen grid."""
    tile = _grid_tile(nest, grid)
    uisets = tuple(partition_references(nest.accesses))
    return PartitionResult(
        tile=tile,
        grid=tuple(int(g) for g in grid),
        uisets=uisets,
        comm_free_basis=communication_free_partition(list(uisets), nest.depth),
        sharing=sharing_directions(list(uisets)),
        estimate=estimate_traffic(list(uisets), tile, method="exact"),
        method="rectangular",
    )


def _independent(
    graph: DataflowGraph,
    processors: int,
    *,
    method: str,
    workers: int,
    cache,
    plan_cache,
    opt_budget_s,
) -> list[StatementPartition]:
    parts = []
    for stmt in graph.statements:
        result = LoopPartitioner(stmt.nest, processors).partition(
            method=method,
            workers=workers,
            cache=cache,
            plan_cache=plan_cache,
            opt_budget_s=opt_budget_s,
        )
        parts.append(StatementPartition(statement=stmt, result=result))
    return parts


def _predicted_totals(
    graph: DataflowGraph, parts: list[StatementPartition]
) -> tuple[float, float]:
    compute = 0.0
    transfers = 0.0
    for sp in parts:
        n = sp.num_tiles()
        compute += float(sp.result.estimate.cold_misses) * n
        if isinstance(sp.result.tile, RectangularTile):
            transfers += transfer_proxy(graph, sp.statement, sp.result.tile) * n
    return compute, transfers


def partition_flow(
    graph: DataflowGraph,
    processors: int,
    *,
    strategy: str = "co",
    method: str = "rectangular",
    workers: int = 1,
    cache=None,
    plan_cache=None,
    opt_budget_s: float | None = None,
) -> FlowPartition:
    """Choose per-statement tiles for a dataflow program.

    ``strategy='co'`` scores candidate shared grids per depth group —
    every feasible factorization of ``processors`` plus each member
    statement's independent optimum — on total footprint + transfer
    traffic, and keeps the cheapest (ties broken toward the
    lexicographically smallest grid).  The independent per-statement
    optimization still runs first (warming the structure-keyed plan
    cache per statement), so `co` degrades gracefully to it when no
    aligned grid scores better.
    """
    if strategy not in STRATEGIES:
        raise PartitionError(
            f"unknown flow strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    with span("flow.partition", strategy=strategy, statements=len(graph.statements)):
        independent = _independent(
            graph,
            processors,
            method=method,
            workers=workers,
            cache=cache,
            plan_cache=plan_cache,
            opt_budget_s=opt_budget_s,
        )
        if strategy == "independent":
            compute, transfers = _predicted_totals(graph, independent)
            return FlowPartition(
                strategy=strategy,
                statements=tuple(independent),
                predicted_compute=compute,
                predicted_transfers=transfers,
                candidates_scored=0,
            )

        # -- co-partitioning: one shared grid per depth group ------------
        by_depth: dict[int, list[int]] = {}
        for k, stmt in enumerate(graph.statements):
            by_depth.setdefault(stmt.nest.depth, []).append(k)

        chosen: dict[int, PartitionResult] = {}
        scored = 0
        for depth, members in sorted(by_depth.items()):
            candidates: set[tuple[int, ...]] = set()
            for grid in factorizations(processors, depth):
                g = tuple(int(x) for x in grid)
                if all(
                    all(
                        gk <= int(ext)
                        for gk, ext in zip(
                            g, graph.statements[m].nest.space.extents
                        )
                    )
                    for m in members
                ):
                    candidates.add(g)
            for m in members:
                g = independent[m].result.grid
                if g is not None:
                    candidates.add(tuple(int(x) for x in g))
            if not candidates:
                # Degenerate spaces (P larger than every extent product
                # split): fall back to each member's own optimum.
                for m in members:
                    chosen[m] = independent[m].result
                continue

            best: tuple[float, tuple[int, ...]] | None = None
            for g in sorted(candidates):
                score = 0.0
                for m in members:
                    stmt = graph.statements[m]
                    tile = _grid_tile(stmt.nest, g)
                    n = _num_tiles(stmt.nest, tile)
                    est = estimate_traffic(
                        list(partition_references(stmt.nest.accesses)),
                        tile,
                        method="exact",
                    )
                    score += float(est.cold_misses) * n
                    score += transfer_proxy(graph, stmt, tile) * n
                scored += 1
                if best is None or (score, g) < best:
                    best = (score, g)
            _, best_grid = best
            for m in members:
                chosen[m] = _forced_partition(graph.statements[m].nest, best_grid)

        parts = [
            StatementPartition(statement=graph.statements[k], result=chosen[k])
            for k in range(len(graph.statements))
        ]
        compute, transfers = _predicted_totals(graph, parts)
        return FlowPartition(
            strategy=strategy,
            statements=tuple(parts),
            predicted_compute=compute,
            predicted_transfers=transfers,
            candidates_scored=scored,
        )
