"""Statement-level dataflow graph with affine dependence edges.

A :class:`FlowStatement` is one assignment together with its enclosing
loops, legalized into the paper's form: a perfect per-statement
:class:`~repro.core.loopnest.LoopNest` whose accesses are the
statement's LHS write followed by its RHS reads.  Edges connect
statements in program order when their references to a shared array can
touch the same element (Definition 4 applied across statements):

* ``flow``   — earlier statement writes, later statement reads;
* ``output`` — both statements write;
* ``anti``   — earlier statement reads, later statement writes.

Dependence *existence* is decided by the exact integer intersection test
(:func:`repro.core.classify.references_intersect`); dependences that
exist but are not uniformly generated (Definition 5) are outside the
model and rejected at graph-construction time by
:mod:`repro.flow.lower`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.affine import ArrayAccess
from ..core.loopnest import LoopNest
from ..lang.ast_nodes import Assign

__all__ = ["FlowStatement", "FlowEdge", "DataflowGraph", "DEP_KINDS"]

DEP_KINDS = ("flow", "output", "anti")


@dataclass(frozen=True)
class FlowStatement:
    """One legalized statement of a dataflow program.

    Attributes
    ----------
    name:
        ``S1``, ``S2``, ... in program order.
    order:
        0-based program-order position (execution order of the nests).
    nest:
        The statement's perfect ``Doall`` nest (plus any enclosing
        ``Doseq`` wrappers as ``sequential_loops``).  ``nest.accesses``
        lists the LHS write first, then the RHS reads in source order.
    ast:
        The source :class:`~repro.lang.ast_nodes.Assign`, kept for
        line/column diagnostics.
    """

    name: str
    order: int
    nest: LoopNest
    ast: Assign

    @property
    def write(self) -> ArrayAccess:
        """The statement's LHS access."""
        return self.nest.accesses[0]

    @property
    def reads(self) -> tuple[ArrayAccess, ...]:
        return self.nest.accesses[1:]

    @property
    def sweeps(self) -> int:
        """Trip-count product of enclosing ``Doseq`` wrappers (≥ 1)."""
        n = 1
        for l in self.nest.sequential_loops:
            n *= l.trip_count
        return n


@dataclass(frozen=True)
class FlowEdge:
    """A dependence between two statements on one array."""

    producer: int  # statement order index (earlier statement)
    consumer: int  # statement order index (later statement)
    array: str
    kind: str  # 'flow' | 'output' | 'anti'

    def __post_init__(self):
        if self.kind not in DEP_KINDS:
            raise ValueError(f"unknown dependence kind {self.kind!r}")
        if not (0 <= self.producer < self.consumer):
            raise ValueError(
                f"edge must go forward in program order, got "
                f"{self.producer} -> {self.consumer}"
            )


@dataclass(frozen=True)
class DataflowGraph:
    """A legalized dataflow program: statements in program order + edges."""

    statements: tuple[FlowStatement, ...]
    edges: tuple[FlowEdge, ...]

    @property
    def flow_edges(self) -> tuple[FlowEdge, ...]:
        return tuple(e for e in self.edges if e.kind == "flow")

    def edges_into(self, consumer: int) -> tuple[FlowEdge, ...]:
        return tuple(e for e in self.edges if e.consumer == consumer)

    def statement(self, name: str) -> FlowStatement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(name)

    def arrays(self) -> tuple[str, ...]:
        """Distinct array names across all statements, in first-use order."""
        seen: dict[str, None] = {}
        for s in self.statements:
            for a in s.nest.accesses:
                seen.setdefault(a.ref.array, None)
        return tuple(seen)

    def describe(self) -> str:
        lines = []
        for s in self.statements:
            lines.append(f"{s.name}: {s.nest!r}")
        for e in self.edges:
            lines.append(
                f"{self.statements[e.producer].name} -> "
                f"{self.statements[e.consumer].name} [{e.kind}] on {e.array}"
            )
        return "\n".join(lines)
