"""Affine dataflow frontend (multi-statement programs, flow dependences).

The paper's machinery accepts one perfect ``Doall`` nest.  This package
accepts *programs* — several (possibly imperfect) nests whose statements
read arrays written by earlier statements — and drives the whole
existing stack over them:

* :mod:`repro.flow.lower` legalizes each statement into the paper's
  form (one perfect per-statement :class:`~repro.core.loopnest.LoopNest`)
  and builds a statement-level dataflow graph with affine dependence
  edges (:mod:`repro.flow.graph`), rejecting dependences outside the
  uniformly-generated model with typed diagnostics.
* :mod:`repro.flow.copartition` picks per-statement tile shapes — either
  independently per statement or *co-partitioned* onto one aligned grid
  that minimizes Theorem-2 traffic plus inter-statement transfers.
* :mod:`repro.flow.schedule` computes the inter-tile communication sets
  (which producer tile's written lines each consumer tile touches) and
  emits a versioned, replayable communication schedule.
* :mod:`repro.flow.execute` replays the scheduled program end-to-end on
  one shared MSI machine (producer nest, coherence-visible handoff,
  consumer nest) so predicted vs measured transfer traffic lands in the
  ordinary run report (:mod:`repro.flow.run`).
"""

from .graph import DataflowGraph, FlowEdge, FlowStatement
from .lower import compile_flow, flow_uisets, lower_flow_program
from .copartition import FlowPartition, StatementPartition, partition_flow
from .schedule import FLOW_SCHEDULE_SCHEMA, FLOW_SCHEDULE_VERSION, build_schedule
from .execute import FlowSimulation, PhaseStats, measure_transfers, simulate_flow
from .run import run_flow

__all__ = [
    "DataflowGraph",
    "FlowEdge",
    "FlowStatement",
    "compile_flow",
    "flow_uisets",
    "lower_flow_program",
    "FlowPartition",
    "StatementPartition",
    "partition_flow",
    "FLOW_SCHEDULE_SCHEMA",
    "FLOW_SCHEDULE_VERSION",
    "build_schedule",
    "FlowSimulation",
    "PhaseStats",
    "measure_transfers",
    "simulate_flow",
    "run_flow",
]
