"""Replay a scheduled dataflow program on the MSI machine.

All statements execute through **one shared machine** in program order:
the producer's writes leave lines modified in its processors' caches, so
the consumer's first touches are coherence-visible remote fetches — the
handoff the communication schedule predicts.  Per-phase counter
snapshots expose each statement's share of the traffic.

Only the exact engine is used (the fast engine requires a fresh machine
per nest, which would erase the handoff).

:func:`measure_transfers` recomputes the schedule's headline quantity —
distinct lines each processor reads in a consumer statement that were
written earlier by *other* processors — from the per-processor access
streams actually issued to the machine, walking them event by event.
It shares no aggregation logic with :mod:`repro.flow.schedule` (which
works per tile, from footprint images), so agreement between the two is
a genuine differential check (the ``repro check`` parity oracle).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tiles import Tiling
from ..obs.tracing import span
from ..sim.executor import ProcessorStats, SimulationResult, _execute_exact
from ..sim.fast import collect_footprints
from ..sim.machine import Machine, MachineConfig
from ..sim.trace import assign_tiles_to_processors, reference_streams
from .copartition import FlowPartition
from .graph import DataflowGraph

__all__ = ["PhaseStats", "FlowSimulation", "simulate_flow", "measure_transfers"]


@dataclass(frozen=True)
class PhaseStats:
    """Counter deltas of one statement's execution in one round."""

    statement: str
    round: int
    accesses: int
    misses: int
    cold_misses: int
    coherence_misses: int
    invalidations: int
    network_messages: int


@dataclass(frozen=True)
class FlowSimulation:
    """Outcome of :func:`simulate_flow`."""

    result: SimulationResult
    phases: tuple[PhaseStats, ...]
    transfers: dict  # measured inter-statement transfer counts


def _machine_totals(machine: Machine) -> dict[str, int]:
    d = machine.directory.stats
    return {
        "accesses": sum(int(c.stats.accesses) for c in machine.caches),
        "misses": sum(int(c.stats.misses) for c in machine.caches),
        "cold": int(d.cold_fills),
        "coherence": int(d.coherence_misses),
        "invalidations": int(d.invalidations),
        "messages": int(machine.network.messages),
    }


def _line_key(array: str, row, line_size: int):
    if line_size > 1:
        # Python's // floors for negatives, matching np.floor_divide.
        return (array, tuple(row[:-1]) + (row[-1] // line_size,))
    return (array, tuple(row))


def measure_transfers(
    graph: DataflowGraph,
    streams: dict[str, dict[int, list]],
    processors: int,
    line_size: int,
    *,
    collect_lines: bool = False,
) -> dict:
    """Inter-statement transfer counts from the issued access streams.

    Walks statements in program order: a line a processor reads counts
    as a transfer when some earlier statement wrote it and that
    processor was not among its writers.  Counts are distinct lines per
    (consumer statement, processor) — a processor re-reading a line it
    already fetched (or fetching it for a second tile) moves it once.

    ``collect_lines=True`` additionally returns the concrete line keys
    per (consumer statement, processor) under ``"lines"`` — the measured
    side of the ``repro check`` conservation oracle.
    """
    names = [s.name for s in graph.statements]
    line_writers: dict = {}  # line -> set of procs
    line_last_stmt: dict = {}  # line -> statement order
    per_consumer: dict[str, dict[str, int]] = {}
    by_pair: dict[str, int] = {}
    lines_out: dict[str, dict[str, list]] = {}
    total = 0
    for stmt in graph.statements:
        st = streams[stmt.name]
        for p in range(processors):
            remote: set = set()
            for s in st[p]:
                if s.is_write_like:
                    continue
                for row in s.coords.tolist():
                    ln = _line_key(s.array, row, line_size)
                    if ln in line_last_stmt and p not in line_writers[ln]:
                        remote.add(ln)
            if remote:
                per_consumer.setdefault(stmt.name, {})[str(p)] = len(remote)
                total += len(remote)
                for ln in remote:
                    pair = f"{names[line_last_stmt[ln]]}->{stmt.name}:{ln[0]}"
                    by_pair[pair] = by_pair.get(pair, 0) + 1
                if collect_lines:
                    lines_out.setdefault(stmt.name, {})[str(p)] = sorted(
                        [a, list(c)] for a, c in remote
                    )
        for p in range(processors):
            for s in st[p]:
                if not s.is_write_like:
                    continue
                for row in s.coords.tolist():
                    ln = _line_key(s.array, row, line_size)
                    line_last_stmt[ln] = stmt.order
                    line_writers.setdefault(ln, set()).add(p)
    out = {
        "remote_lines": total,
        "per_consumer": per_consumer,
        "by_pair": by_pair,
    }
    if collect_lines:
        out["lines"] = lines_out
    return out


def simulate_flow(
    graph: DataflowGraph,
    partition: FlowPartition,
    *,
    processors: int,
    line_size: int = 1,
    sweeps: int = 1,
    interleave: str = "roundrobin",
    check_invariants: bool = False,
    collect_lines: bool = False,
) -> FlowSimulation:
    """Execute the partitioned program end-to-end on one shared machine.

    ``sweeps`` repeats the whole statement sequence; a statement carrying
    its own ``Doseq`` wrapper additionally repeats in every round where
    its wrapper still has trips left (round ``r`` runs statement ``k``
    iff ``r < sweeps * stmt.sweeps``), preserving the
    S1, S2, S1, S2, ... interleaving of a shared outer ``Doseq``.
    """
    parts = partition.by_name()
    with span("flow.trace", statements=len(graph.statements)):
        stmt_streams: dict[str, dict[int, list]] = {}
        stmt_blocks: dict[str, dict] = {}
        for stmt in graph.statements:
            sp = parts[stmt.name]
            tiling = Tiling(stmt.nest.space, sp.result.tile)
            blocks = assign_tiles_to_processors(tiling, processors)
            stmt_blocks[stmt.name] = blocks
            stmt_streams[stmt.name] = {
                p: reference_streams(stmt.nest, its) for p, its in blocks.items()
            }

    machine = Machine(
        MachineConfig(processors=processors, line_size=line_size)
    )

    rounds = sweeps * max((s.sweeps for s in graph.statements), default=1)
    phases: list[PhaseStats] = []
    with span("flow.execute", rounds=rounds):
        for r in range(rounds):
            for stmt in graph.statements:
                if r >= sweeps * stmt.sweeps:
                    continue
                before = _machine_totals(machine)
                _execute_exact(
                    stmt_streams[stmt.name],
                    machine,
                    processors,
                    sweeps=1,
                    interleave=interleave,
                    check_invariants=check_invariants,
                )
                after = _machine_totals(machine)
                phases.append(
                    PhaseStats(
                        statement=stmt.name,
                        round=r,
                        accesses=after["accesses"] - before["accesses"],
                        misses=after["misses"] - before["misses"],
                        cold_misses=after["cold"] - before["cold"],
                        coherence_misses=after["coherence"] - before["coherence"],
                        invalidations=after["invalidations"]
                        - before["invalidations"],
                        network_messages=after["messages"] - before["messages"],
                    )
                )

    with span("flow.collect"):
        merged: dict[int, list] = {p: [] for p in range(processors)}
        for stmt in graph.statements:
            for p, st in stmt_streams[stmt.name].items():
                merged[p].extend(st)
        footprints, shared = collect_footprints(merged, processors)

        per_proc = []
        for p in range(processors):
            st = machine.caches[p].stats
            iterations = sum(
                int(stmt_blocks[s.name][p].shape[0])
                * min(rounds, sweeps * s.sweeps)
                for s in graph.statements
            )
            per_proc.append(
                ProcessorStats(
                    processor=p,
                    iterations=iterations,
                    accesses=st.accesses,
                    hits=st.hits,
                    misses=st.misses,
                    read_misses=int(st.read_misses),
                    write_misses=int(st.write_misses),
                    write_upgrades=int(st.write_upgrades),
                    local_misses=int(machine.local_miss_count[p]),
                    remote_misses=int(machine.remote_miss_count[p]),
                    memory_cost=int(machine.memory_cost[p]),
                    footprint=footprints[p],
                )
            )
        d = machine.directory.stats
        result = SimulationResult(
            processors=tuple(per_proc),
            sweeps=rounds,
            cold_misses=int(d.cold_fills),
            coherence_misses=int(d.coherence_misses),
            capacity_misses=int(d.capacity_misses),
            invalidations=int(d.invalidations),
            network_messages=int(machine.network.messages),
            network_hops=int(machine.network.hops),
            shared_elements=shared,
            machine=machine,
            engine="exact",
        )

        transfers = measure_transfers(
            graph, stmt_streams, processors, line_size,
            collect_lines=collect_lines,
        )
    return FlowSimulation(
        result=result, phases=tuple(phases), transfers=transfers
    )
