"""One-call flow pipeline: source → report document.

Shared by the CLI (``repro <file> --flow``) and the service
(``POST /v1/partition`` with ``"program": "flow"``), so a served flow
response is byte-identical (timings aside) to a CLI run of the same
program — the same differential contract the single-nest pipeline keeps
(``tests/test_serve_differential.py``).

The document is an ordinary ``repro.run-report`` (combined predicted
traffic; measured section from the end-to-end replay when simulation is
requested) plus a ``flow`` section: per-statement partitions, the
dataflow graph, the versioned communication schedule, and — when
simulated — measured transfer counts with the schedule-parity verdict.
"""

from __future__ import annotations

from ..core.cost import TrafficEstimate
from ..obs.report import build_report, partition_section, predicted_section
from ..obs.tracing import span
from .copartition import partition_flow
from .execute import simulate_flow
from .lower import compile_flow
from .schedule import build_schedule

__all__ = ["run_flow", "MAX_REPORT_TRANSFER_ROWS"]

#: Transfer entries above this count are summarised (totals + digest
#: only) in the report, keeping responses bounded; the full schedule is
#: always recomputable from the deterministic pipeline.
MAX_REPORT_TRANSFER_ROWS = 512


def run_flow(
    source: str,
    *,
    processors: int,
    bindings: dict[str, int] | None = None,
    strategy: str = "co",
    method: str = "rectangular",
    simulate: bool = False,
    sweeps: int = 1,
    line_size: int = 1,
    workers: int = 1,
    cache=None,
    plan_cache=None,
    opt_budget_s: float | None = None,
    label: str | None = None,
    include_lines: bool = False,
    max_transfer_rows: int = MAX_REPORT_TRANSFER_ROWS,
    caches=None,
) -> dict:
    """Run the full dataflow pipeline and build its run report.

    ``caches`` may be the cache-statistics dict itself or a zero-argument
    callable producing it; a callable is invoked after the pipeline has
    run, so the report reflects this request's cache activity.
    """
    graph = compile_flow(source, bindings)
    partition = partition_flow(
        graph,
        processors,
        strategy=strategy,
        method=method,
        workers=workers,
        cache=cache,
        plan_cache=plan_cache,
        opt_budget_s=opt_budget_s,
    )
    schedule = build_schedule(
        graph,
        partition,
        processors=processors,
        line_size=line_size,
        include_lines=include_lines,
    )

    flow_sim = None
    if simulate:
        with span("flow.simulate", processors=processors):
            flow_sim = simulate_flow(
                graph,
                partition,
                processors=processors,
                line_size=line_size,
                sweeps=sweeps,
            )

    classes = tuple(
        c for sp in partition.statements for c in sp.result.estimate.classes
    )
    combined = TrafficEstimate(
        classes=classes,
        tile_iterations=sum(
            float(sp.result.estimate.tile_iterations)
            for sp in partition.statements
        ),
    )

    report = build_report(
        processors=processors,
        estimate=combined,
        sim=flow_sim.result if flow_sim is not None else None,
        program={
            "source": label if label is not None else "<request>",
            "processors": int(processors),
            "bindings": dict(bindings or {}),
            "program": "flow",
            "strategy": strategy,
            "statements": len(graph.statements),
            "iterations": sum(
                int(s.nest.space.volume) for s in graph.statements
            ),
            "method": method,
            "sweeps": sweeps,
        },
        caches=caches() if callable(caches) else caches,
    )

    sched_doc = dict(schedule)
    if len(sched_doc["transfers"]) > max_transfer_rows:
        sched_doc["transfers_truncated"] = len(sched_doc["transfers"])
        sched_doc["transfers"] = []

    flow_section: dict = {
        "strategy": partition.strategy,
        "predicted_compute": float(partition.predicted_compute),
        "predicted_transfers": float(partition.predicted_transfers),
        "candidates_scored": int(partition.candidates_scored),
        "statements": [
            {
                "name": sp.name,
                "extents": sp.statement.nest.space.extents.tolist(),
                "iterations": int(sp.statement.nest.space.volume),
                "tiles": sp.num_tiles(),
                "sweeps": sp.statement.sweeps,
                "partition": partition_section(sp.result),
                "predicted": predicted_section(sp.result.estimate),
            }
            for sp in partition.statements
        ],
        "graph": {
            "edges": [
                {
                    "producer": graph.statements[e.producer].name,
                    "consumer": graph.statements[e.consumer].name,
                    "array": e.array,
                    "kind": e.kind,
                }
                for e in graph.edges
            ]
        },
        "schedule": sched_doc,
    }
    if flow_sim is not None:
        sched_pc = schedule["totals"]["per_consumer"]
        measured_pc = flow_sim.transfers["per_consumer"]
        flow_section["measured_transfers"] = flow_sim.transfers
        flow_section["parity"] = {
            "match": sched_pc == measured_pc,
            "schedule": sched_pc,
            "measured": measured_pc,
        }
        flow_section["phases"] = [
            {
                "statement": ph.statement,
                "round": ph.round,
                "accesses": ph.accesses,
                "misses": ph.misses,
                "cold_misses": ph.cold_misses,
                "coherence_misses": ph.coherence_misses,
                "invalidations": ph.invalidations,
                "network_messages": ph.network_messages,
            }
            for ph in flow_sim.phases
        ]
    report["flow"] = flow_section
    return report
