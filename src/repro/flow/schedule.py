"""Inter-tile communication schedules for dataflow programs.

Given a per-statement tiling, the schedule answers: *which producer
tile's written cache lines does each consumer tile touch?*  Statements
are walked in program order keeping a line-granular last-writer map
(line → statement, tile, processor); each consumer tile's read-line set
is intersected with it, and a line counts as a **transfer** when the
consumer's processor is not among the line's earlier writers (a
processor never fetches remotely what it produced itself — MSI keeps the
line resident in its cache).

The schedule is line-granular on purpose: it records *coherence-visible*
movement, including false sharing between element-disjoint references
that share a cache line (such pairs have no dataflow edge, but the
machine still moves the line).

Output is a versioned, deterministic document (``repro.flow-schedule``
v1).  ``include_lines=True`` additionally embeds the concrete line keys
per transfer entry — used by the ``repro check`` conservation oracle;
the digest covers only the entry keys and counts, so it is identical
with or without embedded lines.

Schedules describe one pass over the program (the first sweep); under a
``Doseq`` wrapper the same transfers recur each sweep as steady-state
coherence misses.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from ..core.tiles import Tiling
from ..exceptions import PartitionError
from ..obs.tracing import span
from .copartition import FlowPartition
from .graph import DataflowGraph

__all__ = [
    "FLOW_SCHEDULE_SCHEMA",
    "FLOW_SCHEDULE_VERSION",
    "MAX_SCHEDULE_ITERATIONS",
    "build_schedule",
]

FLOW_SCHEDULE_SCHEMA = "repro.flow-schedule"
FLOW_SCHEDULE_VERSION = 1

# Schedules enumerate every iteration of every statement; bound the work
# so a hostile serve request cannot wedge a worker.
MAX_SCHEDULE_ITERATIONS = 1 << 20


def _line_keys(array: str, coords: np.ndarray, line_size: int) -> set:
    """Distinct ``(array, line-coordinate)`` keys touched by ``coords``."""
    if coords.size == 0:
        return set()
    c = coords.copy()
    if line_size > 1:
        c[:, -1] = np.floor_divide(c[:, -1], line_size)
    uniq = np.unique(c, axis=0)
    return {(array, tuple(int(x) for x in row)) for row in uniq}


def build_schedule(
    graph: DataflowGraph,
    partition: FlowPartition,
    *,
    processors: int,
    line_size: int = 1,
    include_lines: bool = False,
    max_iterations: int = MAX_SCHEDULE_ITERATIONS,
) -> dict:
    """Compute the inter-tile communication schedule.

    Tiles are mapped to processors exactly as the simulator does
    (sorted tile keys dealt round-robin), so the schedule is directly
    comparable to replayed execution.
    """
    total_iters = sum(s.nest.space.volume for s in graph.statements)
    if total_iters > max_iterations:
        raise PartitionError(
            f"flow schedule enumeration over budget: {total_iters} iterations "
            f"across {len(graph.statements)} statements exceeds "
            f"{max_iterations}; shrink the program or raise max_iterations"
        )

    with span("flow.schedule", statements=len(graph.statements)):
        parts = partition.by_name()
        names = [s.name for s in graph.statements]
        last_writer: dict = {}  # line -> (stmt_order, tile_key, proc)
        writer_procs: dict = {}  # line -> set of procs
        entries: dict = {}  # (prod_stmt, ptile, pproc, cons_stmt, ctile, cproc, array) -> set
        remote_by_proc: dict = {}  # (cons_stmt_order, proc) -> set of lines
        stmt_meta = []

        for stmt in graph.statements:
            sp = parts[stmt.name]
            tiling = Tiling(stmt.nest.space, sp.result.tile)
            assignments = tiling.assignments()
            keys = sorted(assignments)
            proc_of = {key: k % processors for k, key in enumerate(keys)}
            reads = [a for a in stmt.nest.accesses if not a.kind.is_write_like]
            writes = [a for a in stmt.nest.accesses if a.kind.is_write_like]

            # Consumer side first: reads see only *earlier* statements'
            # writes (an intra-statement write never feeds its own reads
            # through the schedule — Doall iterations are independent).
            for key in keys:
                its = assignments[key]
                p = proc_of[key]
                rlines: set = set()
                for a in reads:
                    rlines |= _line_keys(
                        a.ref.array, a.ref.map_points(its), line_size
                    )
                for ln in rlines:
                    lw = last_writer.get(ln)
                    if lw is None:
                        continue
                    if p in writer_procs[ln]:
                        continue
                    j, ptile, pproc = lw
                    ekey = (j, ptile, pproc, stmt.order, key, p, ln[0])
                    entries.setdefault(ekey, set()).add(ln)
                    remote_by_proc.setdefault((stmt.order, p), set()).add(ln)

            # Producer side: sorted tile-key order makes the last-writer
            # attribution deterministic when tiles write-share a line.
            for key in keys:
                its = assignments[key]
                p = proc_of[key]
                for a in writes:
                    for ln in _line_keys(
                        a.ref.array, a.ref.map_points(its), line_size
                    ):
                        last_writer[ln] = (stmt.order, key, p)
                        writer_procs.setdefault(ln, set()).add(p)

            meta = {
                "name": stmt.name,
                "iterations": int(stmt.nest.space.volume),
                "tiles": len(keys),
                "l_matrix": sp.result.tile.l_matrix.tolist(),
            }
            if getattr(sp.result.tile, "sides", None) is not None:
                meta["tile_sides"] = [int(x) for x in sp.result.tile.sides]
            if sp.result.grid is not None:
                meta["grid"] = [int(g) for g in sp.result.grid]
            stmt_meta.append(meta)

        transfer_rows = []
        by_pair: dict[str, int] = {}
        for ekey in sorted(entries):
            j, ptile, pproc, k, ctile, cproc, array = ekey
            lines = entries[ekey]
            row = {
                "producer": names[j],
                "producer_tile": [int(x) for x in ptile],
                "producer_proc": int(pproc),
                "consumer": names[k],
                "consumer_tile": [int(x) for x in ctile],
                "consumer_proc": int(cproc),
                "array": array,
                "lines": len(lines),
            }
            if include_lines:
                row["line_keys"] = sorted(
                    [a, [int(x) for x in c]] for a, c in lines
                )
            transfer_rows.append(row)
            pair = f"{names[j]}->{names[k]}:{array}"
            by_pair[pair] = by_pair.get(pair, 0) + len(lines)

        # Distinct lines per (consumer statement, processor): a processor
        # owning several tiles fetches a shared line once — this is the
        # quantity the simulator-parity oracle compares.
        per_consumer: dict[str, dict[str, int]] = {}
        for (k, p), lines in sorted(remote_by_proc.items()):
            per_consumer.setdefault(names[k], {})[str(p)] = len(lines)

        digest_basis = [
            [
                row["producer"],
                row["producer_tile"],
                row["producer_proc"],
                row["consumer"],
                row["consumer_tile"],
                row["consumer_proc"],
                row["array"],
                row["lines"],
            ]
            for row in transfer_rows
        ]
        digest = hashlib.sha256(
            json.dumps(digest_basis, separators=(",", ":")).encode()
        ).hexdigest()

        return {
            "schema": FLOW_SCHEDULE_SCHEMA,
            "version": FLOW_SCHEDULE_VERSION,
            "processors": int(processors),
            "line_size": int(line_size),
            "strategy": partition.strategy,
            "statements": stmt_meta,
            "edges": [
                {
                    "producer": names[e.producer],
                    "consumer": names[e.consumer],
                    "array": e.array,
                    "kind": e.kind,
                }
                for e in graph.edges
            ],
            "transfers": transfer_rows,
            "totals": {
                "transfer_lines": sum(r["lines"] for r in transfer_rows),
                "remote_lines": sum(
                    len(v) for v in remote_by_proc.values()
                ),
                "by_pair": by_pair,
                "per_consumer": per_consumer,
            },
            "digest": digest,
        }
