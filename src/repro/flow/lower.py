"""Legalize multi-statement programs into the paper's per-nest form.

The single-nest lowerer (:mod:`repro.lang.lower`) rejects imperfect
nests outright.  Here they are *legal input*: every assignment is split
out with its chain of enclosing loops into its own perfect nest (loop
distribution), and the statements execute in program order as whole
nests.  That is exactly the regime in which the paper's per-nest
machinery — uniformly-intersecting classes, cumulative footprints,
Theorem 2/4 tile optimization, the structure-keyed plan cache — applies
to each statement unchanged, while a statement-level dataflow graph
(:mod:`repro.flow.graph`) captures what moves *between* them.

Cross-statement dependences must stay inside the model: two references
to a shared array that can touch the same element (Definition 4) must be
uniformly generated (Definition 5, same ``G``), so that the pair forms a
uniformly intersecting class *across* statements and the Section 3
footprint machinery can price the transfer.  Anything else — mismatched
``G``, mismatched nest depth, mismatched array rank — raises a typed
:class:`~repro.exceptions.FlowLoweringError` carrying the source
line/column of the offending reference.
"""

from __future__ import annotations

from ..core.classify import (
    UISet,
    partition_references,
    references_intersect,
    uniformly_generated,
)
from ..exceptions import FlowLoweringError
from ..lang.ast_nodes import Assign, LoopNode, Program, RefNode
from ..lang.lower import _lower_nest
from ..lang.parser import parse_program
from ..obs.tracing import span
from .graph import DataflowGraph, FlowEdge, FlowStatement

__all__ = ["lower_flow_program", "compile_flow", "flow_uisets"]


def _split_statements(program: Program) -> list[tuple[list[LoopNode], Assign]]:
    """Pair every assignment with its chain of enclosing loop heads.

    Statements are emitted in textual order, which is the program order
    the dataflow semantics preserve.
    """
    out: list[tuple[list[LoopNode], Assign]] = []

    def walk(node: LoopNode, chain: list[LoopNode]) -> None:
        chain = chain + [node]
        for item in node.body:
            if isinstance(item, Assign):
                out.append((chain, item))
            else:
                walk(item, chain)

    for nest in program.nests:
        walk(nest, [])
    return out


def _synthetic_nest(chain: list[LoopNode], stmt: Assign) -> LoopNode:
    """Rebuild a perfect single-statement nest from a loop chain."""
    node: tuple = (stmt,)
    for head in reversed(chain):
        node = (
            LoopNode(
                head.kind,
                head.index,
                head.lower,
                head.upper,
                node,
                head.line,
                head.column,
            ),
        )
    return node[0]


def _ast_ref(stmt: FlowStatement, access_index: int) -> RefNode:
    """Source AST node of the statement's ``access_index``-th access."""
    if access_index == 0:
        return stmt.ast.lhs
    return stmt.ast.rhs_refs[access_index - 1]


def _reject_non_uniform(s: FlowStatement, t: FlowStatement, ia: int, ib: int) -> None:
    a = s.nest.accesses[ia].ref
    b = t.nest.accesses[ib].ref
    node = _ast_ref(t, ib)
    if a.array_dim != b.array_dim:
        why = (
            f"array rank mismatch ({a.array_dim}-d in {s.name} vs "
            f"{b.array_dim}-d in {t.name})"
        )
    else:
        why = f"reference matrices differ ({a.g.tolist()} vs {b.g.tolist()})"
    raise FlowLoweringError(
        f"dependence {s.name} -> {t.name} on {a.array!r} is not uniformly "
        f"generated: {why}; the footprint machinery (Sec 3) cannot price "
        "this transfer",
        node.line,
        node.column,
    )


def _build_edges(statements: tuple[FlowStatement, ...]) -> tuple[FlowEdge, ...]:
    edges: dict[tuple[int, int, str, str], FlowEdge] = {}
    for t_idx, t in enumerate(statements):
        for s_idx in range(t_idx):
            s = statements[s_idx]
            for ia, acc_a in enumerate(s.nest.accesses):
                for ib, acc_b in enumerate(t.nest.accesses):
                    if acc_a.ref.array != acc_b.ref.array:
                        continue
                    a_writes = acc_a.kind.is_write_like
                    b_writes = acc_b.kind.is_write_like
                    if not (a_writes or b_writes):
                        continue
                    if acc_a.ref.array_dim != acc_b.ref.array_dim:
                        # references_intersect would say "disjoint", but a
                        # rank-inconsistent shared array is a program bug.
                        _reject_non_uniform(s, t, ia, ib)
                    if not references_intersect(acc_a.ref, acc_b.ref):
                        continue
                    # Same-depth statements must reference the shared
                    # array uniformly (Definition 5) so the dependence
                    # forms a cross-statement class the cost model can
                    # price.  Across depth groups no shared grid exists
                    # anyway (imperfect nests distribute to different
                    # depths); the exact schedule still covers the edge.
                    if s.nest.depth == t.nest.depth and not uniformly_generated(
                        acc_a.ref, acc_b.ref
                    ):
                        _reject_non_uniform(s, t, ia, ib)
                    if a_writes and b_writes:
                        kind = "output"
                    elif a_writes:
                        kind = "flow"
                    else:
                        kind = "anti"
                    key = (s_idx, t_idx, acc_a.ref.array, kind)
                    edges.setdefault(
                        key, FlowEdge(s_idx, t_idx, acc_a.ref.array, kind)
                    )
    return tuple(edges.values())


def lower_flow_program(
    program: Program, bindings: dict[str, int] | None = None
) -> DataflowGraph:
    """Lower a parsed multi-statement program to a dataflow graph.

    Every assignment becomes one :class:`FlowStatement` with a perfect
    per-statement nest (imperfect nests are distributed); cross-statement
    dependence edges are derived from matching ``(G, a)`` write/read
    pairs per shared array.
    """
    with span("flow.lower", nests=len(program.nests)):
        statements = []
        for order, (chain, stmt) in enumerate(_split_statements(program)):
            nest = _lower_nest(_synthetic_nest(chain, stmt), bindings)
            statements.append(
                FlowStatement(
                    name=f"S{order + 1}", order=order, nest=nest, ast=stmt
                )
            )
        if not statements:
            raise FlowLoweringError("flow program has no statements")
        stmts = tuple(statements)
        return DataflowGraph(statements=stmts, edges=_build_edges(stmts))


def compile_flow(
    source: str, bindings: dict[str, int] | None = None
) -> DataflowGraph:
    """Parse + lower a source string into a dataflow graph."""
    return lower_flow_program(parse_program(source), bindings)


def flow_uisets(graph: DataflowGraph) -> list[UISet]:
    """Uniformly intersecting classes over *all* statements' accesses.

    Because non-uniform intersecting pairs were rejected at lowering
    time, references to a shared array group into the same class across
    statements whenever they can touch common elements — the grouping
    the co-partitioning pass scores transfers on.
    """
    accesses = [a for s in graph.statements for a in s.nest.accesses]
    return partition_references(accesses)
