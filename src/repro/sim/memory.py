"""Distributed memory modules and array-to-home mapping.

Section 2.2 allows monolithic or distributed memory; data partitioning
(Section 4) matters only in the distributed case, where an array element's
*home node* determines whether a miss is serviced locally or across the
network.  An :class:`AddressMap` assigns each ``(array, index)`` address a
home node; two stock policies are provided:

* :func:`flat_address_map` — elements interleaved round-robin over nodes
  (the unaligned default a naive system would use);
* :func:`block_address_map` — arrays cut into rectangular blocks matching
  a data partition, each block homed on one node (the "Data Partitioning
  and Alignment" scheme: "partitioning arrays with the same aspect ratios
  as the iterations of loops that reference them").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AddressMap", "flat_address_map", "block_address_map"]


@dataclass(frozen=True)
class ArrayLayout:
    """Shape plus home-assignment function for one array."""

    name: str
    shape: tuple[int, ...]
    lower: tuple[int, ...]


class AddressMap:
    """Maps element addresses ``(array, coords)`` to home nodes.

    Parameters
    ----------
    nodes:
        Number of memory modules (= processors).
    default_policy:
        Fallback for arrays without an explicit layout: ``'interleave'``
        hashes elements round-robin; ``'node0'`` homes everything on node
        0 (the monolithic-memory model — all misses cost the same, as the
        paper's uniform-access analysis assumes).
    """

    def __init__(self, nodes: int, default_policy: str = "interleave"):
        if nodes < 1:
            raise ValueError("need at least one node")
        if default_policy not in ("interleave", "node0"):
            raise ValueError(f"unknown policy {default_policy!r}")
        self.nodes = nodes
        self.default_policy = default_policy
        self._block_maps: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def set_block_map(self, array: str, lower, block_sides, grid_to_node) -> None:
        """Home ``array`` by rectangular blocks.

        ``lower`` is the array's index origin, ``block_sides`` the block
        side lengths per dimension, and ``grid_to_node`` an integer array
        indexed by block grid coordinates giving the home node.
        """
        lower = np.asarray(lower, dtype=np.int64)
        sides = np.asarray(block_sides, dtype=np.int64)
        g2n = np.asarray(grid_to_node, dtype=np.int64)
        if np.any(sides < 1):
            raise ValueError("block sides must be >= 1")
        if g2n.ndim != len(sides):
            raise ValueError("grid_to_node rank must match dimensionality")
        self._block_maps[array] = (lower, sides, g2n)

    @staticmethod
    def _mix_prefix(array: str) -> int:
        """FNV-1a state after hashing the array name alone."""
        h = 2166136261
        for ch in array:
            h = (h ^ ord(ch)) * 16777619 % (1 << 32)
        return h

    @classmethod
    def _mix(cls, array: str, coords) -> int:
        """Deterministic element hash (Python's ``hash`` is salted per
        process; simulations must reproduce across runs)."""
        h = cls._mix_prefix(array)
        for c in coords:
            h = (h ^ (int(c) & 0xFFFFFFFF)) * 16777619 % (1 << 32)
        return h

    @classmethod
    def _mix_vector(cls, array: str, coords: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_mix` over the rows of an ``(N, d)`` array.

        Bit-identical to the scalar hash: state stays below ``2**32`` and
        the multiplier below ``2**24``, so the uint64 products never wrap.
        """
        coords = np.asarray(coords, dtype=np.int64)
        h = np.full(coords.shape[0], cls._mix_prefix(array), dtype=np.uint64)
        mult = np.uint64(16777619)
        mask = np.uint64(0xFFFFFFFF)
        for k in range(coords.shape[1]):
            c = (coords[:, k] & 0xFFFFFFFF).astype(np.uint64)
            h = ((h ^ c) * mult) & mask
        return h

    def home(self, array: str, coords: tuple[int, ...]) -> int:
        """Home node of one element."""
        bm = self._block_maps.get(array)
        if bm is not None:
            lower, sides, g2n = bm
            block = tuple(
                min(int((c - lo) // s), g2n.shape[k] - 1)
                for k, (c, lo, s) in enumerate(zip(coords, lower, sides))
            )
            block = tuple(max(b, 0) for b in block)
            return int(g2n[block])
        if self.default_policy == "node0":
            return 0
        return self._mix(array, coords) % self.nodes

    def homes_vector(self, array: str, coords: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`home` for an ``(N, d)`` coordinate array."""
        bm = self._block_maps.get(array)
        n = coords.shape[0]
        if bm is not None:
            lower, sides, g2n = bm
            block = (coords - lower) // sides
            block = np.clip(block, 0, np.array(g2n.shape) - 1)
            return g2n[tuple(block[:, k] for k in range(block.shape[1]))]
        if self.default_policy == "node0":
            return np.zeros(n, dtype=np.int64)
        return (self._mix_vector(array, coords) % np.uint64(self.nodes)).astype(
            np.int64
        )


def flat_address_map(nodes: int) -> AddressMap:
    """Round-robin interleaved homes (no data partitioning)."""
    return AddressMap(nodes, default_policy="interleave")


def block_address_map(
    nodes: int,
    arrays: dict[str, tuple[tuple[int, ...], tuple[int, ...], np.ndarray]],
) -> AddressMap:
    """Blocked homes: ``arrays[name] = (lower, block_sides, grid_to_node)``."""
    am = AddressMap(nodes, default_policy="interleave")
    for name, (lower, sides, g2n) in arrays.items():
        am.set_block_map(name, lower, sides, g2n)
    return am
