"""The simulated cache-coherent multiprocessor (Figure 2).

Composes caches, directory, address map and network into the system of
Section 2.2.  :meth:`Machine.access` is the single entry point: processor
``p`` touches ``(array, coords)`` with a read / write / sync access and
every protocol consequence (fills, invalidations, network messages) is
accounted.

Synchronizing accesses (Appendix A's ``l$`` accumulates) are "treated as
writes by the coherence system" — :meth:`access` maps ``sync`` to the
write path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError
from ..obs.metrics import MetricsRegistry
from .cache import Cache
from .directory import Directory
from .memory import AddressMap, flat_address_map
from .network import GraphNetwork, MeshNetwork

__all__ = ["Machine", "MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Static machine parameters.

    ``cache_capacity=None`` models the paper's infinite-cache assumption.
    ``remote_cost`` / ``local_cost`` price a miss serviced by a remote vs
    local home (cache hits are free, matching the analysis's
    "cost of a main memory access is much higher than a cache access").

    ``line_size`` groups consecutive elements of each array's *last*
    dimension into one coherence unit ("The effect of larger cache lines
    can be included as suggested in [6]", Section 2.2); the default 1
    reproduces the paper's unit-line analysis.

    ``cache_enabled=False`` models the local-memory multicomputer of
    footnote 2 (data partitioning): no dynamic copying — every access
    goes to the element's home module and pays local or remote cost.
    """

    processors: int
    cache_capacity: int | None = None
    local_cost: int = 1
    remote_cost: int = 5
    mesh_shape: tuple[int, int] | None = None
    line_size: int = 1
    cache_enabled: bool = True

    def __post_init__(self):
        if self.line_size < 1:
            raise ValueError(f"line_size must be >= 1, got {self.line_size}")


class Machine:
    """A ``P``-processor cache-coherent shared-memory machine."""

    def __init__(
        self,
        config: MachineConfig | int,
        *,
        address_map: AddressMap | None = None,
        network=None,
        registry: MetricsRegistry | None = None,
    ):
        if isinstance(config, int):
            config = MachineConfig(processors=config)
        if config.processors < 1:
            raise SimulationError("need at least one processor")
        self.config = config
        self.p = config.processors
        # Every component publishes into this machine's registry; machines
        # own their registries so concurrent simulations never mix counts.
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.caches = [
            Cache(config.cache_capacity, registry=self.metrics, proc=i)
            for i in range(self.p)
        ]
        self.directory = Directory(self.caches, registry=self.metrics)
        self.address_map = address_map or flat_address_map(self.p)
        self.network = network or MeshNetwork(
            self.p, config.mesh_shape, registry=self.metrics
        )
        self.local_miss_count = [
            self.metrics.counter("sim.machine.local_misses", proc=i)
            for i in range(self.p)
        ]
        self.remote_miss_count = [
            self.metrics.counter("sim.machine.remote_misses", proc=i)
            for i in range(self.p)
        ]
        self.memory_cost = [
            self.metrics.counter("sim.machine.memory_cost", proc=i)
            for i in range(self.p)
        ]
        # Optional per-access observer ``(proc, array, coords, kind, hit)``
        # — e.g. :class:`repro.obs.export.EventTraceWriter`.
        self.observer = None

    # ------------------------------------------------------------------
    def _account_messages(self, msgs, home: int) -> None:
        for src, dst in msgs:
            s = home if src == -1 else src
            d = home if dst == -1 else dst
            if s != d:
                self.network.send(s, d)

    def _account_miss(self, proc: int, home: int) -> None:
        if home == proc:
            self.local_miss_count[proc] += 1
            self.memory_cost[proc] += self.config.local_cost
        else:
            self.remote_miss_count[proc] += 1
            self.memory_cost[proc] += self.config.remote_cost

    def account_bulk_misses(self, proc: int, homes, events) -> None:
        """Vectorised miss + network accounting for the fast engine.

        ``homes[i]`` is the home node of the ``i``-th line, ``events[i]``
        how many directory fetches that line cost (1, or 2 with an S→M
        upgrade).  Each event prices exactly as one clean two-message
        round trip in :meth:`access` — the only protocol shape a private
        line can produce.
        """
        homes = np.asarray(homes, dtype=np.int64)
        events = np.asarray(events, dtype=np.int64)
        local = homes == proc
        n_local = int(events[local].sum())
        n_remote = int(events[~local].sum())
        if n_local:
            self.local_miss_count[proc] += n_local
            self.memory_cost[proc] += n_local * self.config.local_cost
        if n_remote:
            self.remote_miss_count[proc] += n_remote
            self.memory_cost[proc] += n_remote * self.config.remote_cost
            remote_homes = homes[~local]
            remote_events = events[~local]
            for h in np.unique(remote_homes):
                cnt = int(remote_events[remote_homes == h].sum())
                self.network.send_bulk(proc, int(h), 2 * cnt)

    def line_of(self, array: str, coords: tuple[int, ...]) -> tuple[int, ...]:
        """Coherence-unit coordinates: last dimension divided by line size."""
        if self.config.line_size == 1:
            return coords
        ls = self.config.line_size
        return coords[:-1] + (coords[-1] // ls,)

    def access(self, proc: int, array: str, coords: tuple[int, ...], kind: str) -> bool:
        """One memory access; returns True on a cache hit.

        ``kind`` ∈ {'read', 'write', 'sync'}; sync behaves as write
        (Appendix A).  When an :attr:`observer` is attached it sees every
        access (element coordinates, pre line-grouping) after servicing.
        """
        hit = self._access(proc, array, coords, kind)
        if self.observer is not None:
            self.observer(proc, array, coords, kind, hit)
        return hit

    def _access(self, proc: int, array: str, coords: tuple[int, ...], kind: str) -> bool:
        if not 0 <= proc < self.p:
            raise SimulationError(f"no such processor {proc}")
        if kind not in ("read", "write", "sync"):
            raise SimulationError(f"unknown access kind {kind!r}")
        coords = self.line_of(array, coords)
        if not self.config.cache_enabled:
            # Local-memory multicomputer (footnote 2): every access goes
            # to the home module; no replication, no coherence.
            st = self.caches[proc].stats
            if kind == "read":
                st.read_misses += 1
            else:
                st.write_misses += 1
            home = self.address_map.home(array, coords)
            if home != proc:
                self.network.send(proc, home)
                self.network.send(home, proc)
            self._account_miss(proc, home)
            return False
        addr = (array, coords)
        cache = self.caches[proc]
        if kind == "read":
            if cache.lookup_read(addr):
                return True
            home = self.address_map.home(array, coords)
            msgs = self.directory.read(addr, proc)
            self._account_messages(msgs, home)
            self._account_miss(proc, home)
            return False
        if kind in ("write", "sync"):
            outcome = cache.lookup_write(addr)
            if outcome == "hit":
                return True
            home = self.address_map.home(array, coords)
            msgs = self.directory.write(addr, proc, upgrade=(outcome == "upgrade"))
            self._account_messages(msgs, home)
            self._account_miss(proc, home)
            return False
        raise SimulationError(f"unknown access kind {kind!r}")

    # ------------------------------------------------------------------
    @property
    def total_misses(self) -> int:
        return sum(c.stats.misses for c in self.caches)

    @property
    def total_accesses(self) -> int:
        return sum(c.stats.accesses for c in self.caches)

    def flush_caches(self) -> None:
        """Reset cache and directory content, keep counters."""
        for c in self.caches:
            c.flush()
        self.directory.entries.clear()
        self.directory._invalidated_at.clear()
        self.directory._evicted_at.clear()
        self.directory._ever_filled.clear()

    def check(self) -> None:
        """Run protocol invariant checks (tests call this liberally)."""
        self.directory.check_invariants()
