"""Access-trace generation from a partitioned loop nest.

Bridges the analytical world (loop nests, tiles) and the machine
simulator: enumerate each tile's iterations, map them through every body
reference (vectorised), and emit per-processor access streams.

Within one iteration the body's reads precede its writes (the canonical
``A[...] = f(B[...], C[...])`` statement shape of all the paper's
examples); across iterations a ``Doall`` imposes no order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.affine import AccessKind
from ..core.loopnest import LoopNest
from ..core.tiles import ParallelepipedTile, Tiling

__all__ = ["AccessEvent", "tile_accesses", "nest_trace", "assign_tiles_to_processors"]


@dataclass(frozen=True)
class AccessEvent:
    """One memory access of one iteration."""

    array: str
    coords: tuple[int, ...]
    kind: str


def _ordered_accesses(nest: LoopNest):
    reads = [a for a in nest.accesses if a.kind is AccessKind.READ]
    writes = [a for a in nest.accesses if a.kind is not AccessKind.READ]
    return reads + writes


def tile_accesses(nest: LoopNest, iterations: np.ndarray) -> list[list[AccessEvent]]:
    """Per-iteration access lists for an ``(N, l)`` block of iterations.

    Returns ``N`` lists, each the iteration's accesses in execution order
    (reads then writes).  Coordinate computation is vectorised per
    reference.
    """
    iterations = np.atleast_2d(np.asarray(iterations, dtype=np.int64))
    n = iterations.shape[0]
    ordered = _ordered_accesses(nest)
    coords_per_ref = [acc.ref.map_points(iterations) for acc in ordered]
    out: list[list[AccessEvent]] = []
    for row in range(n):
        events = [
            AccessEvent(
                array=acc.ref.array,
                coords=tuple(int(x) for x in coords_per_ref[k][row]),
                kind="sync" if acc.kind is AccessKind.SYNC else acc.kind.value,
            )
            for k, acc in enumerate(ordered)
        ]
        out.append(events)
    return out


def assign_tiles_to_processors(
    tiling: Tiling, processors: int
) -> dict[int, np.ndarray]:
    """Map processor → concatenated iteration block.

    Tiles are ordered lexicographically by tile index and dealt to
    processors in order (tile ``k`` → processor ``k mod P`` when there are
    more tiles than processors).  Deterministic.
    """
    assignments = tiling.assignments()
    keys = sorted(assignments)
    per_proc: dict[int, list[np.ndarray]] = {p: [] for p in range(processors)}
    for k, key in enumerate(keys):
        per_proc[k % processors].append(assignments[key])
    return {
        p: (np.vstack(blocks) if blocks else np.empty((0, tiling.space.depth), dtype=np.int64))
        for p, blocks in per_proc.items()
    }


def nest_trace(
    nest: LoopNest,
    tile: ParallelepipedTile,
    processors: int,
) -> dict[int, list[list[AccessEvent]]]:
    """Full trace: processor → list of per-iteration access lists."""
    tiling = Tiling(nest.space, tile)
    blocks = assign_tiles_to_processors(tiling, processors)
    return {p: tile_accesses(nest, its) if its.size else [] for p, its in blocks.items()}
