"""Access-trace generation from a partitioned loop nest.

Bridges the analytical world (loop nests, tiles) and the machine
simulator: enumerate each tile's iterations, map them through every body
reference (vectorised), and emit per-processor access streams.

Within one iteration the body's reads precede its writes (the canonical
``A[...] = f(B[...], C[...])`` statement shape of all the paper's
examples); across iterations a ``Doall`` imposes no order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.affine import AccessKind
from ..core.loopnest import LoopNest
from ..core.tiles import ParallelepipedTile, Tiling

__all__ = [
    "AccessEvent",
    "RefStream",
    "reference_streams",
    "tile_accesses",
    "nest_trace",
    "assign_tiles_to_processors",
]


@dataclass(frozen=True)
class AccessEvent:
    """One memory access of one iteration."""

    array: str
    coords: tuple[int, ...]
    kind: str


@dataclass(frozen=True)
class RefStream:
    """Batched accesses of one body reference over an iteration block.

    Row ``n`` of ``coords`` is the data point this reference touches on
    the block's ``n``-th iteration; within an iteration the executor
    issues streams in list order (reads then writes).
    """

    array: str
    kind: str
    coords: np.ndarray  # (N, d) element coordinates

    @property
    def is_write_like(self) -> bool:
        return self.kind != "read"


def _ordered_accesses(nest: LoopNest):
    reads = [a for a in nest.accesses if a.kind is AccessKind.READ]
    writes = [a for a in nest.accesses if a.kind is not AccessKind.READ]
    return reads + writes


def reference_streams(nest: LoopNest, iterations: np.ndarray) -> list[RefStream]:
    """Batched counterpart of :func:`tile_accesses`.

    One ``(N, d)`` coordinate array per body reference in execution
    order, instead of ``N`` per-iteration event lists — the address-
    stream representation the fast simulator engine consumes.  An empty
    block yields streams with ``(0, d)`` coordinate arrays, keeping the
    reference structure uniform across processors.
    """
    iterations = np.asarray(iterations, dtype=np.int64)
    if iterations.ndim != 2:
        iterations = np.atleast_2d(iterations)
    if iterations.size == 0:
        iterations = iterations.reshape(0, nest.space.depth)
    return [
        RefStream(
            array=acc.ref.array,
            kind="sync" if acc.kind is AccessKind.SYNC else acc.kind.value,
            coords=acc.ref.map_points(iterations),
        )
        for acc in _ordered_accesses(nest)
    ]


def tile_accesses(nest: LoopNest, iterations: np.ndarray) -> list[list[AccessEvent]]:
    """Per-iteration access lists for an ``(N, l)`` block of iterations.

    Returns ``N`` lists, each the iteration's accesses in execution order
    (reads then writes).  Coordinate computation is vectorised per
    reference.
    """
    streams = reference_streams(nest, iterations)
    n = streams[0].coords.shape[0] if streams else 0
    out: list[list[AccessEvent]] = []
    for row in range(n):
        events = [
            AccessEvent(
                array=s.array,
                coords=tuple(int(x) for x in s.coords[row]),
                kind=s.kind,
            )
            for s in streams
        ]
        out.append(events)
    return out


def assign_tiles_to_processors(
    tiling: Tiling, processors: int
) -> dict[int, np.ndarray]:
    """Map processor → concatenated iteration block.

    Tiles are ordered lexicographically by tile index and dealt to
    processors in order (tile ``k`` → processor ``k mod P`` when there are
    more tiles than processors).  Deterministic.
    """
    assignments = tiling.assignments()
    keys = sorted(assignments)
    per_proc: dict[int, list[np.ndarray]] = {p: [] for p in range(processors)}
    for k, key in enumerate(keys):
        per_proc[k % processors].append(assignments[key])
    return {
        p: (np.vstack(blocks) if blocks else np.empty((0, tiling.space.depth), dtype=np.int64))
        for p, blocks in per_proc.items()
    }


def nest_trace(
    nest: LoopNest,
    tile: ParallelepipedTile,
    processors: int,
) -> dict[int, list[list[AccessEvent]]]:
    """Full trace: processor → list of per-iteration access lists."""
    tiling = Tiling(nest.space, tile)
    blocks = assign_tiles_to_processors(tiling, processors)
    return {p: tile_accesses(nest, its) if its.size else [] for p, its in blocks.items()}
