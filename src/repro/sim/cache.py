"""Per-processor coherent caches.

The analytical model assumes caches big enough for a tile's whole
footprint (Section 2.2), so the default capacity is unbounded; a finite
LRU mode is provided for the "when caches are small" remark (the optimal
aspect ratios do not change, only the effective tile size does — a claim
the test suite checks).

Lines are unit-sized (one array element per line, Section 2.2): an
address is any hashable, in practice ``(array_name, flat_index)``.
"""

from __future__ import annotations

from collections import OrderedDict
import enum

from ..obs.metrics import MetricsRegistry

__all__ = ["LineState", "Cache", "CacheStats"]


class LineState(enum.Enum):
    """MSI stable states (I is represented by absence)."""

    SHARED = "S"
    MODIFIED = "M"


class CacheStats:
    """Hit/miss/eviction counters for one cache.

    Each field is an int-like :class:`~repro.obs.metrics.Counter`
    published in a metrics registry (the owning machine's, or a private
    one for standalone caches) — reads, comparisons and ``+=`` behave
    exactly as the former plain-int dataclass did.
    """

    FIELDS = (
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "write_upgrades",
        "evictions",
        "invalidations_received",
        "probe_invalidations",
    )

    __slots__ = FIELDS

    def __init__(self, *, registry: MetricsRegistry | None = None, **labels):
        registry = registry if registry is not None else MetricsRegistry()
        for name in self.FIELDS:
            setattr(self, name, registry.counter(f"sim.cache.{name}", **labels))

    @property
    def accesses(self) -> int:
        return int(
            self.read_hits
            + self.read_misses
            + self.write_hits
            + self.write_misses
            + self.write_upgrades
        )

    @property
    def misses(self) -> int:
        """All memory-visible events: misses plus S→M upgrades."""
        return int(self.read_misses + self.write_misses + self.write_upgrades)

    @property
    def hits(self) -> int:
        return int(self.read_hits + self.write_hits)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return all(
            int(getattr(self, f)) == int(getattr(other, f)) for f in self.FIELDS
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={int(getattr(self, f))}" for f in self.FIELDS)
        return f"CacheStats({inner})"


class Cache:
    """One processor's cache: address → :class:`LineState`, optional LRU.

    The cache itself is protocol-passive; the :class:`~repro.sim.directory.
    Directory` drives state changes.  Methods return what happened so the
    machine can account traffic.
    """

    def __init__(
        self,
        capacity: int | None = None,
        *,
        registry: MetricsRegistry | None = None,
        **labels,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # LRU recency bookkeeping only matters when evictions can happen;
        # unbounded caches use a plain dict (faster lookups and updates).
        self._lines: dict = OrderedDict() if capacity is not None else {}
        self.stats = CacheStats(registry=registry, **labels)

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, addr) -> bool:
        return addr in self._lines

    def state(self, addr) -> LineState | None:
        return self._lines.get(addr)

    def _touch(self, addr) -> None:
        if self.capacity is not None:
            self._lines.move_to_end(addr)

    def lookup_read(self, addr) -> bool:
        """Probe for a read; returns hit and updates stats/LRU."""
        st = self._lines.get(addr)
        if st is None:
            self.stats.read_misses += 1
            return False
        self.stats.read_hits += 1
        self._touch(addr)
        return True

    def lookup_write(self, addr) -> str:
        """Probe for a write: ``'hit'`` (M), ``'upgrade'`` (S), ``'miss'``."""
        st = self._lines.get(addr)
        if st is LineState.MODIFIED:
            self.stats.write_hits += 1
            self._touch(addr)
            return "hit"
        if st is LineState.SHARED:
            self.stats.write_upgrades += 1
            self._touch(addr)
            return "upgrade"
        self.stats.write_misses += 1
        return "miss"

    def fill(self, addr, state: LineState) -> list:
        """Install a line; returns addresses evicted to make room."""
        evicted = []
        if addr not in self._lines and self.capacity is not None:
            while len(self._lines) >= self.capacity:
                victim, _ = self._lines.popitem(last=False)
                self.stats.evictions += 1
                evicted.append(victim)
        self._lines[addr] = state
        self._touch(addr)
        return evicted

    def set_state(self, addr, state: LineState) -> None:
        if addr not in self._lines:
            raise KeyError(f"{addr!r} not cached")
        self._lines[addr] = state

    def invalidate(self, addr) -> bool:
        """Drop a line at directory request; True if it was present.

        A probe for a line already lost to LRU eviction counts under
        ``probe_invalidations``, so directory-sent invalidation messages
        always reconcile: sent == received + probe misses.
        """
        if addr in self._lines:
            del self._lines[addr]
            self.stats.invalidations_received += 1
            return True
        self.stats.probe_invalidations += 1
        return False

    def downgrade(self, addr) -> bool:
        """M → S at directory request (another reader); True if downgraded."""
        if self._lines.get(addr) is LineState.MODIFIED:
            self._lines[addr] = LineState.SHARED
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (used between independent simulations)."""
        self._lines.clear()
