"""Cache-coherent multiprocessor simulator (substrate S10).

A software stand-in for the Alewife machine of Section 4, matching the
analytical model of Section 2.2 / Figure 2:

* ``P`` processors, each with a coherent cache (infinite by default —
  "caches are large enough to hold all the data required by a loop
  partition" — or finite LRU);
* unit cache lines ("We assume that cache lines are of unit length");
* a full-map directory invalidation protocol (MSI);
* distributed memory modules, one per node, with a configurable
  array-to-home mapping (data partitioning);
* a 2-D mesh interconnect ("The nodes are configured in a 2-dimensional
  mesh communication network") with hop-weighted traffic accounting,
  plus arbitrary networkx topologies.

The executor runs a partitioned loop nest on the machine and reports the
event counts the paper's framework predicts: cold misses per tile
(= cumulative footprints), sharing between tiles (= the dilation terms),
and — for ``Doseq``-wrapped nests — steady-state coherence misses and
invalidations.
"""

from .cache import Cache, CacheStats
from .directory import Directory, CoherenceStats
from .memory import AddressMap, block_address_map, flat_address_map
from .network import MeshNetwork, GraphNetwork
from .machine import Machine, MachineConfig
from .trace import RefStream, reference_streams, tile_accesses, nest_trace
from .executor import simulate_nest, SimulationResult, ProcessorStats
from .fast import fast_path_blockers, supports_fast_path
from .stats import format_table

__all__ = [
    "Cache",
    "CacheStats",
    "Directory",
    "CoherenceStats",
    "AddressMap",
    "block_address_map",
    "flat_address_map",
    "MeshNetwork",
    "GraphNetwork",
    "Machine",
    "MachineConfig",
    "RefStream",
    "reference_streams",
    "tile_accesses",
    "nest_trace",
    "simulate_nest",
    "fast_path_blockers",
    "supports_fast_path",
    "SimulationResult",
    "ProcessorStats",
    "format_table",
]
