"""Execute a partitioned loop nest on the simulated machine.

:func:`simulate_nest` is the measurement instrument of the repository:
given a nest and a tile shape, it runs the program on the MSI machine and
reports the quantities the paper's framework *predicts* —

* per-processor cache misses (→ cumulative footprint, Section 3.3),
* elements shared between processors (→ the spread dilation terms),
* and, with ``sweeps > 1`` (the Figure 9 ``Doseq`` regime), steady-state
  coherence misses and invalidations.

Determinism: processors execute their iterations in lexicographic order
and are interleaved round-robin one iteration at a time (``interleave=
'roundrobin'``, default) or run to completion one after another
(``'sequential'``).  Both orders give identical miss counts for the
read/write-disjoint programs of the paper; they differ (and the
round-robin order is the fairer model) when tiles write-share data, e.g.
the matmul sync accumulates of Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.loopnest import LoopNest
from ..core.tiles import ParallelepipedTile, Tiling
from ..exceptions import SimulationError
from ..obs.log import get_logger
from ..obs.tracing import span
from .fast import collect_footprints, execute_fast, fast_path_blockers
from .machine import Machine, MachineConfig
from .memory import AddressMap
from .trace import assign_tiles_to_processors, reference_streams

__all__ = ["ProcessorStats", "SimulationResult", "simulate_nest"]

logger = get_logger("sim.executor")


@dataclass(frozen=True)
class ProcessorStats:
    """Per-processor outcome of a simulation."""

    processor: int
    iterations: int
    accesses: int
    hits: int
    misses: int
    read_misses: int
    write_misses: int
    write_upgrades: int
    local_misses: int
    remote_misses: int
    memory_cost: int
    footprint: dict[str, int]

    @property
    def total_footprint(self) -> int:
        return sum(self.footprint.values())


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of :func:`simulate_nest`."""

    processors: tuple[ProcessorStats, ...]
    sweeps: int
    cold_misses: int
    coherence_misses: int
    capacity_misses: int
    invalidations: int
    network_messages: int
    network_hops: int
    shared_elements: dict[str, int]
    machine: Machine | None = field(repr=False, compare=False, default=None)
    # Engine bookkeeping (``compare=False``: the two engines are
    # bit-identical on every *counter*, and parity tests compare results
    # across engines with ``==``).
    engine: str = field(compare=False, default="exact")
    engine_fallback: str | None = field(compare=False, default=None)

    @property
    def total_misses(self) -> int:
        return sum(p.misses for p in self.processors)

    @property
    def total_accesses(self) -> int:
        return sum(p.accesses for p in self.processors)

    @property
    def miss_rate(self) -> float:
        acc = self.total_accesses
        return self.total_misses / acc if acc else 0.0

    @property
    def max_misses_per_processor(self) -> int:
        return max((p.misses for p in self.processors), default=0)

    def mean_misses_per_processor(self) -> float:
        active = [p for p in self.processors if p.iterations]
        return sum(p.misses for p in active) / len(active) if active else 0.0

    def mean_footprint(self, array: str | None = None) -> float:
        active = [p for p in self.processors if p.iterations]
        if not active:
            return 0.0
        if array is None:
            return sum(p.total_footprint for p in active) / len(active)
        return sum(p.footprint.get(array, 0) for p in active) / len(active)


def _execute_exact(
    streams,
    machine: Machine,
    processors: int,
    *,
    sweeps: int,
    interleave: str,
    check_invariants: bool,
) -> None:
    """Drive every access through the scalar MSI protocol."""
    # (array, kind, per-iteration coordinate tuples) per reference per proc.
    refs = {
        p: [(s.array, s.kind, [tuple(row) for row in s.coords.tolist()]) for s in st]
        for p, st in streams.items()
    }
    counts = {p: (int(st[0].coords.shape[0]) if st else 0) for p, st in streams.items()}
    access = machine.access
    for _sweep in range(sweeps):
        if interleave == "sequential":
            for p in range(processors):
                for n in range(counts[p]):
                    for array, kind, coords in refs[p]:
                        access(p, array, coords[n], kind)
        else:
            longest = max(counts.values(), default=0)
            for step in range(longest):
                for p in range(processors):
                    if step < counts[p]:
                        for array, kind, coords in refs[p]:
                            access(p, array, coords[step], kind)
        if check_invariants:
            machine.check()


def simulate_nest(
    nest: LoopNest,
    tile: ParallelepipedTile,
    processors: int,
    *,
    sweeps: int = 1,
    cache_capacity: int | None = None,
    address_map: AddressMap | None = None,
    interleave: str = "roundrobin",
    machine: Machine | None = None,
    check_invariants: bool = False,
    line_size: int = 1,
    cache_enabled: bool = True,
    observer=None,
    engine: str = "auto",
    workers: int | None = None,
) -> SimulationResult:
    """Run ``sweeps`` executions of the nest under the given partition.

    ``sweeps > 1`` models the enclosing ``Doseq`` of Figure 9 (data stays
    cached between sweeps; traffic after the first sweep is pure
    coherence).  If the nest itself carries ``sequential_loops``, their
    total trip count is used when ``sweeps`` is left at 1.

    ``observer`` (``(proc, array, coords, kind, hit) -> None``) sees every
    access — e.g. a :class:`repro.obs.export.EventTraceWriter`.

    ``engine`` selects the execution strategy: ``'exact'`` drives every
    access through the scalar MSI protocol; ``'fast'`` resolves
    provably-private lines in bulk (:mod:`repro.sim.fast`) and replays
    only the shared residue exactly — identical results, order-of-
    magnitude faster on private-heavy programs; ``'auto'`` (default)
    uses the fast engine whenever its preconditions hold (fresh
    infinite-cache coherent machine, no observer) and falls back to
    exact otherwise.  ``workers`` optionally fans the fast engine's bulk
    phase out over a process pool.
    """
    if engine not in ("auto", "fast", "exact"):
        raise SimulationError(f"unknown engine {engine!r}")
    if workers is not None and workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if sweeps == 1 and nest.has_sequential_wrapper:
        sweeps = 1
        for l in nest.sequential_loops:
            sweeps *= l.trip_count
    if sweeps < 1:
        raise SimulationError(f"sweeps must be >= 1, got {sweeps}")
    if interleave not in ("roundrobin", "sequential"):
        raise SimulationError(f"unknown interleave {interleave!r}")

    if machine is None:
        machine = Machine(
            MachineConfig(
                processors=processors,
                cache_capacity=cache_capacity,
                line_size=line_size,
                cache_enabled=cache_enabled,
            ),
            address_map=address_map,
        )
    elif machine.p != processors:
        raise SimulationError("machine size does not match processor count")
    if observer is not None:
        machine.observer = observer

    with span("sim.trace", processors=processors):
        tiling = Tiling(nest.space, tile)
        blocks = assign_tiles_to_processors(tiling, processors)
        streams = {p: reference_streams(nest, its) for p, its in blocks.items()}

        # Footprints and sharing measured from the streams themselves.
        footprints, shared = collect_footprints(streams, processors)

    blockers = fast_path_blockers(machine, observer)
    if engine == "fast" and blockers:
        raise SimulationError(
            "engine='fast' requires a fresh machine with coherent caching "
            "enabled, unbounded capacity, and no observer "
            f"(blocked by: {'; '.join(blockers)}); use engine='auto' "
            "to fall back to the exact engine instead"
        )
    use_fast = engine in ("fast", "auto") and not blockers
    fallback_reason: str | None = None
    if engine == "auto" and blockers:
        fallback_reason = "; ".join(blockers)
        logger.warning(
            "engine='auto' fell back to the exact engine: %s", fallback_reason
        )
        for reason in blockers:
            machine.metrics.counter("sim.engine.fallback", reason=reason).inc()

    logger.debug(
        "simulating %d iterations on P=%d (%d sweeps, %s interleave, %s engine)",
        sum(b.shape[0] for b in blocks.values()),
        processors,
        sweeps,
        interleave,
        "fast" if use_fast else "exact",
    )
    with span("sim.execute", sweeps=sweeps, interleave=interleave):
        if use_fast:
            execute_fast(
                nest,
                streams,
                machine,
                sweeps=sweeps,
                interleave=interleave,
                check_invariants=check_invariants,
                workers=workers,
            )
        else:
            _execute_exact(
                streams,
                machine,
                processors,
                sweeps=sweeps,
                interleave=interleave,
                check_invariants=check_invariants,
            )

    with span("sim.collect"):
        per_proc = []
        for p in range(processors):
            st = machine.caches[p].stats
            per_proc.append(
                ProcessorStats(
                    processor=p,
                    iterations=int(blocks[p].shape[0]),
                    accesses=st.accesses,
                    hits=st.hits,
                    misses=st.misses,
                    read_misses=int(st.read_misses),
                    write_misses=int(st.write_misses),
                    write_upgrades=int(st.write_upgrades),
                    local_misses=int(machine.local_miss_count[p]),
                    remote_misses=int(machine.remote_miss_count[p]),
                    memory_cost=int(machine.memory_cost[p]),
                    footprint=footprints[p],
                )
            )

    d = machine.directory.stats
    return SimulationResult(
        processors=tuple(per_proc),
        sweeps=sweeps,
        cold_misses=int(d.cold_fills),
        coherence_misses=int(d.coherence_misses),
        capacity_misses=int(d.capacity_misses),
        invalidations=int(d.invalidations),
        network_messages=int(machine.network.messages),
        network_hops=int(machine.network.hops),
        shared_elements=shared,
        machine=machine,
        engine="fast" if use_fast else "exact",
        engine_fallback=fallback_reason,
    )
