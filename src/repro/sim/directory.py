"""Full-map directory MSI protocol.

Each memory address has a directory entry at its home node recording the
sharer set and (exclusive) owner.  The directory serialises protocol
actions; the machine calls :meth:`Directory.read` / :meth:`Directory.write`
which mutate the caches and return the messages exchanged so the network
layer can price them.

Message accounting (unit-size messages, one per protocol hop):

=====================  =======================================================
event                  messages
=====================  =======================================================
read, clean            requester→home, home→requester (data)
read, dirty remote     requester→home, home→owner, owner→requester (data),
                       owner→home (writeback/sharer update)
write, no sharers      requester→home, home→requester (data/ack)
write, with sharers    + home→sharer and sharer→home ack per sharer
upgrade                requester→home, home→requester + invalidation pairs
=====================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SimulationError
from ..obs.metrics import MetricsRegistry
from .cache import Cache, LineState

__all__ = ["Directory", "CoherenceStats", "DirectoryEntry"]


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for one address."""

    sharers: set[int] = field(default_factory=set)
    owner: int | None = None


class CoherenceStats:
    """Machine-wide protocol event counters.

    A view over int-like registry counters (see
    :mod:`repro.obs.metrics`); field semantics are unchanged from the
    former plain-int dataclass.
    """

    FIELDS = (
        "cold_fills",        # first-ever fetch of an address
        "coherence_misses",  # miss on a previously-invalidated line
        "capacity_misses",   # miss on a line lost to LRU eviction
        "invalidations",     # individual invalidation messages
        "downgrades",        # M -> S interventions
        "writebacks",        # dirty data returned to home
    )

    __slots__ = FIELDS

    def __init__(self, *, registry: MetricsRegistry | None = None, **labels):
        registry = registry if registry is not None else MetricsRegistry()
        for name in self.FIELDS:
            setattr(self, name, registry.counter(f"sim.directory.{name}", **labels))

    def __eq__(self, other) -> bool:
        if not isinstance(other, CoherenceStats):
            return NotImplemented
        return all(
            int(getattr(self, f)) == int(getattr(other, f)) for f in self.FIELDS
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={int(getattr(self, f))}" for f in self.FIELDS)
        return f"CoherenceStats({inner})"


class Directory:
    """The directory controller shared by all home nodes.

    The home *node* of an address matters only for network pricing; the
    protocol state is global here (one entry per address), which is
    equivalent to per-node directories since addresses have unique homes.
    """

    def __init__(self, caches: list[Cache], *, registry: MetricsRegistry | None = None):
        self.caches = caches
        self.entries: dict = {}
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.stats = CoherenceStats(registry=self.metrics)
        # Sharer count seen by each serviced write (how many other copies
        # the protocol had to take down) — the coherence-cost distribution.
        self._sharers_at_write = self.metrics.histogram(
            "sim.directory.sharers_at_write"
        )
        # Per-processor cause tracking: addr -> set of procs whose copy was
        # invalidated (to classify the next miss as a coherence miss).
        self._invalidated_at: dict = {}
        self._evicted_at: dict = {}
        self._ever_filled: set = set()

    def _count_miss_class(self, kind: str, proc: int) -> None:
        self.metrics.counter("sim.directory.miss_class", kind=kind, proc=proc).inc()

    def _entry(self, addr) -> DirectoryEntry:
        e = self.entries.get(addr)
        if e is None:
            e = DirectoryEntry()
            self.entries[addr] = e
        return e

    def _classify_miss(self, addr, proc: int) -> None:
        inv = self._invalidated_at.get(addr)
        if inv and proc in inv:
            self.stats.coherence_misses += 1
            self._count_miss_class("coherence", proc)
            inv.discard(proc)
            return
        ev = self._evicted_at.get(addr)
        if ev and proc in ev:
            self.stats.capacity_misses += 1
            self._count_miss_class("replacement", proc)
            ev.discard(proc)
            return
        # Not invalidation- or eviction-caused, so this is the requester's
        # first fetch of the address: a per-processor cold miss.  The
        # machine-wide ``cold_fills`` keeps its original meaning (first
        # fetch by *anyone*), so the per-processor cold counts may sum to
        # more than it when several processors each first-touch an address.
        self._count_miss_class("cold", proc)
        if addr not in self._ever_filled:
            self.stats.cold_fills += 1

    def note_eviction(self, addr, proc: int) -> None:
        """Cache informs directory of an LRU eviction (silent drop of S,
        writeback of M)."""
        e = self._entry(addr)
        if e.owner == proc:
            e.owner = None
            self.stats.writebacks += 1
        e.sharers.discard(proc)
        self._evicted_at.setdefault(addr, set()).add(proc)

    # ------------------------------------------------------------------
    def read(self, addr, proc: int) -> list[tuple[int, int]]:
        """Service a read miss by processor ``proc``.

        Returns the protocol messages as (src_node, dst_node) pairs, with
        the home node encoded as ``-1`` (the machine substitutes the real
        home for pricing).
        """
        e = self._entry(addr)
        self._classify_miss(addr, proc)
        msgs = [(proc, -1)]
        if e.owner is not None and e.owner != proc:
            owner = e.owner
            # Home forwards to owner; owner sends data to requester and
            # updates home.
            msgs += [(-1, owner), (owner, proc), (owner, -1)]
            if not self.caches[owner].downgrade(addr):
                raise SimulationError(
                    f"directory says {owner} owns {addr!r} but cache disagrees"
                )
            self.stats.downgrades += 1
            self.stats.writebacks += 1
            e.sharers.add(owner)
            e.owner = None
        else:
            msgs.append((-1, proc))
        e.sharers.add(proc)
        self._fill(addr, proc, LineState.SHARED)
        return msgs

    def write(self, addr, proc: int, *, upgrade: bool) -> list[tuple[int, int]]:
        """Service a write miss or S→M upgrade by ``proc``."""
        e = self._entry(addr)
        if not upgrade:
            self._classify_miss(addr, proc)
        # How many other copies this write must take down (sharers plus a
        # remote owner) — observed before the protocol acts.
        holders = len(e.sharers - {proc})
        if e.owner is not None and e.owner != proc and e.owner not in e.sharers:
            holders += 1
        self._sharers_at_write.observe(holders)
        msgs = [(proc, -1)]
        if e.owner is not None and e.owner != proc:
            owner = e.owner
            msgs += [(-1, owner), (owner, proc)]
            if not self.caches[owner].invalidate(addr):
                raise SimulationError(
                    f"directory says {owner} owns {addr!r} but cache disagrees"
                )
            self._invalidated_at.setdefault(addr, set()).add(owner)
            self.stats.invalidations += 1
            self.stats.writebacks += 1
            e.owner = None
            e.sharers.discard(owner)
        # Invalidate all other sharers.
        for sharer in sorted(e.sharers - {proc}):
            msgs += [(-1, sharer), (sharer, -1)]
            self.caches[sharer].invalidate(addr)
            self._invalidated_at.setdefault(addr, set()).add(sharer)
            self.stats.invalidations += 1
        if upgrade:
            msgs.append((-1, proc))
        else:
            msgs.append((-1, proc))
        e.sharers = {proc}
        e.owner = proc
        self._fill(addr, proc, LineState.MODIFIED)
        return msgs

    def _fill(self, addr, proc: int, state: LineState) -> None:
        for victim in self.caches[proc].fill(addr, state):
            self.note_eviction(victim, proc)
        self._ever_filled.add(addr)

    def bulk_install(
        self, proc: int, array: str, line_coords, *, modified: bool
    ) -> None:
        """Install lines proven private to ``proc`` (fast engine).

        ``line_coords`` is an ``(N, d)`` integer array of line
        coordinates.  ``modified=True`` leaves every line in M with
        ``proc`` as owner (the state the exact protocol ends in after the
        line's last write — a written analytic line is by construction
        private to one processor), ``False`` in S with ``proc`` the sole
        sharer.  Event counters are *not* touched — the caller accounts
        misses, upgrades and messages in bulk; this keeps the directory
        entries, caches and ``_ever_filled`` consistent so
        :meth:`check_invariants`, :meth:`sharer_histogram` and later
        accesses see the same state the scalar path would have produced.
        """
        cache = self.caches[proc]
        if cache.capacity is not None:
            raise SimulationError("bulk install requires an unbounded cache")
        addrs = [(array, tuple(row)) for row in line_coords.tolist()]
        state = LineState.MODIFIED if modified else LineState.SHARED
        owner = proc if modified else None
        cache._lines.update(dict.fromkeys(addrs, state))
        self.entries.update(
            (a, DirectoryEntry(sharers={proc}, owner=owner)) for a in addrs
        )
        self._ever_filled.update(addrs)

    def bulk_install_shared(self, array: str, line_coords, touch) -> None:
        """Install globally read-only lines at every toucher (fast engine).

        ``touch`` is a ``(P, N)`` boolean matrix: ``touch[p, i]`` marks
        processor ``p`` as having read line ``i``.  Every touched copy
        ends in S; the directory entry records the full sharer set, no
        owner — the state the exact protocol reaches for a never-written
        line regardless of access order.  Counters are the caller's job,
        as in :meth:`bulk_install`.
        """
        addrs = [(array, tuple(row)) for row in line_coords.tolist()]
        for p, cache in enumerate(self.caches):
            sel = np.flatnonzero(touch[p])
            if sel.size == 0:
                continue
            if cache.capacity is not None:
                raise SimulationError("bulk install requires an unbounded cache")
            cache._lines.update(
                dict.fromkeys((addrs[i] for i in sel.tolist()), LineState.SHARED)
            )
        entries = self.entries
        nprocs = touch.shape[0]
        if nprocs <= 62:
            # Group lines by sharer bitmask: distinct sharer *sets* are few
            # (tile-boundary patterns), so decode each mask only once.
            weights = np.left_shift(np.int64(1), np.arange(nprocs, dtype=np.int64))
            masks = touch.T.astype(np.int64) @ weights
            decoded: dict[int, list[int]] = {}
            for addr, m in zip(addrs, masks.tolist()):
                procs = decoded.get(m)
                if procs is None:
                    procs = decoded[m] = [p for p in range(nprocs) if (m >> p) & 1]
                entries[addr] = DirectoryEntry(sharers=set(procs), owner=None)
        else:  # pragma: no cover - machines beyond bitmask range
            for i, addr in enumerate(addrs):
                entries[addr] = DirectoryEntry(
                    sharers=set(np.flatnonzero(touch[:, i]).tolist()), owner=None
                )
        self._ever_filled.update(addrs)

    # ------------------------------------------------------------------
    def sharer_histogram(self) -> dict[int, int]:
        """Map ``k`` → number of addresses currently cached by ``k`` procs."""
        hist: dict[int, int] = {}
        for e in self.entries.values():
            k = len(e.sharers) + (1 if e.owner is not None and e.owner not in e.sharers else 0)
            hist[k] = hist.get(k, 0) + 1
        return hist

    def check_invariants(self) -> None:
        """Protocol sanity: an owned line has exactly one cached M copy and
        no other copies; sharer sets match the caches."""
        for addr, e in self.entries.items():
            holders = [
                p for p, c in enumerate(self.caches) if c.state(addr) is not None
            ]
            m_holders = [
                p for p in holders if self.caches[p].state(addr) is LineState.MODIFIED
            ]
            if e.owner is not None:
                if m_holders != [e.owner] or set(holders) != {e.owner}:
                    raise SimulationError(
                        f"invariant violation at {addr!r}: owner={e.owner}, "
                        f"holders={holders}, M={m_holders}"
                    )
            else:
                if m_holders:
                    raise SimulationError(
                        f"invariant violation at {addr!r}: no owner but M copies {m_holders}"
                    )
                if set(holders) != e.sharers:
                    raise SimulationError(
                        f"invariant violation at {addr!r}: sharers {e.sharers} "
                        f"vs holders {holders}"
                    )
