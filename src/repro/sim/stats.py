"""Small reporting helpers shared by examples and benchmarks."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (monospace, no dependencies).

    >>> print(format_table(["a", "b"], [[1, 2.5], [30, "x"]]))
    a   b
    --  ---
    1   2.5
    30  x
    """
    def fmt(x: object) -> str:
        if isinstance(x, float):
            return f"{x:.4g}"
        return str(x)

    cells = [[fmt(h) for h in headers]] + [[fmt(c) for c in row] for row in rows]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
