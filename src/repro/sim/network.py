"""Interconnect models: 2-D mesh (Alewife's topology) and general graphs.

The paper's analysis prices every main-memory access equally ("the cost of
the main memory access is the same no matter where in main memory the data
is located"); the *placement* phase of Section 4 then notes that on a real
mesh the distance matters ("a smaller effect that may become important in
very large machines").  The network layer therefore reports both message
counts (the paper's metric) and hop-weighted traffic (the placement
metric).
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from ..obs.metrics import MetricsRegistry

__all__ = ["MeshNetwork", "GraphNetwork", "best_mesh_shape"]


def best_mesh_shape(nodes: int) -> tuple[int, int]:
    """Most-square ``rows × cols`` factorisation of ``nodes``."""
    best = (1, nodes)
    for r in range(1, int(math.isqrt(nodes)) + 1):
        if nodes % r == 0:
            best = (r, nodes // r)
    return best


class MeshNetwork:
    """2-D mesh with dimension-ordered (Manhattan) routing."""

    def __init__(
        self,
        nodes: int,
        shape: tuple[int, int] | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ):
        if nodes < 1:
            raise ValueError("need at least one node")
        self.nodes = nodes
        self.shape = shape or best_mesh_shape(nodes)
        if self.shape[0] * self.shape[1] < nodes:
            raise ValueError(f"mesh {self.shape} too small for {nodes} nodes")
        registry = registry if registry is not None else MetricsRegistry()
        self.messages = registry.counter("sim.network.messages")
        self.hops = registry.counter("sim.network.hops")

    def coords(self, node: int) -> tuple[int, int]:
        return divmod(node, self.shape[1])

    def distance(self, a: int, b: int) -> int:
        ra, ca = self.coords(a)
        rb, cb = self.coords(b)
        return abs(ra - rb) + abs(ca - cb)

    def send(self, src: int, dst: int) -> int:
        """Account one message; returns its hop count."""
        d = self.distance(src, dst)
        self.messages += 1
        self.hops += d
        return d

    def send_bulk(self, src: int, dst: int, count: int) -> None:
        """Account ``count`` messages between one src/dst pair at once."""
        if count <= 0:
            return
        d = self.distance(src, dst)
        self.messages += count
        self.hops += d * count

    def reset(self) -> None:
        self.messages.reset()
        self.hops.reset()


class GraphNetwork:
    """Arbitrary topology via networkx; shortest-path hop distances."""

    def __init__(self, graph: nx.Graph, *, registry: MetricsRegistry | None = None):
        if graph.number_of_nodes() == 0:
            raise ValueError("empty topology")
        if not nx.is_connected(graph):
            raise ValueError("topology must be connected")
        self.graph = graph
        self.nodes = graph.number_of_nodes()
        nodes_sorted = sorted(graph.nodes())
        self._index = {n: i for i, n in enumerate(nodes_sorted)}
        self._names = nodes_sorted
        # Precompute all-pairs hop distances (small machines only).
        self._dist = np.zeros((self.nodes, self.nodes), dtype=np.int64)
        for src, lengths in nx.all_pairs_shortest_path_length(graph):
            for dst, d in lengths.items():
                self._dist[self._index[src], self._index[dst]] = d
        registry = registry if registry is not None else MetricsRegistry()
        self.messages = registry.counter("sim.network.messages")
        self.hops = registry.counter("sim.network.hops")

    def distance(self, a: int, b: int) -> int:
        return int(self._dist[a, b])

    def send(self, src: int, dst: int) -> int:
        d = self.distance(src, dst)
        self.messages += 1
        self.hops += d
        return d

    def send_bulk(self, src: int, dst: int, count: int) -> None:
        """Account ``count`` messages between one src/dst pair at once."""
        if count <= 0:
            return
        d = self.distance(src, dst)
        self.messages += count
        self.hops += d * count

    def reset(self) -> None:
        self.messages.reset()
        self.hops.reset()
