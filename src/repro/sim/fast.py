"""Batched fast-path execution engine for :func:`repro.sim.simulate_nest`.

The exact engine drives every array-element access through the scalar
MSI protocol (:meth:`repro.sim.machine.Machine.access`) — faithful, but
one Python call per access.  This engine exploits the structure the
paper's analysis rests on: under the infinite-cache assumption a
coherence line touched by a *single* processor has exactly one possible
protocol history, independent of interleaving —

* first access read  → one read miss, line fills S; a later write adds
  one S→M upgrade; everything else hits;
* first access write → one write miss, line fills M; everything else
  hits;
* sweeps beyond the first are pure hits (nothing ever invalidates the
  line).

A *globally read-only* line is just as deterministic, however many
processors share it: each toucher pays one cold read miss and then hits;
nothing ever invalidates anything.  So the engine precomputes each
processor's access stream as numpy address arrays
(:func:`repro.sim.trace.reference_streams`), classifies lines into
*analytically resolvable* (private to one processor, or never written)
vs *write-shared* — with an analytic shortcut from the lattice layer (a
single-reference class whose ``G`` has trivial integer kernel maps
iterations to elements injectively, Lemma 1 / the Theorem 3 intersection
machinery with no nonzero solution, so every line is private by
construction) and an exact vectorised ownership count otherwise — then

* resolves all analytic lines in bulk with vectorised first-touch
  accounting (optionally fanned out over a ``multiprocessing`` pool),
* replays only the write-shared residue through the exact scalar
  protocol, in the same global interleaved order the exact engine would
  use.

Analytic accesses never touch a residue line's cache or directory state
(and unbounded caches have no capacity coupling), so removing them from
the replayed stream leaves the residue lines' protocol histories — and
therefore every counter — bit-identical to the exact engine.  The
differential-parity suite (``tests/test_sim_parity.py``) asserts exactly
that over all of the paper's programs.
"""

from __future__ import annotations

import numpy as np

from ..core.classify import partition_references
from ..core.loopnest import LoopNest
from ..lattice.snf import integer_kernel_basis
from ..obs.log import get_logger
from .machine import Machine
from .trace import RefStream

__all__ = [
    "fast_path_blockers",
    "supports_fast_path",
    "execute_fast",
    "collect_footprints",
]

logger = get_logger("sim.fast")


def fast_path_blockers(machine: Machine, observer=None) -> list[str]:
    """Why the batched engine cannot run on ``machine`` (empty = it can).

    Each entry is a human-readable reason; :func:`simulate_nest` surfaces
    them in the engine-fallback warning, the metrics registry, and the
    run report when ``engine='auto'`` has to use the exact engine.
    """
    cfg = machine.config
    blockers: list[str] = []
    if observer is not None or machine.observer is not None:
        blockers.append("per-access observer attached")
    if not cfg.cache_enabled:
        blockers.append("caching disabled")
    if cfg.cache_capacity is not None:
        blockers.append(f"finite cache capacity ({cfg.cache_capacity} lines)")
    if (
        machine.directory.entries
        or machine.directory._ever_filled
        or any(len(c) for c in machine.caches)
    ):
        blockers.append("machine not fresh (pre-existing cache/directory state)")
    return blockers


def supports_fast_path(machine: Machine, observer=None) -> bool:
    """Can the batched engine reproduce the exact engine on ``machine``?

    Requires the paper's infinite-cache coherent configuration (the
    private-line argument above needs "no evictions" and "no uncached
    mode") and a *fresh* machine — pre-cached lines would make first
    accesses hit.  Per-access observers see events the bulk path never
    materialises, so they force the exact engine too.
    """
    return not fast_path_blockers(machine, observer)


# ----------------------------------------------------------------------
# Vectorised primitives


def _line_coords(coords: np.ndarray, line_size: int) -> np.ndarray:
    """Element → coherence-unit coordinates (last dim // line_size)."""
    if line_size == 1:
        return coords
    lc = coords.copy()
    lc[:, -1] = np.floor_divide(lc[:, -1], line_size)
    return lc


def _unique_rows(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(rows, axis=0, return_inverse=True)``, but fast.

    Encodes each row as one integer key (row-major position inside the
    data's bounding box) and uniques the 1-D keys — several times faster
    than the void-dtype lexicographic sort ``axis=0`` performs.  Falls
    back to ``axis=0`` when the bounding box is too large to index in 62
    bits (never the case for the paper's programs).
    """
    n, d = rows.shape
    if n == 0:
        return rows, np.empty(0, dtype=np.int64)
    if d == 1:
        uniq, inv = np.unique(rows[:, 0], return_inverse=True)
        return uniq.reshape(-1, 1), inv.reshape(-1)
    lo = rows.min(axis=0)
    spans = rows.max(axis=0) - lo + 1
    box = 1
    for s in spans.tolist():
        box *= int(s)
    if box < 2**62:
        strides = np.empty(d, dtype=np.int64)
        strides[-1] = 1
        for k in range(d - 2, -1, -1):
            strides[k] = strides[k + 1] * int(spans[k + 1])
        keys = (rows - lo) @ strides
        _, first, inv = np.unique(keys, return_index=True, return_inverse=True)
        return rows[first], inv.reshape(-1)
    uniq, inv = np.unique(rows, axis=0, return_inverse=True)
    return uniq, inv.reshape(-1)


def _analytically_private_arrays(nest: LoopNest, line_size: int) -> set[str]:
    """Arrays whose every line is private under *any* disjoint partition.

    A single-member reference class whose ``G`` has a trivial integer
    kernel is one-to-one (Lemma 1): each element is touched by exactly
    one iteration, and iterations are partitioned disjointly over
    processors — equivalently, the Theorem 3 intersection test admits no
    nonzero iteration-difference, so no element is ever shared.  With
    unit lines the element/line distinction vanishes, so every line is
    private *and touched exactly once*: the whole per-line bookkeeping
    (uniquing, ownership counting, first-touch grouping) collapses.
    """
    if line_size != 1:
        return set()
    by_array: dict[str, list] = {}
    for s in partition_references(nest.accesses):
        by_array.setdefault(s.array, []).append(s)
    out = set()
    for array, classes in by_array.items():
        if (
            len(classes) == 1
            and classes[0].size == 1
            and integer_kernel_basis(classes[0].g).shape[0] == 0
        ):
            out.add(array)
    return out


def _private_line_summary(ids, wr, order):
    """Per-line first-touch digest of one processor's bulk accesses.

    Returns ``(line_ids, first_is_write, has_write)`` — the unique line
    ids (ascending), whether each line's earliest access (by ``order``)
    is write-like, and whether the line is ever written by this
    processor.  Pure numpy on plain arrays so it can run in a
    ``multiprocessing`` worker.
    """
    perm = np.lexsort((order, ids))
    sid = ids[perm]
    swr = wr[perm]
    new_group = np.r_[True, sid[1:] != sid[:-1]]
    starts = np.flatnonzero(new_group)
    line_ids = sid[starts]
    first_wr = swr[starts]
    group_idx = np.cumsum(new_group) - 1
    writes_per_line = np.bincount(group_idx, weights=swr)
    return line_ids, first_wr, writes_per_line > 0


def _run_summaries(payloads, workers):
    """Run :func:`_private_line_summary` over payloads, optionally in a
    process pool.  Results keep payload order either way (determinism)."""
    if workers and workers > 1 and len(payloads) > 1:
        import multiprocessing as mp

        try:
            with mp.get_context().Pool(min(workers, len(payloads))) as pool:
                return pool.starmap(_private_line_summary, payloads)
        except (OSError, ValueError) as e:  # pragma: no cover - env-specific
            logger.warning("multiprocessing fan-out unavailable (%s); serial", e)
    return [_private_line_summary(*p) for p in payloads]


# ----------------------------------------------------------------------
# The engine


def _bulk_account(machine, proc, array, n_lines, first_read, upgrade_mask,
                  reads_total, writes_total, written, coords_lines, sweeps):
    """Apply one processor's analytic first-touch deltas for one array.

    ``upgrade_mask`` marks lines whose first access is a read and that
    are later written (one S→M upgrade — a second protocol event —
    each), ``written`` the per-line has-any-write mask (one sharers-at-
    write observation each), ``coords_lines`` the ``(n_lines, d)`` line
    coordinates in the same order.
    """
    first_write = n_lines - first_read
    upgrades = int(upgrade_mask.sum())
    st = machine.caches[proc].stats
    st.read_misses += first_read
    st.write_misses += first_write
    st.write_upgrades += upgrades
    st.read_hits += reads_total * sweeps - first_read
    st.write_hits += writes_total * sweeps - first_write - upgrades
    if n_lines:
        machine.directory.metrics.counter(
            "sim.directory.miss_class", kind="cold", proc=proc
        ).inc(n_lines)
    machine.directory._sharers_at_write.observe_bulk(0, int(written.sum()))
    homes = machine.address_map.homes_vector(array, coords_lines)
    events = 1 + upgrade_mask.astype(np.int64)
    machine.account_bulk_misses(proc, homes, events)


def execute_fast(
    nest: LoopNest,
    streams: dict[int, list[RefStream]],
    machine: Machine,
    *,
    sweeps: int,
    interleave: str,
    check_invariants: bool = False,
    workers: int | None = None,
) -> None:
    """Run the batched engine; mutates ``machine`` exactly as the scalar
    loop would (see module docstring for the argument why)."""
    processors = machine.p
    line_size = machine.config.line_size
    ref_structure = streams[0]
    n_refs = len(ref_structure)
    arrays = sorted({s.array for s in ref_structure})
    analytic = _analytically_private_arrays(nest, line_size)
    directory = machine.directory

    # Per-(proc, array) bulk aggregation inputs and the write-shared
    # residue, built array by array.
    payloads: list[tuple] = []
    payload_meta: list[tuple] = []
    residue: list[tuple] = []

    for array in arrays:
        ref_idx = [r for r, s in enumerate(ref_structure) if s.array == array]

        if array in analytic:
            # Touched-once-by-construction: no uniquing or grouping needed.
            r = ref_idx[0]
            wr = ref_structure[r].is_write_like
            for p in range(processors):
                coords = streams[p][r].coords
                n = int(coords.shape[0])
                if n == 0:
                    continue
                directory.stats.cold_fills += n
                _bulk_account(
                    machine, p, array,
                    n_lines=n,
                    first_read=0 if wr else n,
                    upgrade_mask=np.zeros(n, dtype=bool),
                    reads_total=0 if wr else n,
                    writes_total=n if wr else 0,
                    written=np.full(n, wr, dtype=bool),
                    coords_lines=coords,
                    sweeps=sweeps,
                )
                directory.bulk_install(p, array, coords, modified=wr)
            continue

        # Global line ids for this array across all processors.
        segments = []  # (proc, r, line-coord rows)
        for p in range(processors):
            for r in ref_idx:
                segments.append((p, r, _line_coords(streams[p][r].coords, line_size)))
        all_lines = np.vstack([seg[2] for seg in segments])
        if all_lines.shape[0] == 0:
            continue
        uniq_lines, inv = _unique_rows(all_lines)
        # Split the inverse mapping back into per-(proc, ref) id segments.
        splits = np.cumsum([seg[2].shape[0] for seg in segments])[:-1]
        seg_ids = dict(zip([(p, r) for p, r, _ in segments], np.split(inv, splits)))

        # A line is analytically resolvable when touched by a single
        # processor (any mix of reads/writes) or by nobody's writes.
        touch = np.zeros((processors, uniq_lines.shape[0]), dtype=bool)
        ever_written = np.zeros(uniq_lines.shape[0], dtype=bool)
        for (p, r), ids_seg in seg_ids.items():
            if ids_seg.size:
                touch[p, ids_seg] = True
                if ref_structure[r].is_write_like:
                    ever_written[ids_seg] = True
        bulk = (touch.sum(axis=0) == 1) | ~ever_written

        for p in range(processors):
            ids_parts, wr_parts, order_parts = [], [], []
            for r in ref_idx:
                ids_seg = seg_ids[(p, r)]
                if ids_seg.size == 0:
                    continue
                mask = bulk[ids_seg]
                wr_flag = ref_structure[r].is_write_like
                if mask.any():
                    ids_parts.append(ids_seg[mask])
                    wr_parts.append(np.full(int(mask.sum()), wr_flag, dtype=bool))
                    # Global program order of (iteration n, reference r)
                    # within the processor: n * n_refs + r.
                    order_parts.append(
                        np.flatnonzero(mask).astype(np.int64) * n_refs + r
                    )
                if not mask.all():
                    rows = np.flatnonzero(~mask)
                    elem = streams[p][r].coords[rows]
                    kind = ref_structure[r].kind
                    for it, coord in zip(rows.tolist(), elem.tolist()):
                        residue.append((it, p, r, array, tuple(coord), kind))
            if ids_parts:
                ids_pa = np.concatenate(ids_parts)
                wr_pa = np.concatenate(wr_parts)
                order_pa = np.concatenate(order_parts)
                payloads.append((ids_pa, wr_pa, order_pa))
                payload_meta.append(
                    (p, array, uniq_lines, int((~wr_pa).sum()), int(wr_pa.sum()))
                )

        # Machine-wide cold fills: one per bulk line, however many
        # processors each is shared by (first fetch by *anyone*).
        directory.stats.cold_fills += int(bulk.sum())

        # Install the analytic lines' end state.  A written bulk line is
        # private: its sole toucher ends with it in M.  A read-only bulk
        # line ends in S at every toucher.
        bulk_idx = np.flatnonzero(bulk)
        if bulk_idx.size:
            rows_bulk = uniq_lines[bulk_idx]
            wr_bulk = ever_written[bulk_idx]
            tb = touch[:, bulk_idx]
            for p in range(processors):
                sel = tb[p] & wr_bulk
                if sel.any():
                    directory.bulk_install(p, array, rows_bulk[sel], modified=True)
            ro = ~wr_bulk
            if ro.any():
                directory.bulk_install_shared(array, rows_bulk[ro], tb[:, ro])

    # ---- bulk phase: vectorised first-touch accounting ----------------
    summaries = _run_summaries(payloads, workers)
    for (p, array, uniq_lines, reads_total, writes_total), (
        line_ids,
        first_wr,
        has_write,
    ) in zip(payload_meta, summaries):
        n_lines = int(line_ids.shape[0])
        _bulk_account(
            machine, p, array,
            n_lines=n_lines,
            first_read=n_lines - int(first_wr.sum()),
            upgrade_mask=~first_wr & has_write,
            reads_total=reads_total,
            writes_total=writes_total,
            written=has_write,
            coords_lines=uniq_lines[line_ids],
            sweeps=sweeps,
        )

    # ---- write-shared residue: exact scalar protocol replay -----------
    if interleave == "sequential":
        residue.sort(key=lambda e: (e[1], e[0], e[2]))
    else:  # roundrobin: one iteration per processor per step
        residue.sort(key=lambda e: (e[0], e[1], e[2]))
    events = [(p, array, coords, kind) for _, p, _, array, coords, kind in residue]
    logger.debug(
        "fast engine: %d residue accesses (of %d) replayed exactly",
        len(events),
        sum(s.coords.shape[0] for st_ in streams.values() for s in st_),
    )
    access = machine.access
    for _sweep in range(sweeps):
        for p, array, coords, kind in events:
            access(p, array, coords, kind)
        if check_invariants:
            machine.check()


# ----------------------------------------------------------------------
# Vectorised footprint / sharing measurement (both engines)


def collect_footprints(
    streams: dict[int, list[RefStream]], processors: int
) -> tuple[list[dict[str, int]], dict[str, int]]:
    """Per-processor element footprints and cross-processor sharing.

    Replaces the exact engine's per-event ``set`` accumulation with
    vectorised row uniquing over the batched coordinate arrays;
    identical counts (element granularity, like the spread-dilation
    terms it validates).  Returns ``(footprints, shared)`` with
    ``footprints[p][array]`` the number of distinct elements ``p``
    touches and ``shared[array]`` the number of elements touched by more
    than one processor.
    """
    footprints: list[dict[str, int]] = [dict() for _ in range(processors)]
    shared: dict[str, int] = {}
    arrays = sorted({s.array for st in streams.values() for s in st})
    for array in arrays:
        # One unique pass over (proc, coords) rows gives every processor's
        # distinct-element count; a second over the deduped coords alone
        # gives the multiply-touched elements.
        stacks = []
        for p in range(processors):
            parts = [
                s.coords for s in streams[p] if s.array == array and s.coords.size
            ]
            if parts:
                c = np.vstack(parts)
                stacks.append(
                    np.column_stack([np.full(c.shape[0], p, dtype=np.int64), c])
                )
        if not stacks:
            continue
        tagged, _ = _unique_rows(np.vstack(stacks))
        per_proc = np.bincount(tagged[:, 0], minlength=processors)
        for p in range(processors):
            if per_proc[p]:
                footprints[p][array] = int(per_proc[p])
        _, inv = _unique_rows(tagged[:, 1:])
        shared[array] = int((np.bincount(inv) > 1).sum())
    return footprints, shared
