"""Doall-language frontend (substrate S8).

A small compiler frontend for the paper's loop syntax (Figures 1, 9, 11
and the worked examples), standing in for the Mul-T / Semi-C → WAIF path
of the Alewife compiler (Section 4, Figure 10)::

    Doseq (t, 1, T)
      Doall (i, 1, N)
        Doall (j, 1, N)
          A[i,j] = B[i+j,i-j-1] + B[i+j+4,i-j+3]
        EndDoall
      EndDoall
    EndDoseq

Accepted flourishes from the paper's listings: parenthesised subscripts
``B(i-1,j,k+1)``, implicit coefficients ``C(i,2i,i+2j-1)``, and the
fine-grain-synchronization prefix ``l$C[i,j]`` (also ``1$``, as printed in
Figure 11) whose accesses the coherence system treats as writes
(Appendix A).

Pipeline: :func:`tokenize` → :func:`parse_program` → :func:`lower_program`
→ :class:`repro.core.LoopNest`.  :func:`compile_nest` runs all three.
"""

from .tokens import Token, TokenKind
from .lexer import tokenize
from .ast_nodes import (
    AffineExpr,
    Assign,
    BinOp,
    Const,
    LoopNode,
    Neg,
    Program,
    RefNode,
    Scalar,
    collect_refs,
)
from .parser import parse_program
from .lower import lower_nest, lower_program, compile_nest

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "AffineExpr",
    "Assign",
    "BinOp",
    "Const",
    "Neg",
    "Scalar",
    "collect_refs",
    "LoopNode",
    "Program",
    "RefNode",
    "parse_program",
    "lower_nest",
    "lower_program",
    "compile_nest",
]
