"""Lowering: Doall AST → affine loop-nest IR.

Checks the paper's program assumptions (Section 2.1) and produces the
``(G, a)`` form of every reference:

* the parallel loops form a perfect nest (statements only at the
  innermost level);
* bounds are integers after substituting ``bindings`` (symbolic sizes
  like ``N`` are allowed in the source and resolved here);
* subscripts are affine in the loop indices — coefficients of the
  ``Doall`` indices populate ``G``, coefficients of enclosing ``Doseq``
  indices are rejected (a ``Doseq``-varying subscript would make the
  footprint time-dependent, outside the paper's model), and anything else
  must be bound.
"""

from __future__ import annotations

import numpy as np

from ..core.affine import AccessKind, AffineRef, ArrayAccess
from ..core.loopnest import Loop, LoopNest
from ..exceptions import LoweringError
from ..obs.tracing import span
from .ast_nodes import Assign, LoopNode, Program, RefNode
from .parser import parse_program

__all__ = ["lower_program", "lower_nest", "compile_nest"]


def _eval_bound(expr, bindings: dict[str, int], what: str) -> int:
    try:
        return expr.evaluate(bindings)
    except LoweringError as e:
        raise LoweringError(f"{what}: {e}") from e


def lower_nest(node: LoopNode, bindings: dict[str, int] | None = None) -> LoopNest:
    """Lower one top-level loop to a :class:`LoopNest`."""
    with span("lang.lower", index=node.index):
        return _lower_nest(node, bindings)


def _lower_nest(node: LoopNode, bindings: dict[str, int] | None = None) -> LoopNest:
    bindings = dict(bindings or {})
    seq_loops: list[Loop] = []
    par_loops: list[Loop] = []
    statements: list[Assign] = []

    def walk(n: LoopNode) -> None:
        lo = _eval_bound(n.lower, bindings, f"lower bound of {n.index}")
        hi = _eval_bound(n.upper, bindings, f"upper bound of {n.index}")
        loop = Loop(n.index, lo, hi, parallel=(n.kind == "doall"))
        if n.kind == "doseq":
            if par_loops:
                raise LoweringError(
                    f"Doseq({n.index}) nested inside Doall loops is not supported; "
                    "the paper's Figure 9 form has Doseq outermost",
                    n.line,
                    n.column,
                )
            seq_loops.append(loop)
        else:
            par_loops.append(loop)
        inner_loops = [b for b in n.body if isinstance(b, LoopNode)]
        stmts = [b for b in n.body if isinstance(b, Assign)]
        if inner_loops and stmts:
            raise LoweringError(
                f"loop {n.index} mixes statements and inner loops; "
                "only perfect nests are supported (Section 2.1)",
                n.line,
                n.column,
            )
        if len(inner_loops) > 1:
            raise LoweringError(
                f"loop {n.index} has {len(inner_loops)} inner loops; "
                "only perfect nests are supported",
                n.line,
                n.column,
            )
        for il in inner_loops:
            walk(il)
        statements.extend(stmts)

    walk(node)
    if not par_loops:
        raise LoweringError("nest has no Doall loop to partition", node.line, node.column)
    if not statements:
        raise LoweringError("nest body is empty", node.line, node.column)

    index_names = [l.index for l in par_loops]
    seq_names = {l.index for l in seq_loops}
    accesses: list[ArrayAccess] = []
    for stmt in statements:
        accesses.append(_lower_ref(stmt.lhs, index_names, seq_names, bindings, lhs=True))
        for ref in stmt.rhs_refs:
            accesses.append(_lower_ref(ref, index_names, seq_names, bindings, lhs=False))
    return LoopNest(par_loops, accesses, sequential_loops=seq_loops)


def _lower_ref(
    node: RefNode,
    index_names: list[str],
    seq_names: set[str],
    bindings: dict[str, int],
    *,
    lhs: bool,
) -> ArrayAccess:
    l = len(index_names)
    d = len(node.subscripts)
    g = np.zeros((l, d), dtype=np.int64)
    a = np.zeros(d, dtype=np.int64)
    for c, sub in enumerate(node.subscripts):
        sub = sub.substitute(bindings)
        a[c] = sub.const
        for var, coeff in sub.coeffs:
            if var in seq_names:
                raise LoweringError(
                    f"{node.array}: subscript varies with "
                    f"sequential index {var!r}; outside the paper's model",
                    node.line,
                    node.column,
                )
            if var not in index_names:
                raise LoweringError(
                    f"{node.array}: unbound symbol {var!r} in subscript",
                    node.line,
                    node.column,
                )
            g[index_names.index(var), c] = coeff
    kind = AccessKind.SYNC if node.sync else (AccessKind.WRITE if lhs else AccessKind.READ)
    return ArrayAccess(AffineRef(node.array, g, a), kind)


def lower_program(
    program: Program, bindings: dict[str, int] | None = None
) -> list[LoopNest]:
    """Lower every top-level nest of a parsed program."""
    return [lower_nest(n, bindings) for n in program.nests]


def compile_nest(source: str, bindings: dict[str, int] | None = None) -> LoopNest:
    """Parse + lower a source string containing exactly one loop nest.

    Examples
    --------
    >>> nest = compile_nest('''
    ... Doall (i, 1, N)
    ...   Doall (j, 1, N)
    ...     A[i,j] = B[i,j] + B[i+1,j+3]
    ...   EndDoall
    ... EndDoall
    ... ''', {"N": 100})
    >>> nest.depth
    2
    """
    program = parse_program(source)
    if len(program.nests) != 1:
        raise LoweringError(
            f"expected exactly one top-level nest, found {len(program.nests)}"
        )
    return lower_nest(program.nests[0], bindings)
