"""Token definitions for the Doall language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "KEYWORDS"]


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT = "int"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EQUALS = "="
    SYNC = "l$"           # also lexes '1$' (Figure 11's typeface)
    NEWLINE = "newline"
    EOF = "eof"
    # keywords
    DOALL = "Doall"
    DOSEQ = "Doseq"
    ENDDOALL = "EndDoall"
    ENDDOSEQ = "EndDoseq"


KEYWORDS = {
    "doall": TokenKind.DOALL,
    "doseq": TokenKind.DOSEQ,
    "enddoall": TokenKind.ENDDOALL,
    "enddoseq": TokenKind.ENDDOSEQ,
}


@dataclass(frozen=True)
class Token:
    """A lexeme with 1-based source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def value(self) -> int:
        if self.kind is not TokenKind.INT:
            raise ValueError(f"token {self} has no integer value")
        return int(self.text)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
