"""Lexer for the Doall language.

Line-oriented: newlines are significant (they terminate statements);
``//`` and ``#`` start comments to end of line.  The sync prefix lexes as
one token from either ``l$`` or ``1$`` (the paper's Figure 11 prints the
latter).
"""

from __future__ import annotations

from ..exceptions import ParseError
from .tokens import KEYWORDS, Token, TokenKind

__all__ = ["tokenize"]

_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "=": TokenKind.EQUALS,
}


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens (ending with NEWLINE-collapsed EOF).

    Raises :class:`~repro.exceptions.ParseError` on illegal characters.
    """
    tokens: list[Token] = []
    line_no = 0
    for raw_line in source.splitlines():
        line_no += 1
        line = raw_line
        # comments
        for marker in ("//", "#"):
            pos = line.find(marker)
            if pos >= 0:
                line = line[:pos]
        col = 0
        n = len(line)
        emitted = False
        while col < n:
            ch = line[col]
            if ch in " \t\r":
                col += 1
                continue
            start_col = col + 1
            # sync prefix: l$ or 1$
            if ch in ("l", "1") and col + 1 < n and line[col + 1] == "$":
                tokens.append(Token(TokenKind.SYNC, line[col : col + 2], line_no, start_col))
                col += 2
                emitted = True
                continue
            if ch.isdigit():
                j = col
                while j < n and line[j].isdigit():
                    j += 1
                tokens.append(Token(TokenKind.INT, line[col:j], line_no, start_col))
                col = j
                emitted = True
                continue
            if ch.isalpha() or ch == "_":
                j = col
                while j < n and (line[j].isalnum() or line[j] == "_"):
                    j += 1
                text = line[col:j]
                kind = KEYWORDS.get(text.lower(), TokenKind.IDENT)
                tokens.append(Token(kind, text, line_no, start_col))
                col = j
                emitted = True
                continue
            if ch in _SINGLE:
                tokens.append(Token(_SINGLE[ch], ch, line_no, start_col))
                col += 1
                emitted = True
                continue
            raise ParseError(f"illegal character {ch!r}", line_no, start_col)
        if emitted:
            tokens.append(Token(TokenKind.NEWLINE, "\n", line_no, n + 1))
    tokens.append(Token(TokenKind.EOF, "", line_no + 1, 1))
    return tokens
