"""Recursive-descent parser for the Doall language.

Grammar (newline-terminated statements)::

    program   := nest*
    nest      := loop
    loop      := ("Doall" | "Doseq") "(" IDENT "," expr "," expr ")" NL
                 (loop | assign)* end NL
    end       := "EndDoall" | "EndDoseq"
    assign    := ref "=" rhs NL
    rhs       := term (("+" | "-") term)*
    term      := factor (("*" | "/") factor)*
    factor    := ref | expr-atom | "(" rhs ")"
    ref       := [SYNC] IDENT ("[" expr-list "]" | "(" expr-list ")")
    expr      := affine expression over idents and ints with + - * and
                 implicit products like "2i"

Only the *references* of the right-hand side are retained (the arithmetic
combining them is irrelevant to partitioning).  An identifier followed by
``[`` or ``(`` inside an expression is a reference; a bare identifier is a
scalar/index variable.
"""

from __future__ import annotations

from ..exceptions import ParseError
from .ast_nodes import (
    AffineExpr,
    Assign,
    BinOp,
    Const,
    LoopNode,
    Neg,
    Program,
    RefNode,
    Scalar,
)
from .lexer import tokenize
from .tokens import Token, TokenKind

__all__ = ["parse_program", "Parser"]


class Parser:
    """Token-stream parser; see module docstring for the grammar."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- stream helpers ---------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect(self, kind: TokenKind) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text!r}", tok.line, tok.column
            )
        return self.next()

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.next()

    # -- entry points -----------------------------------------------------
    def parse_program(self) -> Program:
        nests = []
        self.skip_newlines()
        while self.peek().kind is not TokenKind.EOF:
            nests.append(self.parse_loop())
            self.skip_newlines()
        if not nests:
            raise ParseError("empty program", 1, 1)
        return Program(tuple(nests))

    def parse_loop(self) -> LoopNode:
        head = self.peek()
        if head.kind not in (TokenKind.DOALL, TokenKind.DOSEQ):
            raise ParseError(
                f"expected Doall/Doseq, found {head.text!r}", head.line, head.column
            )
        self.next()
        kind = "doall" if head.kind is TokenKind.DOALL else "doseq"
        self.expect(TokenKind.LPAREN)
        index = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.COMMA)
        lower = self.parse_affine()
        self.expect(TokenKind.COMMA)
        upper = self.parse_affine()
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.NEWLINE)
        body: list = []
        self.skip_newlines()
        while True:
            tok = self.peek()
            if tok.kind in (TokenKind.ENDDOALL, TokenKind.ENDDOSEQ):
                self.next()
                if self.peek().kind is TokenKind.NEWLINE:
                    self.next()
                break
            if tok.kind in (TokenKind.DOALL, TokenKind.DOSEQ):
                body.append(self.parse_loop())
            elif tok.kind in (TokenKind.IDENT, TokenKind.SYNC):
                body.append(self.parse_assign())
            elif tok.kind is TokenKind.EOF:
                raise ParseError(
                    f"unterminated {kind} loop opened here", head.line, head.column
                )
            else:
                raise ParseError(
                    f"unexpected {tok.text!r} in loop body", tok.line, tok.column
                )
            self.skip_newlines()
        return LoopNode(kind, index, lower, upper, tuple(body), head.line, head.column)

    # -- statements -------------------------------------------------------
    def parse_assign(self) -> Assign:
        lhs = self.parse_ref()
        self.expect(TokenKind.EQUALS)
        rhs = self.parse_rhs()
        if self.peek().kind is TokenKind.NEWLINE:
            self.next()
        return Assign(lhs, rhs, lhs.line, lhs.column)

    def parse_rhs(self):
        expr = self.parse_rhs_term()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.next()
            expr = BinOp(op.text, expr, self.parse_rhs_term())
        return expr

    def parse_rhs_term(self):
        expr = self.parse_rhs_factor()
        while self.peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op = self.next()
            expr = BinOp(op.text, expr, self.parse_rhs_factor())
        return expr

    def parse_rhs_factor(self):
        tok = self.peek()
        if tok.kind is TokenKind.LPAREN:
            self.next()
            inner = self.parse_rhs()
            self.expect(TokenKind.RPAREN)
            return inner
        if tok.kind is TokenKind.SYNC or (
            tok.kind is TokenKind.IDENT
            and self.peek(1).kind in (TokenKind.LBRACKET, TokenKind.LPAREN)
        ):
            return self.parse_ref()
        if tok.kind is TokenKind.IDENT:
            self.next()
            return Scalar(tok.text)
        if tok.kind is TokenKind.INT:
            self.next()
            return Const(tok.value)
        if tok.kind is TokenKind.MINUS:  # unary minus
            self.next()
            return Neg(self.parse_rhs_factor())
        raise ParseError(f"unexpected {tok.text!r} in expression", tok.line, tok.column)

    def parse_ref(self) -> RefNode:
        sync = False
        tok = self.peek()
        if tok.kind is TokenKind.SYNC:
            sync = True
            self.next()
        name_tok = self.expect(TokenKind.IDENT)
        open_tok = self.peek()
        if open_tok.kind is TokenKind.LBRACKET:
            close = TokenKind.RBRACKET
        elif open_tok.kind is TokenKind.LPAREN:
            close = TokenKind.RPAREN
        else:
            raise ParseError(
                f"expected subscripts after {name_tok.text!r}",
                open_tok.line,
                open_tok.column,
            )
        self.next()
        subs = [self.parse_affine()]
        while self.peek().kind is TokenKind.COMMA:
            self.next()
            subs.append(self.parse_affine())
        self.expect(close)
        return RefNode(name_tok.text, tuple(subs), sync, name_tok.line, name_tok.column)

    # -- affine expressions ------------------------------------------------
    def parse_affine(self) -> AffineExpr:
        expr = self.parse_affine_term()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.next()
            rhs = self.parse_affine_term()
            expr = expr + rhs if op.kind is TokenKind.PLUS else expr - rhs
        return expr

    def parse_affine_term(self) -> AffineExpr:
        expr = self.parse_affine_atom()
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.STAR:
                self.next()
                rhs = self.parse_affine_atom()
                expr = expr.multiply(rhs)
            elif tok.kind is TokenKind.IDENT and self._implicit_product_ok(expr):
                # implicit product "2i" / "2 i": constant followed by ident
                self.next()
                expr = expr.multiply(AffineExpr.variable(tok.text))
            else:
                return expr

    @staticmethod
    def _implicit_product_ok(expr: AffineExpr) -> bool:
        return expr.is_constant()

    def parse_affine_atom(self) -> AffineExpr:
        tok = self.peek()
        if tok.kind is TokenKind.INT:
            self.next()
            return AffineExpr.constant(tok.value)
        if tok.kind is TokenKind.IDENT:
            self.next()
            return AffineExpr.variable(tok.text)
        if tok.kind is TokenKind.MINUS:
            self.next()
            return -self.parse_affine_atom()
        if tok.kind is TokenKind.PLUS:
            self.next()
            return self.parse_affine_atom()
        if tok.kind is TokenKind.LPAREN:
            self.next()
            inner = self.parse_affine()
            self.expect(TokenKind.RPAREN)
            return inner
        raise ParseError(
            f"expected affine expression, found {tok.text!r}", tok.line, tok.column
        )


def parse_program(source: str) -> Program:
    """Parse Doall-language source into a :class:`Program` AST."""
    return Parser(tokenize(source)).parse_program()
