"""AST for the Doall language.

Subscript and bound expressions are *affine forms*: a mapping from
variable name to integer coefficient plus an integer constant
(:class:`AffineExpr`).  Anything non-affine (e.g. ``i*j``) is rejected at
parse time, mirroring the paper's program domain (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import LoweringError

__all__ = [
    "AffineExpr",
    "RefNode",
    "BinOp",
    "Neg",
    "Const",
    "Scalar",
    "collect_refs",
    "Assign",
    "LoopNode",
    "Program",
]


@dataclass(frozen=True)
class AffineExpr:
    """``Σ coeff_v · v + const`` with integer coefficients."""

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def constant(c: int) -> "AffineExpr":
        return AffineExpr((), int(c))

    @staticmethod
    def variable(name: str) -> "AffineExpr":
        return AffineExpr(((name, 1),), 0)

    def coeff_map(self) -> dict[str, int]:
        return dict(self.coeffs)

    def __add__(self, other: "AffineExpr") -> "AffineExpr":
        m = self.coeff_map()
        for v, c in other.coeffs:
            m[v] = m.get(v, 0) + c
        return AffineExpr(
            tuple(sorted((v, c) for v, c in m.items() if c != 0)),
            self.const + other.const,
        )

    def __neg__(self) -> "AffineExpr":
        return AffineExpr(tuple((v, -c) for v, c in self.coeffs), -self.const)

    def __sub__(self, other: "AffineExpr") -> "AffineExpr":
        return self + (-other)

    def scale(self, k: int) -> "AffineExpr":
        return AffineExpr(
            tuple((v, c * k) for v, c in self.coeffs if c * k != 0), self.const * k
        )

    def multiply(self, other: "AffineExpr") -> "AffineExpr":
        """Product, defined only when one factor is constant (affinity)."""
        if not other.coeffs:
            return self.scale(other.const)
        if not self.coeffs:
            return other.scale(self.const)
        raise LoweringError(
            f"non-affine product of {self} and {other}"
        )

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, bindings: dict[str, int]) -> int:
        """Fully evaluate given values for every variable."""
        total = self.const
        for v, c in self.coeffs:
            if v not in bindings:
                raise LoweringError(f"unbound symbol {v!r} in {self}")
            total += c * int(bindings[v])
        return total

    def substitute(self, bindings: dict[str, int]) -> "AffineExpr":
        """Replace any bound variables with their constant values."""
        const = self.const
        keep = []
        for v, c in self.coeffs:
            if v in bindings:
                const += c * int(bindings[v])
            else:
                keep.append((v, c))
        return AffineExpr(tuple(keep), const)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{c}*{v}" for v, c in self.coeffs]
        parts.append(str(self.const))
        return "(" + " + ".join(parts) + ")"


@dataclass(frozen=True)
class RefNode:
    """An array reference ``A[e1, ..., ed]`` with optional sync prefix."""

    array: str
    subscripts: tuple[AffineExpr, ...]
    sync: bool = False
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class BinOp:
    """RHS arithmetic node (``op`` ∈ ``+ - * /``)."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Neg:
    """Unary minus on an RHS subexpression."""

    operand: object


@dataclass(frozen=True)
class Const:
    """Integer literal on the RHS."""

    value: int


@dataclass(frozen=True)
class Scalar:
    """A bare identifier on the RHS (loop index or bound symbol)."""

    name: str


def collect_refs(expr) -> tuple[RefNode, ...]:
    """All array references in an RHS expression tree, left to right."""
    if isinstance(expr, RefNode):
        return (expr,)
    if isinstance(expr, BinOp):
        return collect_refs(expr.left) + collect_refs(expr.right)
    if isinstance(expr, Neg):
        return collect_refs(expr.operand)
    return ()


@dataclass(frozen=True)
class Assign:
    """``lhs = rhs`` with the full RHS expression tree retained (so the
    program can actually be *executed*, not just analysed)."""

    lhs: RefNode
    rhs: object = Const(0)
    line: int = 0
    column: int = 0

    @property
    def rhs_refs(self) -> tuple[RefNode, ...]:
        return collect_refs(self.rhs)


@dataclass(frozen=True)
class LoopNode:
    """A ``Doall``/``Doseq`` level with affine (possibly symbolic) bounds."""

    kind: str  # 'doall' | 'doseq'
    index: str
    lower: AffineExpr
    upper: AffineExpr
    body: tuple = field(default_factory=tuple)  # LoopNode | Assign
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class Program:
    """Top level: a sequence of loop nests (usually one)."""

    nests: tuple[LoopNode, ...]
