"""Placement: embedding the virtual processor grid into the mesh.

Section 4: "The data partitioning and alignment phases make assignments
to virtual processors which must be mapped onto the real machine in order
to minimize memory reference latency.  This is a smaller effect that may
become important in very large machines."

We provide the natural row-major/folded embedding (neighbouring grid
coordinates land on neighbouring mesh nodes) and a seeded random
embedding as the baseline, plus the metric both are judged by: the
average mesh distance between communicating (grid-adjacent) virtual
processors.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import PartitionError
from ..sim.network import MeshNetwork, best_mesh_shape

__all__ = [
    "embed_grid_row_major",
    "embed_grid_random",
    "average_neighbor_distance",
]


def _grid_coords(grid: tuple[int, ...]):
    return list(np.ndindex(*grid))


def embed_grid_row_major(
    grid: tuple[int, ...], mesh_shape: tuple[int, int] | None = None
) -> dict[tuple[int, ...], int]:
    """Map grid coordinate → mesh node, preserving locality.

    For 2-D grids that fit the mesh exactly, coordinate ``(r, c)`` maps to
    mesh node ``(r, c)`` directly; otherwise coordinates are laid out
    row-major in lexicographic order (still strongly local for the
    leading dimension).
    """
    coords = _grid_coords(grid)
    p = len(coords)
    shape = mesh_shape or best_mesh_shape(p)
    if shape[0] * shape[1] < p:
        raise PartitionError(f"mesh {shape} too small for {p} processors")
    if len(grid) == 2 and (grid[0], grid[1]) == shape:
        return {(r, c): r * shape[1] + c for r, c in coords}
    return {coord: k for k, coord in enumerate(coords)}


def embed_grid_random(
    grid: tuple[int, ...], seed: int = 0
) -> dict[tuple[int, ...], int]:
    """Baseline: a seeded random permutation of the row-major embedding."""
    coords = _grid_coords(grid)
    perm = np.random.default_rng(seed).permutation(len(coords))
    return {coord: int(perm[k]) for k, coord in enumerate(coords)}


def average_neighbor_distance(
    grid: tuple[int, ...],
    embedding: dict[tuple[int, ...], int],
    mesh_shape: tuple[int, int] | None = None,
) -> float:
    """Mean mesh hops between grid-adjacent virtual processors.

    Grid-adjacency (±1 along one dimension) is the communication pattern
    induced by nearest-neighbour spreads — the dominant case for the
    paper's stencil-like examples.
    """
    p = len(_grid_coords(grid))
    net = MeshNetwork(p, mesh_shape or best_mesh_shape(p))
    total = 0
    count = 0
    for coord in _grid_coords(grid):
        for dim in range(len(grid)):
            nb = list(coord)
            nb[dim] += 1
            if nb[dim] >= grid[dim]:
                continue
            total += net.distance(embedding[coord], embedding[tuple(nb)])
            count += 1
    return total / count if count else 0.0
