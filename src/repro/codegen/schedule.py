"""Per-processor iteration schedules from a tile + processor grid.

For rectangular tiles the schedule is closed-form: processor with grid
coordinate ``(p_1..p_l)`` runs the box::

    lo_k = space.lower_k + p_k * sides_k
    hi_k = min(lo_k + sides_k - 1, space.upper_k)

— exactly the "simple expressions" the paper wants for efficient code.
Boundary tiles clamp (tiles are equal "except at the boundaries").

General parallelepiped tiles fall back to explicit iteration lists from
:class:`~repro.core.tiles.Tiling`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.loopnest import IterationSpace
from ..core.tiles import ParallelepipedTile, RectangularTile, Tiling
from ..exceptions import PartitionError

__all__ = [
    "TileSchedule",
    "processor_bounds",
    "subdivide_for_cache",
    "blocked_iteration_order",
]


def processor_bounds(
    space: IterationSpace, sides, grid, coord
) -> list[tuple[int, int]] | None:
    """Loop bounds for the processor at grid coordinate ``coord``.

    Returns ``None`` when the coordinate's box is empty (can happen for
    over-provisioned grids at the boundary).
    """
    sides = np.asarray(sides, dtype=np.int64)
    coord = np.asarray(coord, dtype=np.int64)
    lo = space.lower + coord * sides
    hi = np.minimum(lo + sides - 1, space.upper)
    if np.any(lo > space.upper):
        return None
    return [(int(a), int(b)) for a, b in zip(lo, hi)]


@dataclass(frozen=True)
class TileSchedule:
    """Assignment of iterations to ``P`` processors.

    For rectangular tiles with an explicit ``grid``, processors are
    numbered row-major over the grid and bounds are closed-form; otherwise
    tiles are dealt lexicographically (matching
    :func:`repro.sim.trace.assign_tiles_to_processors`).
    """

    space: IterationSpace
    tile: ParallelepipedTile
    processors: int
    grid: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.processors < 1:
            raise PartitionError("need at least one processor")
        if self.grid is not None:
            prod = 1
            for g in self.grid:
                prod *= g
            if prod != self.processors:
                raise PartitionError(
                    f"grid {self.grid} does not multiply to P={self.processors}"
                )
            if not isinstance(self.tile, RectangularTile):
                raise PartitionError("grids apply to rectangular tiles only")

    # ------------------------------------------------------------------
    def grid_coord(self, proc: int) -> tuple[int, ...]:
        """Row-major grid coordinate of a processor."""
        if self.grid is None:
            raise PartitionError("schedule has no processor grid")
        coord = []
        rem = proc
        for g in reversed(self.grid):
            coord.append(rem % g)
            rem //= g
        return tuple(reversed(coord))

    def proc_of_coord(self, coord) -> int:
        if self.grid is None:
            raise PartitionError("schedule has no processor grid")
        p = 0
        for c, g in zip(coord, self.grid):
            p = p * g + int(c)
        return p

    def bounds(self, proc: int) -> list[tuple[int, int]] | None:
        """Closed-form per-processor loop bounds (rectangular grids)."""
        if self.grid is None or not isinstance(self.tile, RectangularTile):
            raise PartitionError("closed-form bounds need a rectangular grid")
        return processor_bounds(
            self.space, self.tile.sides, self.grid, self.grid_coord(proc)
        )

    def iterations(self, proc: int) -> np.ndarray:
        """Explicit ``(N, l)`` iteration array for one processor."""
        if self.grid is not None and isinstance(self.tile, RectangularTile):
            b = self.bounds(proc)
            if b is None:
                return np.empty((0, self.space.depth), dtype=np.int64)
            from .._util import box_points_array

            return box_points_array([x for x, _ in b], [y for _, y in b])
        from ..sim.trace import assign_tiles_to_processors

        tiling = Tiling(self.space, self.tile)
        return assign_tiles_to_processors(tiling, self.processors)[proc]

    def iteration_counts(self) -> list[int]:
        """Iterations per processor (load-balance check)."""
        return [int(self.iterations(p).shape[0]) for p in range(self.processors)]

    def owner_of(self, iteration) -> int:
        """Which processor runs a given iteration."""
        it = np.asarray(iteration, dtype=np.int64)
        if self.grid is not None and isinstance(self.tile, RectangularTile):
            coord = (it - self.space.lower) // self.tile.sides
            coord = np.minimum(coord, np.asarray(self.grid) - 1)
            return self.proc_of_coord(coord)
        from .._util import box_points_array

        tiling = Tiling(self.space, self.tile)
        all_idx = tiling.tile_indices(
            box_points_array(self.space.lower, self.space.upper)
        )
        keys = sorted({tuple(int(x) for x in row) for row in all_idx})
        key = tuple(int(x) for x in tiling.tile_indices(it[None, :])[0])
        return keys.index(key) % self.processors


def subdivide_for_cache(uisets_or_accesses, tile: RectangularTile, capacity: int) -> RectangularTile:
    """Shrink a tile until its cumulative footprint fits a cache.

    Section 2.2: "When caches are small, the optimal loop partition aspect
    ratios do not change, rather, the size of each loop tile executed at
    any given time on the processor must be adjusted so that the data fits
    in the cache."  This helper performs that adjustment: repeatedly halve
    the currently-largest side (preserving the aspect ratio as closely as
    integer sides allow) until the exact cumulative footprint is at most
    ``capacity``.

    Returns the sub-tile; raises :class:`PartitionError` if even a 1-size
    tile does not fit (capacity smaller than one iteration's data).
    """
    from ..core.classify import UISet, partition_references
    from ..core.cumulative import cumulative_footprint_size_exact

    items = list(uisets_or_accesses)
    sets = (
        items
        if items and isinstance(items[0], UISet)
        else partition_references(items)
    )
    if capacity < 1:
        raise PartitionError(f"cache capacity must be >= 1, got {capacity}")
    orig = [int(s) for s in tile.sides]
    sides = list(orig)

    def footprint(sds) -> int:
        t = RectangularTile(sds)
        return sum(cumulative_footprint_size_exact(s, t) for s in sets)

    while footprint(sides) > capacity:
        # Halve the side currently largest *relative to the original
        # aspect ratio*, so the sub-tile keeps the optimizer's proportions
        # as closely as integer sides allow.
        candidates = [i for i in range(len(sides)) if sides[i] > 1]
        if not candidates:
            raise PartitionError(
                f"footprint {footprint(sides)} of a unit tile exceeds "
                f"cache capacity {capacity}"
            )
        k = max(candidates, key=lambda i: sides[i] / orig[i])
        sides[k] = -(-sides[k] // 2)
    return RectangularTile(sides)


def blocked_iteration_order(iterations: np.ndarray, subtile: RectangularTile, origin=None) -> np.ndarray:
    """Reorder a tile's iterations so each sub-tile completes before the
    next begins (the execution order that realises
    :func:`subdivide_for_cache`'s footprint bound on a finite cache).

    ``iterations`` is an ``(N, l)`` array; the result is a permutation of
    its rows, grouped by sub-tile index (lexicographic), iterations within
    a sub-tile kept in their original relative order.
    """
    pts = np.atleast_2d(np.asarray(iterations, dtype=np.int64))
    if pts.shape[0] == 0:
        return pts
    base = pts.min(axis=0) if origin is None else np.asarray(origin, dtype=np.int64)
    idx = (pts - base) // subtile.sides
    # lexsort sorts by the LAST key as primary: original position is the
    # tie-break (stability), sub-tile coordinates the major keys.
    order = np.lexsort((np.arange(pts.shape[0]),) + tuple(idx.T[::-1]))
    return pts[order]
