"""Pseudo-code emission and real execution of Doall programs.

Two consumers:

* :func:`emit_pseudocode` renders the per-processor SPMD loop nest as
  text — the shape of what the Alewife compiler's sequential code
  generator receives ("code for sequential threads with explicit
  synchronization").
* :func:`execute_sequential` / :func:`execute_partitioned` interpret the
  program over numpy arrays, the latter tile-by-tile under a
  :class:`~repro.codegen.schedule.TileSchedule`.  Because every
  ``Doall`` body is, by assumption, race-free up to the sync accumulates
  (which are associative adds), the two must produce identical arrays —
  the codegen correctness test.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import LoweringError
from ..obs.tracing import span
from ..lang.ast_nodes import (
    AffineExpr,
    Assign,
    BinOp,
    Const,
    LoopNode,
    Neg,
    RefNode,
    Scalar,
)
from .schedule import TileSchedule

__all__ = [
    "emit_pseudocode",
    "execute_sequential",
    "execute_partitioned",
    "allocate_arrays",
]


# ---------------------------------------------------------------------------
# Program structure helpers
# ---------------------------------------------------------------------------

def _flatten(node: LoopNode):
    """(sequential loops, parallel loops, statements) of a perfect nest."""
    seq, par, stmts = [], [], []

    def walk(n: LoopNode) -> None:
        (seq if n.kind == "doseq" else par).append(n)
        for b in n.body:
            if isinstance(b, LoopNode):
                walk(b)
            else:
                stmts.append(b)

    walk(node)
    return seq, par, stmts


def _affine_str(e: AffineExpr) -> str:
    parts = []
    for v, c in e.coeffs:
        if c == 1:
            parts.append(v)
        elif c == -1:
            parts.append(f"-{v}")
        else:
            parts.append(f"{c}*{v}")
    if e.const or not parts:
        parts.append(str(e.const))
    s = parts[0]
    for p in parts[1:]:
        s += p if p.startswith("-") else "+" + p
    return s


def _rhs_str(expr) -> str:
    if isinstance(expr, RefNode):
        subs = ",".join(_affine_str(s) for s in expr.subscripts)
        return ("l$" if expr.sync else "") + f"{expr.array}[{subs}]"
    if isinstance(expr, BinOp):
        return f"({_rhs_str(expr.left)} {expr.op} {_rhs_str(expr.right)})"
    if isinstance(expr, Neg):
        return f"(-{_rhs_str(expr.operand)})"
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Scalar):
        return expr.name
    raise LoweringError(f"unknown RHS node {expr!r}")


def emit_pseudocode(
    node: LoopNode,
    schedule: TileSchedule,
    bindings: dict[str, int] | None = None,
    *,
    processors: list[int] | None = None,
) -> str:
    """Per-processor SPMD pseudo-code with concrete tile bounds.

    One block per processor (default: all), each a plain sequential nest
    over its tile's box, mirroring the closed-form bounds of
    :func:`~repro.codegen.schedule.processor_bounds`.
    """
    seq, par, stmts = _flatten(node)
    procs = processors if processors is not None else list(range(schedule.processors))
    with span("codegen.emit", processors=len(procs)):
        out = []
        for p in procs:
            out.append(f"// processor {p}")
            indent = 0
            for sl in seq:
                out.append("  " * indent + f"for {sl.index} = {_affine_str(sl.lower)} "
                           f"to {_affine_str(sl.upper)}  // Doseq")
                indent += 1
            b = schedule.bounds(p)
            if b is None:
                out.append("  " * indent + "// empty tile")
                out.append("")
                continue
            for loop, (lo, hi) in zip(par, b):
                out.append("  " * indent + f"for {loop.index} = {lo} to {hi}")
                indent += 1
            for st in stmts:
                out.append("  " * indent + f"{_rhs_str(st.lhs)} = {_rhs_str(st.rhs)}")
            out.append("")
        return "\n".join(out)


# ---------------------------------------------------------------------------
# Interpretation over numpy arrays
# ---------------------------------------------------------------------------

def array_index_ranges(node: LoopNode, bindings: dict[str, int]):
    """Per-array (min, max) subscript values over the whole iteration space.

    Used to size backing arrays: the interpreter stores arrays as numpy
    with an origin shift so negative/offset subscripts work.
    """
    seq, par, stmts = _flatten(node)
    env_lo: dict[str, int] = dict(bindings)
    env_hi: dict[str, int] = dict(bindings)
    for loop in seq + par:
        env_lo[loop.index] = loop.lower.evaluate(bindings)
        env_hi[loop.index] = loop.upper.evaluate(bindings)
    ranges: dict[str, list[tuple[int, int]]] = {}
    refs: list[RefNode] = []
    for st in stmts:
        refs.append(st.lhs)
        refs.extend(st.rhs_refs)
    for ref in refs:
        dims = ranges.setdefault(
            ref.array, [(np.iinfo(np.int64).max, np.iinfo(np.int64).min)] * len(ref.subscripts)
        )
        if len(dims) != len(ref.subscripts):
            raise LoweringError(f"array {ref.array} used with inconsistent rank")
        for k, sub in enumerate(ref.subscripts):
            # Affine => extremes at interval endpoints per variable.
            lo = hi = sub.const
            for v, c in sub.coeffs:
                if v not in env_lo:
                    raise LoweringError(f"unbound symbol {v!r}")
                a, b = c * env_lo[v], c * env_hi[v]
                lo += min(a, b)
                hi += max(a, b)
            cur = dims[k]
            dims[k] = (min(cur[0], lo), max(cur[1], hi))
    return ranges


def allocate_arrays(
    node: LoopNode, bindings: dict[str, int], *, fill: str = "index"
) -> dict[str, "OffsetArray"]:
    """Allocate an :class:`OffsetArray` per array, sized to the program.

    ``fill='index'`` initialises element ``x`` at coords ``c`` to a
    deterministic value derived from ``c`` (so reads of never-written
    elements are reproducible); ``'zeros'`` zero-fills.
    """
    arrays = {}
    for name, dims in array_index_ranges(node, bindings).items():
        lower = tuple(lo for lo, _ in dims)
        shape = tuple(hi - lo + 1 for lo, hi in dims)
        arr = OffsetArray(name, lower, shape)
        if fill == "index":
            arr.fill_with_coordinates()
        arrays[name] = arr
    return arrays


class OffsetArray:
    """A numpy array indexed with the program's (possibly offset) coords."""

    def __init__(self, name: str, lower: tuple[int, ...], shape: tuple[int, ...]):
        self.name = name
        self.lower = np.asarray(lower, dtype=np.int64)
        self.data = np.zeros(shape, dtype=np.float64)

    def fill_with_coordinates(self) -> None:
        """Deterministic pseudo-data: a small affine hash of the coords."""
        grids = np.meshgrid(
            *[np.arange(lo, lo + s) for lo, s in zip(self.lower, self.data.shape)],
            indexing="ij",
        )
        total = np.zeros(self.data.shape)
        for k, g in enumerate(grids):
            total += (k + 1) * 0.0137 * g
        self.data = np.sin(total) + 0.5

    def _key(self, coords):
        idx = tuple(int(c - lo) for c, lo in zip(coords, self.lower))
        return idx

    def get(self, coords) -> float:
        return float(self.data[self._key(coords)])

    def set(self, coords, value: float) -> None:
        self.data[self._key(coords)] = value

    def copy(self) -> "OffsetArray":
        out = OffsetArray(self.name, tuple(self.lower), self.data.shape)
        out.data = self.data.copy()
        return out


def _eval_rhs(expr, env: dict[str, int], arrays: dict[str, OffsetArray]) -> float:
    if isinstance(expr, RefNode):
        coords = tuple(s.evaluate(env) for s in expr.subscripts)
        return arrays[expr.array].get(coords)
    if isinstance(expr, BinOp):
        a = _eval_rhs(expr.left, env, arrays)
        b = _eval_rhs(expr.right, env, arrays)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            return a / b
        raise LoweringError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Neg):
        return -_eval_rhs(expr.operand, env, arrays)
    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, Scalar):
        if expr.name not in env:
            raise LoweringError(f"unbound scalar {expr.name!r}")
        return float(env[expr.name])
    raise LoweringError(f"unknown RHS node {expr!r}")


def _run_block(stmts, loops_lo_hi, names, env, arrays) -> None:
    """Execute the statement list over a box of iterations (recursive)."""
    if not loops_lo_hi:
        for st in stmts:
            value = _eval_rhs(st.rhs, env, arrays)
            coords = tuple(s.evaluate(env) for s in st.lhs.subscripts)
            arrays[st.lhs.array].set(coords, value)
        return
    (lo, hi), rest = loops_lo_hi[0], loops_lo_hi[1:]
    name = names[0]
    for v in range(lo, hi + 1):
        env[name] = v
        _run_block(stmts, rest, names[1:], env, arrays)
    del env[name]


def execute_sequential(
    node: LoopNode, bindings: dict[str, int], arrays: dict[str, OffsetArray] | None = None
) -> dict[str, OffsetArray]:
    """Reference interpreter: run the nest in plain loop order."""
    seq, par, stmts = _flatten(node)
    if arrays is None:
        arrays = allocate_arrays(node, bindings)
    env = dict(bindings)
    loops = seq + par
    bounds = [(l.lower.evaluate(bindings), l.upper.evaluate(bindings)) for l in loops]
    _run_block(stmts, bounds, [l.index for l in loops], env, arrays)
    return arrays


def execute_partitioned(
    node: LoopNode,
    bindings: dict[str, int],
    schedule: TileSchedule,
    arrays: dict[str, OffsetArray] | None = None,
) -> dict[str, OffsetArray]:
    """Run the nest tile-by-tile (processors in order, tiles as scheduled).

    Must match :func:`execute_sequential` for any legal ``Doall`` program
    — that is the test.
    """
    with span("codegen.execute_partitioned", processors=schedule.processors):
        return _execute_partitioned(node, bindings, schedule, arrays)


def _execute_partitioned(
    node: LoopNode,
    bindings: dict[str, int],
    schedule: TileSchedule,
    arrays: dict[str, OffsetArray] | None = None,
) -> dict[str, OffsetArray]:
    seq, par, stmts = _flatten(node)
    if arrays is None:
        arrays = allocate_arrays(node, bindings)
    env = dict(bindings)
    seq_bounds = [(l.lower.evaluate(bindings), l.upper.evaluate(bindings)) for l in seq]

    def run_parallel_part() -> None:
        for p in range(schedule.processors):
            its = schedule.iterations(p)
            names = [l.index for l in par]
            for row in its:
                for name, v in zip(names, row):
                    env[name] = int(v)
                for st in stmts:
                    value = _eval_rhs(st.rhs, env, arrays)
                    coords = tuple(s.evaluate(env) for s in st.lhs.subscripts)
                    arrays[st.lhs.array].set(coords, value)
            for name in names:
                env.pop(name, None)

    def run_seq(level: int) -> None:
        if level == len(seq):
            run_parallel_part()
            return
        lo, hi = seq_bounds[level]
        for v in range(lo, hi + 1):
            env[seq[level].index] = v
            run_seq(level + 1)
        del env[seq[level].index]

    run_seq(0)
    return arrays
