"""Data partitioning and alignment (Section 4).

"Arrays must be distributed among the processors such that memory
references that miss in the cache go to the local memory rather than
across the network to another node.  This is accomplished by partitioning
arrays with the same aspect ratios as the iterations of loops that
reference them, and then assigning corresponding loop and data partitions
to the same processor."

Implementation for rectangular loop partitions:

1. For each array, pick its *anchor class* — the uniformly intersecting
   class with the most members (ties: first).  Its base reference maps the
   loop tile into the data space.
2. The data tile for the array is the image of the loop-tile box under
   the base reference's ``G`` (an axis-aligned box when the reduced ``G``
   is a scaled permutation; otherwise the bounding box of the image —
   still correct, just coarser alignment).
3. Each data tile is homed on the processor that runs the corresponding
   loop tile (identical grid coordinates).

The result is a :class:`~repro.sim.memory.AddressMap` the simulator can
use; benchmark E12 measures the local-vs-remote miss split with and
without alignment.
"""

from __future__ import annotations

import numpy as np

from ..core.classify import partition_references
from ..core.loopnest import LoopNest
from ..core.tiles import RectangularTile
from ..exceptions import PartitionError
from ..sim.memory import AddressMap
from .schedule import TileSchedule

__all__ = ["array_extents", "aligned_address_map"]


def array_extents(nest: LoopNest, array: str) -> tuple[np.ndarray, np.ndarray]:
    """(lower, upper) element-coordinate bounds of ``array`` in the nest.

    Affine images of a box attain extremes at corners, computed per
    subscript from the coefficient signs.
    """
    refs = [a.ref for a in nest.accesses_to(array)]
    if not refs:
        raise PartitionError(f"array {array!r} not referenced by the nest")
    lo_it, hi_it = nest.space.lower, nest.space.upper
    lows, highs = [], []
    for r in refs:
        g = r.g
        lo = r.offset.astype(np.int64).copy()
        hi = r.offset.astype(np.int64).copy()
        for c in range(r.array_dim):
            for row in range(r.loop_depth):
                coeff = int(g[row, c])
                if coeff == 0:
                    continue
                a = coeff * int(lo_it[row])
                b = coeff * int(hi_it[row])
                lo[c] += min(a, b)
                hi[c] += max(a, b)
        lows.append(lo)
        highs.append(hi)
    return np.min(lows, axis=0), np.max(highs, axis=0)


def _anchor_ref(nest: LoopNest, array: str):
    sets = [s for s in partition_references(nest.accesses) if s.array == array]
    sets.sort(key=lambda s: -s.size)
    return sets[0].base_ref()


def aligned_address_map(
    nest: LoopNest,
    tile: RectangularTile,
    grid: tuple[int, ...],
    processors: int,
    *,
    proc_of_coord=None,
) -> AddressMap:
    """Build the aligned data partition for all arrays of the nest.

    ``proc_of_coord`` maps a loop-grid coordinate to a processor number
    (defaults to row-major — matching :class:`TileSchedule`); pass the
    placement embedding here to co-locate loop and data tiles on the
    physical mesh.
    """
    if len(grid) != nest.depth:
        raise PartitionError(f"grid {grid} does not match nest depth {nest.depth}")
    sched = TileSchedule(nest.space, tile, processors, grid=tuple(grid))
    if proc_of_coord is None:
        proc_of_coord = sched.proc_of_coord

    am = AddressMap(processors, default_policy="interleave")
    for array in nest.arrays():
        ref = _anchor_ref(nest, array).drop_zero_columns()
        full_ref = _anchor_ref(nest, array)
        d = full_ref.array_dim
        lo_a, _hi_a = array_extents(nest, array)
        # Data-tile sides: image of the loop tile box per array dimension.
        sides = np.ones(d, dtype=np.int64)
        dim_of_loop = {}
        g = full_ref.g
        for c in range(d):
            span = 0
            for row in range(full_ref.loop_depth):
                span += abs(int(g[row, c])) * (int(tile.sides[row]) - 1)
            sides[c] = max(span + 1, 1)
            # Which loop dim dominates this array dim (for grid mapping)?
            rows = [r for r in range(full_ref.loop_depth) if g[r, c] != 0]
            dim_of_loop[c] = rows[0] if rows else None
        # Grid over the array: one block per loop-grid coordinate along the
        # mapped dimensions; unmapped array dims get a single block.
        gshape = tuple(
            int(grid[dim_of_loop[c]]) if dim_of_loop[c] is not None else 1
            for c in range(d)
        )
        g2n = np.zeros(gshape, dtype=np.int64)
        for idx in np.ndindex(*gshape):
            coord = [0] * nest.depth
            for c in range(d):
                if dim_of_loop[c] is not None:
                    coord[dim_of_loop[c]] = idx[c]
            g2n[idx] = proc_of_coord(tuple(coord))
        am.set_block_map(array, lo_a, sides, g2n)
    return am
