"""Code generation, data partitioning, alignment and placement (S9).

The three distribution analyses of Section 4:

* **Loop partitioning** → :mod:`repro.codegen.schedule` turns a chosen
  tile + processor grid into concrete per-processor loop bounds.
* **Data partitioning and alignment** → :mod:`repro.codegen.align` cuts
  each array with the same aspect ratio as the loop tiles and homes each
  data tile on the processor running the corresponding loop tile.
* **Placement** → :mod:`repro.codegen.placement` embeds the virtual
  processor grid into the physical mesh.

:mod:`repro.codegen.emit` renders per-processor pseudo-code (the paper's
"easy to produce efficient code when the tile boundaries are simple
expressions") and — via the retained RHS expression trees — actually
*executes* programs sequentially or tile-parallel over numpy arrays, so
tests can verify that partitioned execution computes the same values.
"""

from .schedule import (
    TileSchedule,
    blocked_iteration_order,
    processor_bounds,
    subdivide_for_cache,
)
from .emit import emit_pseudocode, execute_sequential, execute_partitioned, allocate_arrays
from .align import aligned_address_map, array_extents
from .placement import embed_grid_row_major, embed_grid_random, average_neighbor_distance

__all__ = [
    "TileSchedule",
    "processor_bounds",
    "subdivide_for_cache",
    "blocked_iteration_order",
    "emit_pseudocode",
    "execute_sequential",
    "execute_partitioned",
    "allocate_arrays",
    "aligned_address_map",
    "array_extents",
    "embed_grid_row_major",
    "embed_grid_random",
    "average_neighbor_distance",
]
