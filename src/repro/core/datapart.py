"""Data partitioning for local-memory multicomputers (footnote 2).

The loop-partitioning analysis assumes caches dynamically replicate data,
so a class's traffic is governed by the *spread* ``â`` (max − min of the
offsets): intermediate copies come along for free.  "For data
partitioning, however, the formulation must be modified slightly.
Because data partitioning assumes that data from other memory modules is
not dynamically copied locally ..., we replace the max − min formulation
by the cumulative spread ``a⁺``" whose ``k``-th component is
``Σ_r |a_{r,k} − med_r(a_{r,k})|``.  "The rest of our framework applies
to data partitioning if â is replaced by a⁺."

This module implements exactly that substitution:

* :func:`data_cost_coefficients` — per-loop-dimension coefficients using
  ``a⁺`` (each class's ``u⁺`` solves ``a⁺ = u⁺·G``);
* :func:`optimize_rectangular_data` — the Lagrange + grid search of
  :func:`repro.core.optimize.optimize_rectangular` under the data
  objective;
* :func:`median_reference` — the class member the data tile should align
  with (the median offsets minimise the total remote volume).

``â`` and ``a⁺`` coincide for classes of ≤ 3 references (the median
absorbs the middle member), so the paper's examples do not distinguish
them; classes with ≥ 4 spread-out references do — see
``benchmarks/test_e15_ablations.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import exact_solve, int_rank
from ..exceptions import OptimizationError, SingularMatrixError
from .classify import UISet, partition_references
from .loopnest import IterationSpace
from .optimize import RectOptResult, _continuous_lagrange, factorizations
from .spread import cumulative_spread_vector
from .tiles import RectangularTile

__all__ = [
    "data_spread_coefficients",
    "data_cost_coefficients",
    "optimize_rectangular_data",
    "median_reference",
]


def _as_uisets(accesses_or_sets) -> list[UISet]:
    items = list(accesses_or_sets)
    if items and isinstance(items[0], UISet):
        return items
    return partition_references(items)


def _reduced_offsets(uiset: UISet):
    from .cumulative import _reduced

    return _reduced(uiset)


def data_spread_coefficients(uiset: UISet) -> np.ndarray:
    """``u⁺`` with ``a⁺ = u⁺·G′`` (absolute values), cf. Theorem 4.

    Same mechanics as :func:`repro.core.cumulative.spread_coefficients`
    but fed the cumulative spread instead of the max−min spread.
    """
    g, offsets = _reduced_offsets(uiset)
    if int_rank(g) < g.shape[0]:
        raise SingularMatrixError(
            "data spread coefficients require independent rows of G"
        )
    a_plus = cumulative_spread_vector(offsets)
    sol = exact_solve(g, a_plus)
    if sol is None:  # pragma: no cover - a⁺ lies in the row space
        raise SingularMatrixError("cumulative spread not in the row space of G")
    return np.abs(np.array([float(c) for c in sol]))


def data_cost_coefficients(uisets, depth: int) -> np.ndarray:
    """Per-loop-dimension data-partitioning coefficients ``Σ u⁺_i``."""
    a = np.zeros(depth, dtype=float)
    for s in _as_uisets(uisets):
        if s.size == 1:
            continue
        if not np.any(cumulative_spread_vector(s.offsets)):
            continue
        try:
            a += data_spread_coefficients(s)
        except SingularMatrixError as e:
            raise OptimizationError(
                f"class {s!r} has no data-spread coefficients: {e}"
            ) from e
    return a


def median_reference(uiset: UISet):
    """The member whose offsets are closest to the per-dimension medians.

    Aligning each array's data tile with this reference minimises the
    total remote access volume of the class (the defining property of the
    ``a⁺`` formulation).
    """
    offs = uiset.offsets.astype(float)
    med = np.median(offs, axis=0)
    dist = np.abs(offs - med).sum(axis=1)
    return uiset.refs[int(np.argmin(dist))]


def optimize_rectangular_data(
    accesses_or_sets,
    space: IterationSpace,
    processors: int,
) -> RectOptResult:
    """Rectangular tile optimization under the data-partitioning objective.

    Identical structure to :func:`repro.core.optimize.optimize_rectangular`
    with ``â → a⁺``: minimise ``Σ_i A⁺_i · V / s_i`` s.t. ``Π s_i = V``,
    then integerise against processor-grid factorisations scored by the
    same linearised objective (remote volume has no exact cached-union to
    fall back on — every extra copy pays).
    """
    uisets = _as_uisets(accesses_or_sets)
    l = space.depth
    if processors < 1 or processors > space.volume:
        raise OptimizationError(
            f"cannot split {space.volume} iterations over {processors} processors"
        )
    volume = float(space.volume) / float(processors)
    a = data_cost_coefficients(uisets, l)
    if not np.any(a):
        a = np.ones(l)
    cont = _continuous_lagrange(
        np.where(a > 0, a, 0.0), space.extents, volume
    )

    def score(sides) -> float:
        total = 0.0
        prod_all = float(np.prod([float(s) for s in sides]))
        for i in range(l):
            total += a[i] * prod_all / float(sides[i])
        return total

    best_key = None
    best = None
    ints = space.extents
    for grid in factorizations(processors, l):
        if any(p > n for p, n in zip(grid, ints)):
            continue
        sides = tuple(-(-int(n) // int(p)) for n, p in zip(ints, grid))
        key = (score(sides), grid)
        if best_key is None or key < best_key:
            best_key = key
            best = (grid, sides)
    if best is None:
        raise OptimizationError(
            f"no feasible processor grid: P={processors}, extents={ints.tolist()}"
        )
    grid, sides = best
    return RectOptResult(
        tile=RectangularTile(sides),
        grid=grid,
        predicted_cost=best_key[0],
        continuous_sides=cont,
        coefficients=a,
    )
