"""Traffic cost model assembled from footprints (Sections 3.3, 3.6).

For the cache + uniform-access-memory system of Figure 2:

* **cold misses** per tile = the cumulative footprint ``|F(A)|`` summed
  over arrays (Section 3.3: "The number of cache misses with respect to
  the array A is |F(A)|").
* **coherence / boundary traffic** = the part of the footprint shared with
  other tiles.  For a uniformly intersecting class this is the cumulative
  footprint minus one member footprint — exactly the ``Σ u_i Π_{j≠i}``
  dilation terms that survive when ``|det L|`` is pinned by load balancing
  (the Figure 9 ``Doseq`` argument: the volume term drops out and "the
  optimization process minimizes the volume of coherence traffic").
"""

from __future__ import annotations

from dataclasses import dataclass

from .classify import UISet, partition_references
from .cumulative import (
    cumulative_footprint_rect,
    cumulative_footprint_size,
    cumulative_footprint_size_exact,
)
from .footprint import footprint_size
from .loopnest import LoopNest
from .tiles import ParallelepipedTile, RectangularTile
from ..exceptions import SingularMatrixError

__all__ = ["ClassTraffic", "TrafficEstimate", "estimate_traffic"]


@dataclass(frozen=True)
class ClassTraffic:
    """Predicted per-tile traffic of one uniformly intersecting class."""

    uiset: UISet
    footprint: float
    single_footprint: float

    @property
    def boundary(self) -> float:
        """Data shared with neighbouring tiles (dilation terms)."""
        return max(self.footprint - self.single_footprint, 0.0)


@dataclass(frozen=True)
class TrafficEstimate:
    """Per-tile traffic prediction for a loop partition.

    Attributes
    ----------
    classes:
        Per-class breakdown in classification order.
    tile_iterations:
        Iterations per tile (the load-balance constant).
    """

    classes: tuple[ClassTraffic, ...]
    tile_iterations: float

    @property
    def cold_misses(self) -> float:
        """First-touch misses per tile = total cumulative footprint."""
        return sum(c.footprint for c in self.classes)

    @property
    def coherence_traffic(self) -> float:
        """Per-sweep steady-state traffic (Figure 9 regime)."""
        return sum(c.boundary for c in self.classes)

    def by_array(self) -> dict[str, float]:
        """Cumulative footprint aggregated per array name."""
        out: dict[str, float] = {}
        for c in self.classes:
            out[c.uiset.array] = out.get(c.uiset.array, 0.0) + c.footprint
        return out


def _class_footprint(s: UISet, tile: ParallelepipedTile, method: str) -> float:
    if method == "exact":
        return float(cumulative_footprint_size_exact(s, tile))
    if method == "theorem4":
        if isinstance(tile, RectangularTile):
            try:
                return cumulative_footprint_rect(s, tile)
            except SingularMatrixError:
                return float(cumulative_footprint_size_exact(s, tile))
        method = "theorem2"
    if method == "theorem2":
        try:
            return cumulative_footprint_size(s, tile)
        except SingularMatrixError:
            return float(cumulative_footprint_size_exact(s, tile))
    raise ValueError(f"unknown method {method!r}")


def estimate_traffic(
    nest_or_sets,
    tile: ParallelepipedTile,
    *,
    method: str = "exact",
) -> TrafficEstimate:
    """Predict per-tile traffic for a partition.

    ``nest_or_sets`` is a :class:`LoopNest` (classified here) or an
    iterable of :class:`UISet`.  ``method`` selects the footprint
    evaluator: ``'exact'`` (default), ``'theorem4'`` (rectangular closed
    form, falling back as the paper prescribes) or ``'theorem2'``
    (determinant approximation).
    """
    if isinstance(nest_or_sets, LoopNest):
        sets = partition_references(nest_or_sets.accesses)
    else:
        sets = list(nest_or_sets)
        if sets and not isinstance(sets[0], UISet):
            sets = partition_references(sets)
    classes = []
    for s in sets:
        fp = _class_footprint(s, tile, method)
        single = float(footprint_size(s.base_ref(), tile))
        classes.append(ClassTraffic(uiset=s, footprint=fp, single_footprint=single))
    if isinstance(tile, RectangularTile):
        iters = float(tile.iterations)
    else:
        iters = float(tile.volume)
    return TrafficEstimate(classes=tuple(classes), tile_iterations=iters)
