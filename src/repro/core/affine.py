"""Affine array references ``A[i·G + a]`` (Section 2.1).

The paper writes an array reference in a loop nest of depth ``l`` over a
``d``-dimensional array as the pair ``(G, a)`` with ``G`` an ``l×d``
integer matrix and ``a`` an integer offset vector of length ``d``
(Equation 1)::

    g(i) = i·G + a          # i a row vector of loop indices

Example 1: ``A(i3+2, 5, i2-1, 4)`` in a triply nested loop is ::

    G = [[0,0,0,0],
         [0,0,1,0],
         [1,0,0,0]],   a = (2, 5, -1, 4)

Columns of ``G`` that are entirely zero correspond to subscripts that do
not vary with the loop — the paper drops them and treats the array as
lower-dimensional (:meth:`AffineRef.drop_zero_columns`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .._util import as_int_matrix, as_int_vector
from ..lattice.unimodular import (
    is_one_to_one,
    is_onto,
    is_unimodular,
    maximal_independent_columns,
    select_unimodular_columns,
)

__all__ = ["AffineRef", "AccessKind", "ArrayAccess"]


class AccessKind(enum.Enum):
    """How a reference touches memory.

    ``SYNC`` models the fine-grain synchronizing accumulates of Appendix A
    (the ``l$`` references): "Such synchronizing reads or writes are both
    treated as writes by the coherence system."
    """

    READ = "read"
    WRITE = "write"
    SYNC = "sync"

    @property
    def is_write_like(self) -> bool:
        return self is not AccessKind.READ


@dataclass(frozen=True)
class AffineRef:
    """An affine array reference ``array[i·G + a]``.

    Parameters
    ----------
    array:
        Array name; references to different arrays never alias (the paper
        assumes aliasing has been resolved).
    g:
        ``(l, d)`` integer matrix mapping iteration row-vectors to data
        row-vectors.
    offset:
        Length-``d`` integer offset vector ``a``.
    """

    array: str
    g: np.ndarray
    offset: np.ndarray

    def __init__(self, array: str, g, offset):
        g = as_int_matrix(g, name="G")
        offset = as_int_vector(offset, name="offset")
        if offset.shape[0] != g.shape[1]:
            raise ValueError(
                f"offset length {offset.shape[0]} != array dimension {g.shape[1]}"
            )
        object.__setattr__(self, "array", str(array))
        object.__setattr__(self, "g", g)
        object.__setattr__(self, "offset", offset)

    # -- basic shape ----------------------------------------------------
    @property
    def loop_depth(self) -> int:
        """``l``, the loop nesting depth the reference lives in."""
        return int(self.g.shape[0])

    @property
    def array_dim(self) -> int:
        """``d``, the dimension of the referenced array."""
        return int(self.g.shape[1])

    def __call__(self, iteration) -> np.ndarray:
        """Data point touched by ``iteration``: ``i·G + a``."""
        i = as_int_vector(iteration, name="iteration")
        if i.shape[0] != self.loop_depth:
            raise ValueError(
                f"iteration has length {i.shape[0]}, expected {self.loop_depth}"
            )
        return i @ self.g + self.offset

    def map_points(self, iterations: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`__call__` for an ``(N, l)`` iteration array."""
        return np.asarray(iterations, dtype=np.int64) @ self.g + self.offset

    # -- structural predicates (Lemmas 1-2, Theorem 1) -------------------
    def is_one_to_one(self) -> bool:
        """Lemma 1: injective iff the rows of ``G`` are independent."""
        return is_one_to_one(self.g)

    def is_onto(self) -> bool:
        """Lemma 2: onto iff columns independent and maximal-minor gcd 1."""
        return is_onto(self.g)

    def is_unimodular(self) -> bool:
        """Theorem 1's sufficient condition for ``LG`` = footprint."""
        return is_unimodular(self.g)

    # -- column reductions (Example 1, Section 3.4.1, Example 7) ---------
    def zero_columns(self) -> tuple[int, ...]:
        """Indices of all-zero columns of ``G`` (loop-invariant subscripts)."""
        return tuple(int(c) for c in np.nonzero(~self.g.any(axis=0))[0])

    def drop_zero_columns(self) -> "AffineRef":
        """Treat the array as lower-dimensional by dropping constant
        subscripts (Example 1: "we can ignore those columns").

        The footprint size is unchanged: constant subscripts contribute a
        single coordinate value.
        """
        keep = [c for c in range(self.array_dim) if self.g[:, c].any()]
        if len(keep) == self.array_dim:
            return self
        return AffineRef(self.array, self.g[:, keep], self.offset[keep])

    def reduced_columns(self) -> tuple[int, ...]:
        """Column selection used for footprint computation (Section 3.4.1).

        Prefers a selection making the reduced matrix unimodular (the
        paper's G′); falls back to the greedy maximal independent set.
        """
        uni = select_unimodular_columns(self.g)
        if uni is not None:
            return uni
        return maximal_independent_columns(self.g)

    def reduce_columns(self, cols=None) -> "AffineRef":
        """The lower-dimensional reference ``(G′, a′)`` keeping ``cols``.

        Exactness argument (used by the cumulative-footprint engine): every
        dropped column of ``G`` is a linear combination of the kept ones,
        so on any single coset of the row lattice of ``G`` the kept
        coordinates determine the dropped ones — the reduction preserves
        footprint cardinalities and intersections *within a uniformly
        intersecting class*.
        """
        if cols is None:
            cols = self.reduced_columns()
        cols = list(cols)
        return AffineRef(self.array, self.g[:, cols], self.offset[cols])

    # -- display ---------------------------------------------------------
    def subscript_strings(self, index_names=None) -> list[str]:
        """Human-readable subscript expressions, e.g. ``['i+j', 'j-1']``."""
        l, d = self.g.shape
        names = index_names or [f"i{k+1}" for k in range(l)]
        out = []
        for c in range(d):
            terms = []
            for r in range(l):
                coeff = int(self.g[r, c])
                if coeff == 0:
                    continue
                if coeff == 1:
                    terms.append(("+", names[r]))
                elif coeff == -1:
                    terms.append(("-", names[r]))
                else:
                    sign = "+" if coeff > 0 else "-"
                    terms.append((sign, f"{abs(coeff)}*{names[r]}"))
            a = int(self.offset[c])
            if a != 0 or not terms:
                terms.append(("+" if a >= 0 else "-", str(abs(a))))
            expr = ""
            for k, (sign, text) in enumerate(terms):
                if k == 0:
                    expr = text if sign == "+" else f"-{text}"
                else:
                    expr += sign + text
            out.append(expr)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.array}[{', '.join(self.subscript_strings())}]"

    def __hash__(self) -> int:
        return hash((self.array, self.g.tobytes(), self.g.shape, self.offset.tobytes()))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AffineRef)
            and self.array == other.array
            and self.g.shape == other.g.shape
            and bool(np.all(self.g == other.g))
            and bool(np.all(self.offset == other.offset))
        )


@dataclass(frozen=True)
class ArrayAccess:
    """A reference together with its access kind (read / write / sync)."""

    ref: AffineRef
    kind: AccessKind = AccessKind.READ

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = {"read": "", "write": "=", "sync": "l$"}[self.kind.value]
        return f"{tag}{self.ref!r}"
