"""Iteration-space tiles and tilings (Definitions 1-2, Propositions 2-3).

A hyperparallelepiped tile is defined in the paper by bounding hyperplanes
``(H, γ, λ)``; the tile at the origin is equivalently described by the
matrix ``L = Λ·(H⁻¹)ᵀ`` whose *rows are the edge vectors* of the tile
(Definition 2).  We take ``L`` as primary:

* an iteration ``i`` lies in the closed tile at the origin iff
  ``i = f·L`` with ``0 ≤ f_j ≤ 1``;
* homogeneous tiling assigns ``i`` to tile index ``k = ⌊i·L⁻¹⌋``
  (half-open tiles, so every iteration belongs to exactly one tile — the
  paper's closed tiles share boundaries, a set of measure zero it
  approximates away; Proposition 2).

Rectangular tiles (``H = I``, ``L = Λ``, Example 4) are the special case
used by the implemented Alewife compiler and by Theorem 4; we expose them
with explicit ``sides`` (iterations per dimension, ``λ_j + 1`` in
Proposition 3) to keep the ubiquitous off-by-one explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from .._util import (
    as_int_matrix,
    as_int_vector,
    box_points_array,
    exact_inverse,
    int_det,
)
from ..exceptions import SingularMatrixError
from .loopnest import IterationSpace

__all__ = ["ParallelepipedTile", "RectangularTile", "Tiling"]


@dataclass(frozen=True)
class ParallelepipedTile:
    """The tile at the origin of a hyperparallelepiped partition.

    ``l_matrix`` is the integer ``L`` of Definition 2 (rows = edge
    vectors).  Must be nonsingular.
    """

    l_matrix: np.ndarray

    def __init__(self, l_matrix):
        lm = as_int_matrix(l_matrix, name="L")
        if lm.shape[0] != lm.shape[1]:
            raise ValueError(f"L must be square, got {lm.shape}")
        if int_det(lm) == 0:
            raise SingularMatrixError("tile matrix L is singular")
        object.__setattr__(self, "l_matrix", lm)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return int(self.l_matrix.shape[0])

    @property
    def volume(self) -> int:
        """``|det L|`` — iterations per tile up to boundary terms (Prop 2)."""
        return abs(int_det(self.l_matrix))

    def h_gamma_lambda(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Recover the paper's ``(H, γ=0, λ)`` description.

        ``L = Λ (H⁻¹)ᵀ`` with ``Λ = diag(λ)``; we return the rational ``H``
        as a float array normalised so ``λ_j = 1`` (any positive scaling of
        ``h_j`` with matching ``λ_j`` describes the same slab family).
        """
        inv = np.array(
            [[float(x) for x in row] for row in exact_inverse(self.l_matrix)]
        )
        h = inv.T  # with λ = 1: L = Λ (H^{-1})^T = (H^{-1})^T
        lam = np.ones(self.depth)
        gamma = np.zeros(self.depth)
        return h, gamma, lam

    # -- exact integer tiling arithmetic ---------------------------------
    def _adjugate_and_det(self) -> tuple[np.ndarray, int]:
        det = int_det(self.l_matrix)
        inv = exact_inverse(self.l_matrix)
        adj = np.array(
            [[int(x * det) for x in row] for row in inv], dtype=np.int64
        )
        if det < 0:
            adj, det = -adj, -det
        return adj, det

    def tile_index(self, iterations) -> np.ndarray:
        """Tile index ``k = ⌊i·L⁻¹⌋`` for each iteration row (exact)."""
        pts = np.atleast_2d(np.asarray(iterations, dtype=np.int64))
        adj, det = self._adjugate_and_det()
        num = pts @ adj
        return np.floor_divide(num, det)

    def contains_closed(self, iteration) -> bool:
        """Membership in the *closed* tile at the origin (0 ≤ f ≤ 1)."""
        i = as_int_vector(iteration, name="iteration")
        adj, det = self._adjugate_and_det()
        num = i @ adj
        return bool(np.all(num >= 0) and np.all(num <= det))

    def enumerate_iterations(self, *, closed: bool = True) -> np.ndarray:
        """Integer iterations of the tile at the origin.

        ``closed=True`` gives the paper's tile (both bounding hyperplanes
        included); ``closed=False`` the half-open tile used for
        one-iteration-one-tile scheduling.
        """
        lm = self.l_matrix
        l = self.depth
        corners = np.array(
            [
                sum((lm[j] for j in range(l) if mask >> j & 1),
                    np.zeros(l, dtype=np.int64))
                for mask in range(1 << l)
            ]
        )
        lo = corners.min(axis=0)
        hi = corners.max(axis=0)
        pts = box_points_array(lo, hi)
        adj, det = self._adjugate_and_det()
        num = pts @ adj
        if closed:
            mask = np.all((num >= 0) & (num <= det), axis=1)
        else:
            mask = np.all((num >= 0) & (num < det), axis=1)
        return pts[mask]

    def footprint_matrix(self, g) -> np.ndarray:
        """The footprint parallelepiped ``L·G`` (Section 3.4)."""
        return self.l_matrix @ as_int_matrix(g, name="G")

    def is_rectangular(self) -> bool:
        lm = self.l_matrix
        return bool(np.all(lm == np.diag(np.diag(lm))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelepipedTile(L={self.l_matrix.tolist()})"


class RectangularTile(ParallelepipedTile):
    """A rectangular tile given by ``sides`` = iterations per dimension.

    ``sides_j = λ_j + 1`` in the paper's ``(I, γ, λ)`` notation
    (Proposition 3: the tile holds ``Π(λ_j+1)`` iterations).  ``L`` is
    ``diag(sides)``, so ``|det L| = Π sides = iterations`` exactly — the
    half-open tile ``0 ≤ i_j < sides_j``.
    """

    def __init__(self, sides):
        sides = as_int_vector(sides, name="sides")
        if np.any(sides < 1):
            raise ValueError(f"tile sides must be >= 1, got {sides}")
        super().__init__(np.diag(sides))

    @property
    def sides(self) -> np.ndarray:
        return np.diag(self.l_matrix)

    @property
    def extents(self) -> np.ndarray:
        """``λ = sides − 1`` (inclusive per-dimension iteration bound)."""
        return self.sides - 1

    @property
    def iterations(self) -> int:
        """Exact iteration count ``Π sides`` (Proposition 3)."""
        prod = 1
        for s in self.sides:
            prod *= int(s)
        return prod

    def enumerate_iterations(self, *, closed: bool = False) -> np.ndarray:
        """Iterations of the tile; default *half-open* (``0 ≤ i < sides``).

        The paper's rectangular tile ``(I, 0, λ)`` is exactly this set —
        closed bounds on ``λ = sides − 1``.  Pass ``closed=True`` for the
        set ``0 ≤ i ≤ sides`` (rarely wanted; kept for symmetry with the
        parallelepiped base class).
        """
        hi = self.sides if closed else self.extents
        return box_points_array(np.zeros_like(hi), hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RectangularTile(sides={self.sides.tolist()})"


@dataclass(frozen=True)
class Tiling:
    """A homogeneous tiling of a rectangular iteration space.

    Tiles are translates of ``tile`` anchored so that the space's lower
    corner falls at a tile origin; every iteration maps to exactly one
    tile (half-open assignment, Definition 1's homogeneity).
    """

    space: IterationSpace
    tile: ParallelepipedTile

    def __post_init__(self):
        if self.tile.depth != self.space.depth:
            raise ValueError(
                f"tile depth {self.tile.depth} != space depth {self.space.depth}"
            )

    def tile_indices(self, iterations) -> np.ndarray:
        """Tile index vectors for an ``(N, l)`` array of iterations."""
        pts = np.atleast_2d(np.asarray(iterations, dtype=np.int64))
        return self.tile.tile_index(pts - self.space.lower)

    def assignments(self) -> dict[tuple[int, ...], np.ndarray]:
        """Map tile index → ``(N_t, l)`` array of member iterations.

        Enumerates the whole space; intended for the simulator and for
        tests (spaces up to a few million iterations).
        """
        pts = box_points_array(self.space.lower, self.space.upper)
        idx = self.tile_indices(pts)
        # Group by tile index via lexicographic sort.
        order = np.lexsort(idx.T[::-1])
        idx_sorted = idx[order]
        pts_sorted = pts[order]
        boundaries = np.nonzero(np.any(np.diff(idx_sorted, axis=0) != 0, axis=1))[0] + 1
        groups = np.split(np.arange(len(pts_sorted)), boundaries)
        return {
            tuple(int(x) for x in idx_sorted[g[0]]): pts_sorted[g] for g in groups
        }

    def num_tiles(self) -> int:
        """Number of nonempty tiles (exact, by enumeration)."""
        pts = box_points_array(self.space.lower, self.space.upper)
        idx = self.tile_indices(pts)
        return int(np.unique(idx, axis=0).shape[0])

    def num_tiles_rect(self) -> int:
        """Closed-form tile count for rectangular tiles (ceil division)."""
        if not isinstance(self.tile, RectangularTile):
            raise TypeError("num_tiles_rect requires a RectangularTile")
        ext = self.space.extents
        sides = self.tile.sides
        prod = 1
        for e, s in zip(ext, sides):
            prod *= -(-int(e) // int(s))
        return prod
