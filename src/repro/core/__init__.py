"""The paper's primary contribution: loop partitioning via data footprints.

Modules
-------
affine
    :class:`AffineRef` — array references ``A[i·G + a]`` (Section 2.1,
    Example 1), zero-column elimination, dependent-column reduction.
loopnest
    :class:`LoopNest` IR — Doall/Doseq nests with affine body references.
classify
    Intersecting / uniformly generated / uniformly intersecting
    classification (Definitions 4-6, Appendix B) and partitioning of a
    loop body into :class:`UISet` classes.
tiles
    Hyperparallelepiped and rectangular iteration-space tiles
    (Definitions 1-2, Propositions 2-3) and tilings of an iteration space.
spread
    Spread vectors: ``â`` (max−min, Definition 8) for caches and ``a⁺``
    (cumulative, footnote 2) for data partitioning.
footprint
    Footprint sizes for a single reference (Section 3.4, Theorems 1 & 5).
cumulative
    Cumulative footprints for uniformly intersecting sets (Section 3.5,
    Theorems 2 & 4, Lemma 3) with exact and paper-approximate paths.
optimize
    Tile-shape optimization (Section 3.6): closed-form Lagrange solution
    for rectangular tiles, nonlinear search for parallelepipeds,
    communication-free hyperplane detection.
partitioner
    Top-level driver: loop nest + machine size → partition + predictions.
cost
    Traffic/cost model shared by the optimizer and the benchmarks.
structure
    Canonical bounds-free structure keys for request families.
plan
    Structure-keyed partition plans: Sec 3.6 closed forms solved once
    per loop shape, instantiated per request in O(1).
"""

from .affine import AffineRef, AccessKind, ArrayAccess
from .loopnest import Loop, LoopNest, IterationSpace
from .classify import (
    references_intersect,
    uniformly_generated,
    uniformly_intersecting,
    UISet,
    partition_references,
)
from .tiles import RectangularTile, ParallelepipedTile, Tiling
from .spread import spread_vector, cumulative_spread_vector
from .footprint import footprint_size, footprint_size_exact, footprint_det_size
from .cumulative import (
    cumulative_line_footprint_exact,
    cumulative_footprint_size,
    cumulative_footprint_size_exact,
    cumulative_footprint_rect,
    loop_footprint_size,
)
from .optimize import (
    optimize_rectangular,
    optimize_parallelepiped,
    communication_free_partition,
    factorizations,
)
from .datapart import (
    data_cost_coefficients,
    data_spread_coefficients,
    median_reference,
    optimize_rectangular_data,
)
from .symbolic import (
    RectFootprintPolynomial,
    class_polynomial,
    class_polynomial_from_u,
    loop_polynomial,
)
from .structure import structure_key, class_descriptor, canonical_class_order
from .plan import (
    PlanCache,
    DEFAULT_PLAN_CACHE,
    solve_plan,
    instantiate_plan,
    plan_optimize,
)
from .partitioner import LoopPartitioner, PartitionResult
from .cost import TrafficEstimate, estimate_traffic

__all__ = [
    "AffineRef",
    "AccessKind",
    "ArrayAccess",
    "Loop",
    "LoopNest",
    "IterationSpace",
    "references_intersect",
    "uniformly_generated",
    "uniformly_intersecting",
    "UISet",
    "partition_references",
    "RectangularTile",
    "ParallelepipedTile",
    "Tiling",
    "spread_vector",
    "cumulative_spread_vector",
    "footprint_size",
    "footprint_size_exact",
    "footprint_det_size",
    "cumulative_footprint_size",
    "cumulative_footprint_size_exact",
    "cumulative_footprint_rect",
    "cumulative_line_footprint_exact",
    "loop_footprint_size",
    "optimize_rectangular",
    "optimize_parallelepiped",
    "communication_free_partition",
    "factorizations",
    "data_cost_coefficients",
    "data_spread_coefficients",
    "median_reference",
    "optimize_rectangular_data",
    "RectFootprintPolynomial",
    "class_polynomial",
    "class_polynomial_from_u",
    "loop_polynomial",
    "structure_key",
    "class_descriptor",
    "canonical_class_order",
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
    "solve_plan",
    "instantiate_plan",
    "plan_optimize",
    "LoopPartitioner",
    "PartitionResult",
    "TrafficEstimate",
    "estimate_traffic",
]
