"""Spread vectors of a uniformly intersecting class (Definition 8).

For caches the relevant measure is the *spread* ``â``: per array
dimension, the max−min of the member offsets.  The cumulative footprint of
the class is (approximately) one footprint dilated by ``â`` (Theorem 2 /
Theorem 4), because offsets between the extremes land inside the dilated
region.

For *data partitioning* (footnote 2) the copies are not dynamic, so every
distinct offset beyond the median costs its own remote traffic: the
cumulative spread ``a⁺_k = Σ_r |a_{r,k} − med_r(a_{r,k})|`` replaces
``â``.
"""

from __future__ import annotations

import numpy as np

from .._util import as_int_matrix

__all__ = ["spread_vector", "cumulative_spread_vector"]


def spread_vector(offsets) -> np.ndarray:
    """``â_k = max_r a_{r,k} − min_r a_{r,k}`` (Definition 8).

    ``offsets`` is an ``(R, d)`` integer matrix of the class's offset
    vectors; the result has length ``d``.

    Examples
    --------
    >>> spread_vector([[0, 0, 0], [-1, 0, 1], [1, -2, -3]]).tolist()
    [2, 2, 4]
    """
    a = as_int_matrix(np.atleast_2d(offsets), name="offsets")
    return (a.max(axis=0) - a.min(axis=0)).astype(np.int64)


def cumulative_spread_vector(offsets) -> np.ndarray:
    """``a⁺_k = Σ_r |a_{r,k} − med_r(a_{r,k})|`` (footnote 2).

    The median is taken per dimension; for an even member count numpy's
    midpoint median may be half-integral, in which case both neighbours
    give the same absolute-deviation sum, so the formula stays integral.
    """
    a = as_int_matrix(np.atleast_2d(offsets), name="offsets")
    med = np.median(a, axis=0)
    dev = np.abs(a - med).sum(axis=0)
    return np.round(dev).astype(np.int64)
