"""Simulated annealing over hyperparallelepiped tile matrices.

The SLSQP path of :func:`repro.core.optimize.optimize_parallelepiped`
minimises the Theorem 2 objective with a smooth constrained solver, and
at depth ≥ 3 every deterministic start can fail — the determinant
constraint surface ``det L = V`` is highly non-convex, and SLSQP's QP
subproblems go singular near it.  This module is the robust second
member of the optimizer *portfolio*: a seeded simulated-annealing search
over the flattened ``L`` matrix that needs no gradients and no
constraint Jacobians, only the objective and a projection back onto the
volume constraint.

Move set (modeled on the Hub tile-shape optimizer's
energy/temperature/clamped-perturbation loop, adapted from integer tile
sides to a full ``L`` matrix):

* **perturb** — add Gaussian noise (scale ``step_scale·V^(1/l)``, cooled
  with the temperature) to 1..l randomly chosen entries of ``L``, then
  clamp every entry into ``[-max_extent_j, +max_extent_j]``;
* **project** — rescale all rows uniformly by ``(V/|det L|)^(1/l)`` so
  the proposal lands back on ``|det L| = V`` (a row rescale preserves
  the tile's *shape*, which is what the objective scores); clamp and
  re-project up to a few rounds, rejecting proposals that cannot satisfy
  both the bounds and the volume constraint;
* **accept** — Metropolis: always downhill, uphill with probability
  ``exp(-Δf/T)`` on a deterministic geometric cooling schedule
  ``T_t = T0·cooling^t`` with ``T0`` scaled to the start objective.

Determinism: given the same inputs, seed, and config, the search is a
pure function — ``numpy.random.default_rng(seed)`` drives every draw,
restarts are seeded in a fixed order, and there is no wall-clock
dependence unless an explicit ``deadline`` is supplied (the time-budget
escape hatch checks the clock every few iterations and stops early; runs
without a deadline are bit-reproducible).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..obs.tracing import span as _span

__all__ = ["AnnealConfig", "AnnealResult", "anneal_parallelepiped", "project_det"]


@dataclass(frozen=True)
class AnnealConfig:
    """Tunables of one annealing run (all deterministic given a seed)."""

    iterations: int = 400  # Metropolis steps per restart
    restarts: int = 2  # independent restarts, seeded 0..restarts-1
    initial_temperature: float = 0.08  # T0 as a fraction of the start objective
    cooling: float = 0.985  # geometric schedule T_{t+1} = cooling * T_t
    step_scale: float = 0.30  # perturbation sigma as a fraction of V^(1/l)
    deadline_check_every: int = 32  # clock checks (only with a deadline)

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {self.restarts}")
        if not (0.0 < self.cooling < 1.0):
            raise ValueError(f"cooling must be in (0, 1), got {self.cooling}")


@dataclass(frozen=True)
class AnnealResult:
    """Best matrix found plus the search's bookkeeping.

    ``objective`` is the Theorem-2 cumulative footprint at ``l_matrix``
    (continuous, pre-rounding); ``evaluations`` counts objective calls,
    ``accepted`` Metropolis acceptances, and ``truncated`` is True when a
    deadline cut the schedule short (never for budget-less runs).
    """

    l_matrix: np.ndarray
    objective: float
    evaluations: int
    accepted: int
    restarts: int
    truncated: bool = False


def project_det(lm: np.ndarray, volume: float) -> np.ndarray | None:
    """Rescale all rows of ``lm`` uniformly so ``|det L| = volume``.

    Returns ``None`` when ``lm`` is numerically singular (no finite
    rescale reaches the volume).  Row rescaling preserves the directions
    of the tile's edge vectors — only their lengths change — so a
    proposal keeps its shape through the projection.
    """
    l = lm.shape[0]
    det = abs(float(np.linalg.det(lm)))
    if not math.isfinite(det) or det < 1e-12:
        return None
    return lm * (volume / det) ** (1.0 / l)


def _clamped_project(
    lm: np.ndarray, volume: float, max_extents: np.ndarray, *, rounds: int = 3
) -> np.ndarray | None:
    """Alternate clamping into the per-column bounds and re-projecting.

    The two constraint sets (entry box, volume surface) are not jointly
    convex; a few alternating rounds either land inside both (within a
    small slack on the box — the volume constraint is the hard one) or
    the proposal is rejected.
    """
    cur = lm
    for _ in range(rounds):
        cur = np.clip(cur, -max_extents, max_extents)
        cur = project_det(cur, volume)
        if cur is None:
            return None
        if np.all(np.abs(cur) <= max_extents * (1.0 + 1e-6)):
            return cur
    # Accept a mild overshoot (projection can push a clamped entry back
    # out); anything worse means the volume cannot fit in the box along
    # this shape — reject.
    if np.all(np.abs(cur) <= max_extents * 1.05):
        return cur
    return None


def anneal_parallelepiped(
    objective,
    start: np.ndarray,
    volume: float,
    *,
    max_extents: np.ndarray,
    seed: int = 0,
    config: AnnealConfig | None = None,
    deadline: float | None = None,
) -> AnnealResult | None:
    """Anneal ``L`` to minimise ``objective(l_flat)`` at ``|det L| = V``.

    ``objective`` is called with the flattened matrix (the same signature
    slice :func:`~repro.core.optimize._theorem2_objective` exposes via
    ``functools.partial``).  ``start`` seeds restart 0 verbatim; later
    restarts perturb it.  ``deadline`` is an absolute
    ``time.monotonic()`` instant; when given, the loop polls the clock
    every ``config.deadline_check_every`` steps and stops early (the only
    nondeterministic mode — see the module docstring).

    Returns ``None`` only when no feasible projected start exists at all.
    """
    config = config or AnnealConfig()
    l = start.shape[0]
    v = float(volume)
    max_extents = np.asarray(max_extents, dtype=float)
    sigma0 = config.step_scale * v ** (1.0 / l)

    best_lm: np.ndarray | None = None
    best_f = math.inf
    evaluations = 0
    accepted = 0
    truncated = False

    with _span("optimize.anneal", restarts=config.restarts,
               iterations=config.iterations):
        for restart in range(config.restarts):
            rng = np.random.default_rng(
                np.random.SeedSequence([int(seed), restart])
            )
            lm = start.astype(float)
            if restart:
                lm = lm + rng.normal(scale=0.5 * sigma0, size=(l, l))
            lm = _clamped_project(lm, v, max_extents)
            if lm is None:
                continue
            f = float(objective(lm.ravel()))
            evaluations += 1
            if f < best_f:
                best_f, best_lm = f, lm.copy()
            # T0 tracks the start objective so exp(-Δf/T) sees O(1)
            # exponents regardless of the problem's absolute scale.
            temp = max(config.initial_temperature * abs(f), 1e-12)
            for step in range(config.iterations):
                if (
                    deadline is not None
                    and step % config.deadline_check_every == 0
                    and time.monotonic() >= deadline
                ):
                    truncated = True
                    break
                n_touch = int(rng.integers(1, l + 1))
                idx = rng.choice(l * l, size=n_touch, replace=False)
                prop = lm.copy().ravel()
                cooling_frac = temp / max(
                    config.initial_temperature * abs(f), 1e-12
                )
                prop[idx] += rng.normal(
                    scale=sigma0 * max(cooling_frac, 0.05), size=n_touch
                )
                cand = _clamped_project(prop.reshape(l, l), v, max_extents)
                if cand is None:
                    temp *= config.cooling
                    continue
                cf = float(objective(cand.ravel()))
                evaluations += 1
                if cf < f or rng.random() < math.exp(
                    -min((cf - f) / max(temp, 1e-12), 700.0)
                ):
                    lm, f = cand, cf
                    accepted += 1
                    if f < best_f:
                        best_f, best_lm = f, lm.copy()
                temp *= config.cooling
            if truncated:
                break

    if best_lm is None:
        return None
    return AnnealResult(
        l_matrix=best_lm,
        objective=best_f,
        evaluations=evaluations,
        accepted=accepted,
        restarts=config.restarts,
        truncated=truncated,
    )
