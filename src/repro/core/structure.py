"""Canonical *structure keys* for partition plans.

A served workload is a stream of request *families*: the same loop shape
(reference matrices ``G``, offset spreads, read/write mix, class
partition) instantiated with different bounds ``N`` and processor counts
``P``.  Everything the Sec 3.6 Lagrange analysis derives — the spread
coefficients ``u`` of each class (Theorem 4), the per-dimension traffic
coefficients ``A_i``, the integer kernel of each ``G`` (coherence
penalty), the parametric Theorem-2 cost polynomial — depends only on
that shape, never on the literal bounds.  :func:`structure_key`
quotients a classified loop body down to exactly the shape, so a
:class:`~repro.core.plan.PlanCache` can solve the closed forms once per
shape and replay them for every family member.

Canonicalisation rules (documented in DESIGN.md):

* the key covers the loop depth and a descriptor per uniformly
  intersecting class; bounds, processor count, and tile volume are
  abstracted away (they are the plan's *parameters*);
* each class descriptor is the exact ``G`` matrix (shape + bytes of the
  canonical ``int64`` layout), the member offsets normalised by
  translation (per-coordinate minimum subtracted — Proposition 1: a
  common translation moves the footprint, never resizes it) and sorted
  row-wise (member order is immaterial to spreads, unions, and kernels),
  and a write-like flag (the only kind information the optimiser uses,
  via the coherence penalty);
* class descriptors are sorted, so textual reference order does not
  split a family.

Keys are nested tuples of ints/strings/bytes — the same vocabulary as
the lattice-cache keys — so they survive the
:mod:`repro.lattice.persist` JSON round trip losslessly.
"""

from __future__ import annotations

import numpy as np

from .classify import UISet

__all__ = ["structure_key", "class_descriptor", "canonical_class_order"]

#: Bump when the plan solver's payload semantics change: the version is
#: part of every structure key, so stale persisted plans from an older
#: solver can never be instantiated by a newer one.
STRUCTURE_VERSION = 1


def class_descriptor(uiset: UISet) -> tuple:
    """Canonical, bounds-free descriptor of one class (nested tuple)."""
    g = np.ascontiguousarray(uiset.g, dtype=np.int64)
    offsets = np.asarray(uiset.offsets, dtype=np.int64)
    rel = offsets - offsets.min(axis=0)
    rows = sorted(tuple(int(x) for x in row) for row in rel.tolist())
    return (
        "class",
        int(g.shape[0]),
        int(g.shape[1]),
        g.tobytes(),
        int(len(rows)),
        np.ascontiguousarray(rows, dtype=np.int64).tobytes() if rows else b"",
        1 if uiset.has_write() else 0,
    )


def canonical_class_order(uisets) -> list[UISet]:
    """The classes sorted by descriptor (stable for equal descriptors).

    The plan solver walks classes in this order so the solved payload —
    including float summation order — is a pure function of the
    structure key.
    """
    return [
        s
        for _, _, s in sorted(
            (class_descriptor(s), i, s) for i, s in enumerate(uisets)
        )
    ]


def structure_key(uisets, depth: int) -> tuple:
    """The canonical structure key of a classified loop body."""
    return (
        "plan",
        STRUCTURE_VERSION,
        int(depth),
        tuple(sorted(class_descriptor(s) for s in uisets)),
    )
