"""Structure-keyed partition plans — solve Sec 3.6 once per loop *shape*.

A request family is one loop structure (``G`` matrices, offset spreads,
read/write mix) instantiated with many different bounds ``N`` and
processor counts ``P``.  The numeric optimiser re-derives the same
rational solves, kernel bases, and cost model for every member; this
module quotients the family down to its :func:`~repro.core.structure.
structure_key` and caches a *solved plan*:

* per class, the Theorem-4 spread coefficients ``u`` (the
  partition-sensitive polynomial ``Π s_j + Σ_i u_i Π_{j≠i} s_j``), or —
  when Theorem 4 is inapplicable but the reduced ``G``'s nonzero rows
  are independent — the exact *box-union* form (inclusion–exclusion
  over the members' integer shifts, a piecewise polynomial in the tile
  sides), plus the integer-kernel mask that drives the write-coherence
  penalty;
* the summed per-dimension traffic coefficients ``A_i`` that seed the
  continuous Lagrange optimum;
* the parametric Theorem-2 cost polynomial (for the instantiation-time
  sanity check and for display).

:func:`instantiate_plan` then evaluates the stored closed forms for a
concrete ``(extents, P)``: the same feasible processor-grid enumeration
as :func:`~repro.core.optimize.optimize_rectangular`, scored in one
vectorised sweep, with the same ``(cost, distance, grid)`` tie-break —
so a plan hit reproduces the numeric optimiser's answer bit-for-bit on
the classes it can express, at polynomial-evaluation cost.

Whenever the closed forms are inapplicable (a class that is neither
Theorem-4 nor a product), the instantiation is numerically risky (huge
volumes), or the plan's integer cost fails the Theorem-2 cross-check,
:func:`plan_optimize` returns ``None`` and records the fallback — the
caller simply continues into the numeric grid search, exactly like
``engine="auto"`` records its engine choice.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from .._util import int_rank
from ..exceptions import SingularMatrixError
from ..lattice.points import _CacheMetrics
from ..lattice.snf import integer_kernel_basis, solve_integer
from ..obs.tracing import span as _span
from .cumulative import _reduced, spread_coefficients
from .loopnest import IterationSpace
from .optimize import RectOptResult, _candidate_tile, _continuous_lagrange, factorizations
from .structure import canonical_class_order, structure_key
from .symbolic import RectFootprintPolynomial, class_polynomial_from_u
from .tiles import RectangularTile

__all__ = [
    "SOLVER_VERSION",
    "VALIDATE_FACTOR",
    "solve_plan",
    "instantiate_plan",
    "PlanCache",
    "DEFAULT_PLAN_CACHE",
    "plan_optimize",
]

#: Payload schema version, stored in every solved plan.  Payloads from a
#: different solver version are re-solved instead of instantiated.
SOLVER_VERSION = 1

#: Instantiation sanity check: the best integer grid's cost must stay
#: within this factor of the continuous Theorem-2 lower bound evaluated
#: at the Lagrange optimum.  Integerisation (ceil sides) and the write
#: penalty can legitimately exceed the continuous bound by a wide margin
#: on small extents, so this is a safety net against a corrupted or
#: stale payload, not a tight check.
VALIDATE_FACTOR = 32.0

#: Above this iteration-space volume the vectorised float scoring can no
#: longer guarantee exactly-represented side products (box-union terms
#: carry inclusion–exclusion coefficients up to ``2^_MAX_UNION_MEMBERS``
#: on top of the tile volume) — fall back to the numeric path rather
#: than risk a rounding-divergent tie-break.
_EXACT_VOLUME_LIMIT = 2.0**40

#: Classes with more members than this get no box-union form (the
#: inclusion–exclusion has ``2^m − 1`` subsets) — they fall back.
_MAX_UNION_MEMBERS = 8

#: Largest value range the 1-D "line" evaluation will materialise as a
#: bitset (Section 3.8's table-lookup path).  Beyond this the class
#: falls back to the numeric optimiser.
_LINE_RANGE_LIMIT = 1 << 22


def _box_union_terms(shifts) -> list[tuple[tuple[int, ...], int]]:
    """Inclusion–exclusion form of a union of same-size shifted boxes.

    ``|∪_j (B + t_j)| = Σ_{(w, c)} c · Π_i max(0, s_i − w_i)`` where each
    ``w`` is the per-dimension shift width (max − min) of one subset of
    members and ``c`` the net inclusion–exclusion sign count.  Exact for
    every side vector ``s`` — the kinks at ``s_i = w_i`` are what makes
    the form piecewise rather than plainly polynomial.
    """
    from itertools import combinations

    uniq = sorted(set(shifts))
    acc: dict[tuple[int, ...], int] = {}
    for r in range(1, len(uniq) + 1):
        sign = 1 if r % 2 == 1 else -1
        for sub in combinations(uniq, r):
            w = tuple(max(v) - min(v) for v in zip(*sub))
            acc[w] = acc.get(w, 0) + sign
    return sorted((w, c) for w, c in acc.items() if c != 0)


def _line_count(coeffs, shifts, sides) -> float:
    """Exact distinct-value count of ``{Σ_i c_i·x_i} + shifts`` (1-D).

    ``coeffs`` are ``(dim, c)`` pairs with ``c > 0``; ``x_dim`` ranges
    over ``[0, sides[dim])``; ``shifts`` are the members' scalar offsets
    (min 0).  Builds the reachable-value bitset by dilating with each
    arithmetic progression in doubling steps — ``O(range · log side)``
    boolean work, exact for any sides.  This is the paper's Section 3.8
    "table lookup" answer for the ``d = 1`` footprints that have no
    closed polynomial form.
    """
    r = sum(c * (int(sides[d]) - 1) for d, c in coeffs) + max(shifts)
    reach = np.zeros(r + 1, dtype=bool)
    reach[list(shifts)] = True
    for d, c in coeffs:
        n = int(sides[d]) - 1
        step = 1
        while n > 0:
            take = min(step, n)
            shift = c * take
            reach[shift:] |= reach[: reach.size - shift]
            n -= take
            step *= 2
    return float(np.count_nonzero(reach))


def solve_plan(uisets, depth: int) -> dict:
    """Derive the parametric closed forms of one structure (pure JSON).

    Walks the classes in :func:`canonical_class_order` so the payload —
    including every float summation order — is a pure function of the
    structure key.  The payload is JSON-serialisable (lists, numbers,
    strings, booleans, None) so it survives the
    :mod:`repro.lattice.persist` round trip and process-pool pickling.
    """
    ordered = canonical_class_order(uisets)
    l = int(depth)
    a = np.zeros(l, dtype=float)
    classes: list[dict] = []
    names = tuple(f"s{i}" for i in range(l))
    poly = RectFootprintPolynomial.from_dict({}, names)
    applicable = True
    reason = None
    for s in ordered:
        ker = integer_kernel_basis(s.g)
        mask = (
            [bool(np.any(ker[:, k] != 0)) for k in range(l)]
            if ker.size
            else [False] * l
        )
        entry: dict = {
            "u": None,
            "union": None,
            "line": None,
            "kernel_mask": mask,
            "penalized": bool(s.has_write() and ker.size),
        }
        try:
            u = spread_coefficients(s)
        except SingularMatrixError:
            u = None
        if u is not None:
            # Theorem-4 class: footprint Π s_j + Σ_i u_i Π_{j≠i} s_j,
            # the exact expression _class_footprint evaluates.
            entry["u"] = [float(x) for x in u]
            poly = poly + class_polynomial_from_u(u, names)
            if s.size > 1 and np.any(s.spread()):
                # Same accumulation rule as rect_cost_coefficients (and
                # its singular-class fallback): only classes with a
                # nonzero spread steer the continuous seed.
                a += u
        else:
            # No Theorem-4 coefficients.  When the nonzero rows of the
            # reduced G are independent, x ↦ x·G′ is injective on those
            # coordinates, so the class's exact union is a union of
            # same-size boxes shifted by the members' integer solutions
            # of ``x_j·G′ = o_j − o_0`` — closed under inclusion–
            # exclusion, bit-identical to what the numeric path counts
            # by enumeration.  Dependent nonzero rows (e.g. a 1-D array
            # folding two loop dimensions) have no closed form here —
            # the paper itself resorts to table lookup for those.
            g_red, off_red = _reduced(s)
            nz = [i for i in range(g_red.shape[0]) if np.any(g_red[i, :] != 0)]
            independent = not nz or int_rank(g_red[nz, :]) == len(nz)
            if not independent and g_red.shape[1] == 1:
                # 1-D array folding several loop dimensions: exact count
                # via the Section 3.8 table-lookup form.  Sign flips of a
                # coefficient translate the value set without resizing
                # it, so absolute values canonicalise.
                base = int(off_red[:, 0].min())
                entry["line"] = {
                    "coeffs": [[int(i), abs(int(g_red[i, 0]))] for i in nz],
                    "shifts": sorted({int(o) - base for o in off_red[:, 0]}),
                }
                poly = poly + RectFootprintPolynomial.from_dict(
                    {(int(i),): float(abs(int(g_red[i, 0]))) for i in nz}, names
                )
                classes.append(entry)
                continue
            shifts: list[tuple[int, ...]] | None = []
            if not independent:
                shifts, why = None, "singular-class"
            elif s.size > _MAX_UNION_MEMBERS:
                shifts, why = None, "class-too-large"
            elif not nz:
                shifts = [()]
            else:
                for j in range(off_red.shape[0]):
                    x = solve_integer(g_red, off_red[j] - off_red[0])
                    if x is None:  # pragma: no cover - uniform intersection
                        shifts, why = None, "no-integer-shift"
                        break
                    shifts.append(tuple(int(x[i]) for i in nz))
            if shifts is not None:
                terms = _box_union_terms(shifts)
                entry["union"] = {
                    "dims": [int(i) for i in nz],
                    "terms": [[list(w), int(c)] for w, c in terms],
                }
                poly = poly + RectFootprintPolynomial.monomial(nz, names)
            else:
                applicable = False
                reason = why
        classes.append(entry)
    return {
        "version": SOLVER_VERSION,
        "depth": l,
        "applicable": applicable,
        "reason": reason,
        "a": [float(x) for x in a],
        "classes": classes,
        "cost_poly": poly.to_payload(),
    }


def instantiate_plan(
    payload: dict, extents, processors: int
) -> tuple[RectOptResult | None, str | None]:
    """Evaluate a solved plan for concrete bounds and processor count.

    Returns ``(result, None)`` on success or ``(None, reason)`` when the
    numeric optimiser must run instead.  The scoring replays
    ``optimize_rectangular``'s grid search — same feasible set, same
    per-class arithmetic (term order included), same
    ``(cost, distance, grid)`` tie-break — as one vectorised sweep.
    """
    if not isinstance(payload, dict) or payload.get("version") != SOLVER_VERSION:
        return None, "stale-payload"
    l = int(payload["depth"])
    ext = np.asarray(extents, dtype=np.int64)
    if ext.shape != (l,):
        return None, "depth-mismatch"
    if not payload.get("applicable"):
        return None, str(payload.get("reason") or "inapplicable")
    volume_total = 1
    for n in ext.tolist():
        volume_total *= int(n)
    if processors < 1 or processors > volume_total:
        # Let the numeric path raise its proper OptimizationError.
        return None, "p-out-of-range"
    if float(volume_total) >= _EXACT_VOLUME_LIMIT:
        return None, "overflow"
    volume = float(volume_total) / float(processors)
    a = np.asarray(payload["a"], dtype=float)
    if not np.any(a):
        a = np.ones(l)
    cont = _continuous_lagrange(np.where(a > 0, a, 0.0), ext, volume)

    feasible = [
        grid
        for grid in factorizations(int(processors), l)
        if not any(p > n for p, n in zip(grid, ext.tolist()))
    ]
    if not feasible:
        return None, "no-feasible-grid"
    grids = np.asarray(feasible, dtype=np.int64)
    sides = -(-ext[None, :] // grids)  # ⌈N_i / p_i⌉ per candidate
    sf = sides.astype(float)
    prod = np.prod(sf, axis=1)
    total = np.zeros(len(feasible), dtype=float)
    for cls in payload["classes"]:
        u = cls.get("u")
        if u is not None:
            fp = prod.copy()
            for i, ui in enumerate(u):
                if ui:
                    # prod / sf[:, i] is the exact Π_{j≠i} sides_j (the
                    # quotient of exactly-represented integers).
                    fp = fp + float(ui) * (prod / sf[:, i])
        elif cls.get("line") is not None:
            line = cls["line"]
            coeffs = [(int(d), int(c)) for d, c in line["coeffs"]]
            shifts = [int(x) for x in line["shifts"]]
            worst = sum(c * (int(ext[d]) - 1) for d, c in coeffs) + max(shifts)
            if worst > _LINE_RANGE_LIMIT:
                return None, "line-range"
            fp = np.array(
                [
                    _line_count(coeffs, shifts, sides[idx])
                    for idx in range(len(feasible))
                ],
                dtype=float,
            )
        else:
            union = cls["union"]
            dims = [int(i) for i in union["dims"]]
            fp = np.zeros(len(feasible), dtype=float)
            for w, coeff in union["terms"]:
                term = np.full(len(feasible), float(coeff))
                for i, wi in zip(dims, w):
                    term = term * np.maximum(sf[:, i] - float(wi), 0.0)
                fp = fp + term
        total = total + fp
        if cls.get("penalized"):
            mask = np.asarray(cls["kernel_mask"], dtype=bool)
            m = np.prod(
                np.where((grids > 1) & mask[None, :], grids, 1), axis=1
            ).astype(float)
            total = total + (m - 1.0) * fp

    best_key: tuple[float, float, tuple[int, ...]] | None = None
    best_idx = -1
    for idx, grid in enumerate(feasible):
        dist = sum(
            abs(math.log(sd / cs))
            for sd, cs in zip(sides[idx].tolist(), cont)
            if cs > 0
        )
        key = (float(total[idx]), dist, grid)
        if best_key is None or key < best_key:
            best_key, best_idx = key, idx

    # Theorem-2 cross-check: the integer best cannot be wildly above the
    # continuous bound unless the payload is corrupt or stale.
    poly = RectFootprintPolynomial.from_payload(payload["cost_poly"])
    bound = max(poly.evaluate(cont), 1.0)
    if best_key[0] > VALIDATE_FACTOR * bound:
        return None, "cost-check"
    tile: RectangularTile = _candidate_tile(ext, feasible[best_idx])
    return (
        RectOptResult(
            tile=tile,
            grid=tuple(int(p) for p in feasible[best_idx]),
            predicted_cost=float(best_key[0]),
            continuous_sides=cont,
            coefficients=a,
        ),
        None,
    )


class PlanCache:
    """Structure-key → solved-plan store with hit/miss/fallback counters.

    Same discipline as :class:`~repro.lattice.points.LatticeCountCache`:
    plain-int counters per instance, optional registry mirrors for the
    shared default, lock-protected mutation (the serve parent absorbs
    worker deltas from request threads), solve-on-miss outside the lock.
    Values are the pure-JSON payloads of :func:`solve_plan`, so entries
    persist through :mod:`repro.lattice.persist` and travel across the
    serve process pool unchanged.
    """

    def __init__(self, *, metrics_name: str | None = None):
        self._table: dict = {}
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.fallbacks = 0
        self._fallback_reasons: dict[str, int] = {}
        self._metrics = _CacheMetrics(metrics_name) if metrics_name else None
        self._fallback_counter = None
        if metrics_name:
            from ..obs.metrics import get_registry

            self._fallback_counter = get_registry().counter(
                "plan.fallbacks", cache=metrics_name
            )
        self._lock = threading.Lock()

    def get_or_solve(self, key, solver):
        """Cached payload for ``key``, solving (outside the lock) on miss."""
        with self._lock:
            cached = self._table.get(key)
            if cached is not None:
                self.hits += 1
                if self._metrics:
                    self._metrics.hits.inc()
                return cached
            self.misses += 1
            if self._metrics:
                self._metrics.misses.inc()
        value = solver()
        with self._lock:
            self._table[key] = value
        return value

    def record_fallback(self, reason: str = "unknown") -> None:
        with self._lock:
            self.fallbacks += 1
            self._fallback_reasons[reason] = self._fallback_reasons.get(reason, 0) + 1
        if self._fallback_counter:
            self._fallback_counter.inc()

    def fallback_reasons(self) -> dict[str, int]:
        with self._lock:
            return dict(self._fallback_reasons)

    # -- persistence hooks (see repro.lattice.persist) -------------------
    def export_entries(self) -> list:
        """``(key, payload)`` pairs in a stable order."""
        with self._lock:
            items = list(self._table.items())
        return sorted(items, key=repr)

    def absorb_entries(self, entries) -> int:
        """Merge persisted/shipped plans; returns how many keys were new.

        Non-dict payloads (a corrupt cache file) are skipped — the next
        request for that structure simply re-solves.
        """
        added = 0
        with self._lock:
            for key, value in entries:
                if not isinstance(value, dict):
                    continue
                if key not in self._table:
                    self._table[key] = value
                    added += 1
            if added:
                self.loads += added
        if added and self._metrics:
            self._metrics.loads.inc(added)
        return added

    # -- cross-process stats shipping (serve worker → parent) ------------
    def export_stats(self) -> dict:
        """Counter snapshot, for delta-shipping across the process pool."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "fallbacks": self.fallbacks,
                "fallback_reasons": dict(self._fallback_reasons),
            }

    def absorb_stats(self, delta: dict) -> None:
        """Add a worker's counter delta (and mirror it into metrics)."""
        hits = int(delta.get("hits", 0))
        misses = int(delta.get("misses", 0))
        fallbacks = int(delta.get("fallbacks", 0))
        reasons = delta.get("fallback_reasons") or {}
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.fallbacks += fallbacks
            for reason, n in reasons.items():
                self._fallback_reasons[reason] = (
                    self._fallback_reasons.get(reason, 0) + int(n)
                )
        if self._metrics:
            if hits:
                self._metrics.hits.inc(hits)
            if misses:
                self._metrics.misses.inc(misses)
        if fallbacks and self._fallback_counter:
            self._fallback_counter.inc(fallbacks)

    def stats(self) -> dict:
        """JSON-ready counter summary (run reports, ``/metrics``)."""
        with self._lock:
            return {
                "entries": len(self._table),
                "hits": self.hits,
                "misses": self.misses,
                "loads": self.loads,
                "fallbacks": self.fallbacks,
            }

    def clear(self) -> None:
        """Drop all solved plans (counters keep running)."""
        with self._lock:
            self._table.clear()

    def __len__(self) -> int:
        return len(self._table)


#: Shared default plan cache (mirrored into the metrics registry, wired
#: to ``--plan-cache`` / ``repro serve --plan-cache`` / persistence).
DEFAULT_PLAN_CACHE = PlanCache(metrics_name="plan")


def plan_optimize(
    uisets,
    space: IterationSpace,
    processors: int,
    *,
    cache: PlanCache,
) -> RectOptResult | None:
    """Plan-tier entry point: lookup/solve, instantiate, validate.

    Returns the instantiated :class:`RectOptResult` on a usable plan, or
    ``None`` (recording the fallback reason) when the numeric optimiser
    should run.  Both spans fire on hits and misses alike, so the trace
    structure is independent of cache warmth — the serve/CLI differential
    check compares span trees byte-for-byte.
    """
    with _span("optimize.plan.lookup", aggregate=True):
        key = structure_key(uisets, space.depth)
        payload = cache.get_or_solve(key, lambda: solve_plan(uisets, space.depth))
    with _span("optimize.plan.instantiate", aggregate=True):
        result, reason = instantiate_plan(payload, space.extents, processors)
    if result is None:
        cache.record_fallback(reason or "unknown")
        return None
    return result
