"""Symbolic cumulative-footprint polynomials.

The paper communicates every cost function as a polynomial in the tile
sides — ``L_iL_jL_k + 2L_jL_k + 3L_iL_k + 4L_iL_j`` (Example 8),
``2L11L22 + 4L11 + 4L22`` (Example 9, after its determinants), and so on.
This module produces those polynomials programmatically, so a compiler
(or a reader) can see *what* is being minimised, not just the minimiser's
output.

A :class:`RectFootprintPolynomial` is ``Σ_T c_T · Π_{j∈T} s_j`` over
subsets ``T`` of loop dimensions, where ``s_j`` is the tile side
(iterations) in dimension ``j``.  For a uniformly intersecting class with
Theorem-4 coefficients ``u``, the polynomial is::

    Π_j s_j  +  Σ_i u_i · Π_{j≠i} s_j

and the loop-level polynomial is the sum over classes (Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import SingularMatrixError
from .classify import UISet, partition_references
from .cumulative import spread_coefficients

__all__ = [
    "RectFootprintPolynomial",
    "class_polynomial",
    "class_polynomial_from_u",
    "loop_polynomial",
]


@dataclass(frozen=True)
class RectFootprintPolynomial:
    """``Σ_T coeff_T · Π_{j∈T} s_j`` with human-readable rendering.

    ``terms`` maps a sorted tuple of dimension indices to its
    coefficient; ``names`` are the loop-index display names.
    """

    terms: tuple[tuple[tuple[int, ...], float], ...]
    names: tuple[str, ...]

    @staticmethod
    def from_dict(d: dict[tuple[int, ...], float], names) -> "RectFootprintPolynomial":
        cleaned = {
            tuple(sorted(k)): float(v) for k, v in d.items() if v != 0
        }
        ordered = sorted(
            cleaned.items(), key=lambda kv: (-len(kv[0]), kv[0])
        )
        return RectFootprintPolynomial(tuple(ordered), tuple(names))

    def coefficient(self, dims) -> float:
        key = tuple(sorted(dims))
        for k, v in self.terms:
            if k == key:
                return v
        return 0.0

    def __add__(self, other: "RectFootprintPolynomial") -> "RectFootprintPolynomial":
        if self.names != other.names:
            raise ValueError("polynomials over different index names")
        d: dict[tuple[int, ...], float] = {}
        for k, v in self.terms + other.terms:
            d[k] = d.get(k, 0.0) + v
        return RectFootprintPolynomial.from_dict(d, self.names)

    def evaluate(self, sides) -> float:
        """Plug in concrete tile sides."""
        sides = np.asarray(sides, dtype=float)
        total = 0.0
        for dims, c in self.terms:
            prod = c
            for j in dims:
                prod *= sides[j]
            total += prod
        return float(total)

    @staticmethod
    def monomial(dims, names, coeff: float = 1.0) -> "RectFootprintPolynomial":
        """``coeff · Π_{j∈dims} s_j`` — the closed form of a class whose
        reduced ``G`` has independent nonzero rows spanning ``dims`` and
        coincident reduced offsets (its exact union is a product)."""
        return RectFootprintPolynomial.from_dict({tuple(dims): coeff}, names)

    def to_payload(self) -> dict:
        """Pure-JSON representation (lists/numbers/strings only)."""
        return {
            "names": list(self.names),
            "terms": [[list(dims), float(c)] for dims, c in self.terms],
        }

    @staticmethod
    def from_payload(payload: dict) -> "RectFootprintPolynomial":
        """Inverse of :meth:`to_payload` (accepts a JSON round trip)."""
        return RectFootprintPolynomial(
            tuple(
                (tuple(int(j) for j in dims), float(c))
                for dims, c in payload["terms"]
            ),
            tuple(str(n) for n in payload["names"]),
        )

    def partition_sensitive(self) -> "RectFootprintPolynomial":
        """Drop the full-volume term (constant under load balancing) —
        what is left is the traffic being minimised (Figure 9 argument)."""
        full = tuple(range(len(self.names)))
        return RectFootprintPolynomial.from_dict(
            {k: v for k, v in self.terms if k != full}, self.names
        )

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for dims, c in self.terms:
            prod = "*".join(self.names[j] for j in dims) if dims else "1"
            if c == 1 and dims:
                parts.append(prod)
            elif c == int(c):
                parts.append(f"{int(c)}*{prod}" if dims else f"{int(c)}")
            else:
                parts.append(f"{c:g}*{prod}" if dims else f"{c:g}")
        return " + ".join(parts)


def class_polynomial(uiset: UISet, names) -> RectFootprintPolynomial:
    """Theorem-4 polynomial of one uniformly intersecting class.

    Classes whose reduced ``G`` has dependent rows have no Theorem-4 form;
    :class:`~repro.exceptions.SingularMatrixError` propagates.
    Single-reference classes yield just the volume term.
    """
    names = tuple(names)
    l = len(names)
    d: dict[tuple[int, ...], float] = {tuple(range(l)): 1.0}
    if uiset.size > 1 and np.any(uiset.spread()):
        u = spread_coefficients(uiset)
        for i, ui in enumerate(u):
            if ui:
                dims = tuple(j for j in range(l) if j != i)
                d[dims] = d.get(dims, 0.0) + float(ui)
    return RectFootprintPolynomial.from_dict(d, names)


def class_polynomial_from_u(u, names) -> RectFootprintPolynomial:
    """Theorem-4 polynomial from precomputed spread coefficients ``u``.

    Same expression as :func:`class_polynomial` without re-solving the
    rational system — the plan solver stores ``u`` once per structure
    and rebuilds the polynomial from it.
    """
    names = tuple(names)
    l = len(names)
    d: dict[tuple[int, ...], float] = {tuple(range(l)): 1.0}
    for i, ui in enumerate(u):
        if ui:
            dims = tuple(j for j in range(l) if j != i)
            d[dims] = d.get(dims, 0.0) + float(ui)
    return RectFootprintPolynomial.from_dict(d, names)


def loop_polynomial(accesses_or_sets, names) -> RectFootprintPolynomial:
    """Sum of class polynomials — the paper's total cost expression.

    Classes without a Theorem-4 form contribute their volume term only
    (with a conservative note: their true footprint is partition-dependent
    but lacks a closed polynomial; the numeric optimizer handles them
    exactly).
    """
    items = list(accesses_or_sets)
    sets = (
        items
        if items and isinstance(items[0], UISet)
        else partition_references(items)
    )
    names = tuple(names)
    total = RectFootprintPolynomial.from_dict({}, names)
    l = len(names)
    for s in sets:
        try:
            total = total + class_polynomial(s, names)
        except SingularMatrixError:
            total = total + RectFootprintPolynomial.from_dict(
                {tuple(range(l)): 1.0}, names
            )
    return total
