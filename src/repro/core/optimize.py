"""Tile-shape optimization (Section 3.6).

Minimise the cumulative footprint of one tile subject to the
load-balancing constraint ``|det L| = V`` (``V`` = iteration-space volume
divided by the processor count).

Three solvers:

* :func:`optimize_rectangular` — the closed-form Lagrange solution the
  paper derives in Examples 8-10.  For rectangular tiles the objective is
  ``Σ_i A_i · V / s_i`` with ``s_i`` the tile side in loop dimension ``i``
  and ``A_i = Σ_classes u_i`` the summed spread coefficients (Theorem 4);
  Lagrange multipliers give ``s_i ∝ A_i``.  The continuous optimum is then
  *integerised* against a processor-grid factorisation, evaluating the
  true Theorem-4 (or exact) cost for each candidate grid.
* :func:`optimize_parallelepiped` — general hyperparallelepiped tiles via
  constrained numerical minimisation of the Theorem 2 objective
  (scipy SLSQP, multiple deterministic starts).  This is the path that
  finds the skewed tiles of Examples 3/6.
* :func:`communication_free_partition` — detects when hyperplane
  directions exist that incur *zero* traffic (the Ramanujam & Sadayappan
  case the framework subsumes): integer vectors orthogonal to every
  data-sharing direction of every class.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from functools import partial
from itertools import combinations, product

import numpy as np

from ..exceptions import OptimizationError, SingularMatrixError
from ..lattice.points import LatticeCountCache
from ..lattice.snf import integer_kernel_basis, solve_integer
from ..obs.log import get_logger
from ..obs.metrics import get_registry
from ..obs.tracing import span as _span
from .anneal import AnnealConfig, anneal_parallelepiped
from .classify import UISet, partition_references
from .cumulative import (
    cumulative_footprint_rect,
    cumulative_footprint_size,
    cumulative_footprint_size_exact,
    spread_coefficients,
)
from .loopnest import IterationSpace
from .tiles import ParallelepipedTile, RectangularTile

__all__ = [
    "RectOptResult",
    "sharing_directions",
    "ParallelepipedOptResult",
    "optimize_rectangular",
    "optimize_parallelepiped",
    "PORTFOLIO_MEMBERS",
    "communication_free_partition",
    "factorizations",
    "rect_cost_coefficients",
]


logger = get_logger("core.optimize")


def _as_uisets(accesses_or_sets) -> list[UISet]:
    items = list(accesses_or_sets)
    if items and isinstance(items[0], UISet):
        return items
    return partition_references(items)


def rect_cost_coefficients(uisets, depth: int) -> np.ndarray:
    """Per-loop-dimension traffic coefficients ``A_i = Σ_classes u_i``.

    ``u`` are the Theorem-4 spread coefficients of each class.  Classes
    whose spread is zero (single references, or coincident references)
    contribute nothing — their footprint equals the tile volume, constant
    under the load-balance constraint ("need not figure in the
    optimization process", Example 8).

    Raises :class:`OptimizationError` if some class has dependent rows
    after column reduction (no Theorem-4 coefficients; use the numeric
    parallelepiped path or exact search instead).
    """
    a = np.zeros(depth, dtype=float)
    for s in _as_uisets(uisets):
        if s.size == 1:
            continue
        if not np.any(s.spread()):
            continue
        try:
            a += spread_coefficients(s)
        except SingularMatrixError as e:
            raise OptimizationError(
                f"class {s!r} has no Theorem-4 coefficients: {e}"
            ) from e
    return a


@dataclass(frozen=True)
class RectOptResult:
    """Outcome of rectangular tile optimization.

    Attributes
    ----------
    tile:
        The integerised tile (sides = iterations per dimension).
    grid:
        Processor counts per loop dimension (``Π grid = P``).
    predicted_cost:
        Cumulative footprint of ``tile`` under the scoring method used.
    continuous_sides:
        The un-integerised Lagrange optimum (``s_i ∝ A_i``).
    coefficients:
        The per-dimension traffic coefficients ``A_i``.
    """

    tile: RectangularTile
    grid: tuple[int, ...]
    predicted_cost: float
    continuous_sides: np.ndarray
    coefficients: np.ndarray


def _divisors(p: int) -> list[int]:
    """Sorted divisors of ``p`` by trial division up to ``sqrt(p)``."""
    small, large = [], []
    f = 1
    while f * f <= p:
        if p % f == 0:
            small.append(f)
            if f * f != p:
                large.append(p // f)
        f += 1
    return small + large[::-1]


def factorizations(p: int, l: int):
    """Yield all ordered factorizations of ``p`` into ``l`` positive factors.

    ``factorizations(12, 2)`` → (1,12), (2,6), (3,4), (4,3), (6,2), (12,1).
    Deterministic ascending order in the first factor.  Candidate factors
    are enumerated from the divisor list (``O(sqrt p)`` to build), not by
    scanning ``1..p`` — large prime-rich processor counts stay cheap.
    """
    if l < 1 or p < 1:
        raise ValueError("need p >= 1 and l >= 1")
    if l == 1:
        yield (p,)
        return
    for f in _divisors(p):
        for rest in factorizations(p // f, l - 1):
            yield (f, *rest)


def _exact_footprint(s: UISet, tile: RectangularTile, cache: LatticeCountCache) -> float:
    # The exact union size depends only on the class geometry (G and
    # offsets up to a common translation, Proposition 1) and the tile
    # sides — the memoisation key.
    key = (
        "cumulative-exact",
        s.g.shape,
        s.g.tobytes(),
        (s.offsets - s.offsets[0]).tobytes(),
        tuple(int(x) for x in tile.sides),
    )
    return cache.get_or_compute(
        key, lambda: float(cumulative_footprint_size_exact(s, tile))
    )


def _class_footprint(
    s: UISet,
    u: np.ndarray | None,
    tile: RectangularTile,
    scoring: str,
    cache: LatticeCountCache,
) -> float:
    if scoring == "exact":
        return _exact_footprint(s, tile, cache)
    if u is None:
        # No Theorem-4 coefficients (dependent rows): exact fallback,
        # as cumulative_footprint_rect would have raised.
        return _exact_footprint(s, tile, cache)
    # Theorem 4 with the precomputed u — same expression as
    # cumulative_footprint_rect evaluates, term for term.
    sides = tile.sides.astype(float)
    total = float(np.prod(sides))
    for i, ui in enumerate(u):
        total += float(ui) * float(np.prod(np.delete(sides, i)))
    return total


def _score_candidate(
    uisets: list[UISet],
    spread_u: list,
    kernels: list,
    tile: RectangularTile,
    grid: tuple[int, ...],
    scoring: str,
    cache: LatticeCountCache,
) -> float:
    """Per-tile footprint plus a write-sharing coherence penalty.

    A class whose ``G`` has a nonzero integer kernel re-touches the
    same element along kernel directions (e.g. matmul's ``C[i,j]``
    along ``k``).  Cutting such a direction makes ``m`` tiles write
    the same elements; each extra writer costs at least one
    invalidation + refetch per element, so write classes pay
    ``(m − 1) × footprint`` on top (Appendix A's "slightly more
    expensive communication").  Footprints alone cannot distinguish
    those grids — this term is what steers matmul to block tiles
    that keep ``C`` private.
    """
    total = 0.0
    for idx, s in enumerate(uisets):
        fp = _class_footprint(s, spread_u[idx], tile, scoring, cache)
        total += fp
        ker = kernels[idx]
        if s.has_write() and ker.size:
            m = 1
            for k, p_k in enumerate(grid):
                if p_k > 1 and np.any(ker[:, k] != 0):
                    m *= p_k
            total += (m - 1) * fp
    return total


def _candidate_tile(ints: np.ndarray, grid: tuple[int, ...]) -> RectangularTile:
    return RectangularTile(
        tuple(-(-int(n) // int(p)) for n, p in zip(ints, grid))
    )


def _score_grid_batch(
    uisets: list[UISet],
    spread_u: list,
    kernels: list,
    ints: np.ndarray,
    grids: list[tuple[int, ...]],
    scoring: str,
    cache_entries: list,
):
    """Worker: score a contiguous batch of grids with a private cache.

    Runs in a ``ProcessPoolExecutor`` child (must stay module-level for
    pickling).  The private cache is warm-started from the caller's
    exported entries; the new entries travel back so the caller can
    absorb them — the merged parent cache ends up with the same keys
    regardless of how the batches were split.
    """
    cache = LatticeCountCache()
    cache.absorb_entries(cache_entries)
    scores = [
        _score_candidate(
            uisets, spread_u, kernels, _candidate_tile(ints, grid), grid, scoring, cache
        )
        for grid in grids
    ]
    seed_keys = {k for k, _ in cache_entries}
    fresh = [(k, v) for k, v in cache.export_entries() if k not in seed_keys]
    return scores, fresh


def _parallel_scores(
    uisets: list[UISet],
    spread_u: list,
    kernels: list,
    ints: np.ndarray,
    feasible: list[tuple[int, ...]],
    scoring: str,
    cache: LatticeCountCache,
    workers: int,
) -> list[float]:
    """Fan the candidate grids out over a process pool; order-preserving.

    Contiguous batches keep cache locality (adjacent factorisations share
    tile sides); results are concatenated in submission order, so the
    caller's reduction sees exactly the serial candidate order.
    """
    from concurrent.futures import ProcessPoolExecutor

    nbatches = min(workers, len(feasible))
    bounds = [round(i * len(feasible) / nbatches) for i in range(nbatches + 1)]
    batches = [feasible[bounds[i] : bounds[i + 1]] for i in range(nbatches)]
    seed_entries = cache.export_entries()
    scores: list[float] = []
    with ProcessPoolExecutor(max_workers=nbatches) as pool:
        futures = [
            pool.submit(
                _score_grid_batch,
                uisets,
                spread_u,
                kernels,
                ints,
                batch,
                scoring,
                seed_entries,
            )
            for batch in batches
        ]
        for future in futures:
            batch_scores, fresh = future.result()
            scores.extend(batch_scores)
            cache.absorb_entries(fresh)
    return scores


def _continuous_lagrange(a: np.ndarray, extents: np.ndarray, volume: float) -> np.ndarray:
    """Solve ``min Σ A_i V/s_i s.t. Π s_i = V, 1 <= s_i <= N_i``.

    Interior solution is ``s_i ∝ A_i``; dimensions with ``A_i = 0`` are
    communication-free and take their full extent first; bound-capped
    dimensions are fixed iteratively and the rest re-solved.
    """
    l = len(a)
    s = np.zeros(l, dtype=float)
    free = list(range(l))
    vol = float(volume)
    # Communication-free dims: widen to the full extent (any leftover volume
    # shortfall is absorbed by the remaining dims).
    for i in sorted(free, key=lambda k: a[k]):
        if a[i] == 0 and len(free) > 1:
            s[i] = min(float(extents[i]), vol)
            vol = max(vol / s[i], 1.0)
            free.remove(i)
    # Iteratively apply s_i ∝ A_i, capping at extents.
    for _ in range(l + 1):
        if not free:
            break
        aa = a[free]
        # Π s = vol with s_i = t·A_i  =>  t = (vol / Π A_i)^(1/k)
        t = (vol / float(np.prod(aa))) ** (1.0 / len(free))
        cand = aa * t
        capped = [i for i, c in zip(free, cand) if c > extents[i]]
        floored = [i for i, c in zip(free, cand) if c < 1.0]
        if not capped and not floored:
            for i, c in zip(free, cand):
                s[i] = c
            break
        for i in capped:
            s[i] = float(extents[i])
            vol /= s[i]
            free.remove(i)
        for i in floored:
            if i in free:
                s[i] = 1.0
                free.remove(i)
        vol = max(vol, 1.0)
    else:  # pragma: no cover - loop always breaks within l+1 rounds
        pass
    for i in range(l):
        if s[i] == 0:
            s[i] = 1.0
    return s


def optimize_rectangular(
    accesses_or_sets,
    space: IterationSpace,
    processors: int,
    *,
    scoring: str = "theorem4",
    cache: LatticeCountCache | None = None,
    workers: int = 1,
    plan_cache=None,
) -> RectOptResult:
    """Find the best rectangular tile for ``P`` processors (Examples 8-10).

    1. Compute per-dimension coefficients ``A_i`` (Theorem 4 spreads).
    2. Continuous Lagrange optimum ``s_i ∝ A_i`` at volume
       ``V = |space| / P``.
    3. Integerise: enumerate processor-grid factorisations ``Π p_i = P``,
       score each candidate tile ``sides_i = ⌈N_i / p_i⌉`` with the real
       cumulative-footprint model (``scoring``: ``'theorem4'`` or
       ``'exact'``), and keep the cheapest.

    The returned grid is exact load balancing when ``p_i | N_i``; boundary
    tiles are smaller otherwise (paper: tiles equal "except at the
    boundaries of the iteration space").

    ``cache`` memoises the exact lattice enumerations of the grid search
    (many factorisations share tile sides, e.g. transposed grids of a
    square space).  Defaults to a fresh :class:`LatticeCountCache` per
    call; pass a shared instance to reuse counts across calls — e.g. a
    processor-count sweep over one nest, where every ``P`` re-scores
    overlapping side sets.

    ``workers > 1`` scores the factorisation candidates in parallel
    batches on a ``ProcessPoolExecutor``.  Each worker gets a private
    cache warm-started from ``cache``; new entries are merged back, and
    the result is identical to the serial search for any worker count
    (candidates keep their enumeration order through the deterministic
    ``(cost, distance, grid)`` reduction).

    ``plan_cache`` (a :class:`repro.core.plan.PlanCache`) consults the
    structure-keyed plan tier first: a usable solved plan reproduces this
    function's answer from its stored closed forms without running the
    grid search; an inapplicable or losing plan records a fallback and
    the numeric search below runs unchanged.  Plans model the default
    ``theorem4`` scoring only.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    uisets = _as_uisets(accesses_or_sets)
    l = space.depth
    extents = space.extents.astype(float)
    volume = float(space.volume) / float(processors)
    if processors < 1 or processors > space.volume:
        raise OptimizationError(
            f"cannot split {space.volume} iterations over {processors} processors"
        )
    if cache is None:
        cache = LatticeCountCache()
    if plan_cache is not None and scoring == "theorem4":
        from .plan import plan_optimize

        planned = plan_optimize(uisets, space, processors, cache=plan_cache)
        if planned is not None:
            return planned
    try:
        a = rect_cost_coefficients(uisets, l)
    except OptimizationError:
        # Some class has no Theorem-4 coefficients (dependent rows after
        # column reduction).  The grid search below still scores such
        # classes exactly; they just cannot steer the continuous seed, so
        # sum the coefficients of the classes that have them.
        logger.warning(
            "rectangular seed: a class has no Theorem-4 coefficients; "
            "seeding the grid search from the remaining classes"
        )
        a = np.zeros(l, dtype=float)
        for s in uisets:
            if s.size == 1 or not np.any(s.spread()):
                continue
            try:
                a += spread_coefficients(s)
            except SingularMatrixError:
                continue
    if not np.any(a):
        # No partition-sensitive traffic at all: any load-balanced tile is
        # optimal; pick the most compact grid.
        a = np.ones(l)
    cont = _continuous_lagrange(np.where(a > 0, a, 0.0), extents.astype(np.int64), volume)

    # Grid-invariant per-class quantities, computed once.  The scoring
    # loop visits every factorisation of P; re-deriving the exact rational
    # spread solve and the kernel basis per candidate dominated its cost.
    spread_u: list[np.ndarray | None] = []
    kernels: list[np.ndarray] = []
    for s in uisets:
        try:
            spread_u.append(spread_coefficients(s))
        except SingularMatrixError:
            spread_u.append(None)
        kernels.append(integer_kernel_basis(s.g))

    best_key: tuple[float, float, tuple[int, ...]] | None = None
    best_tile: RectangularTile | None = None
    best_grid: tuple[int, ...] | None = None
    ints = space.extents
    feasible = [
        grid
        for grid in factorizations(processors, l)
        if not any(p > n for p, n in zip(grid, ints))
    ]
    with _span(
        "optimize.rectangular.grid_search", processors=processors, workers=workers
    ):
        if workers == 1 or len(feasible) < 2 * workers:
            scores = [
                _score_candidate(
                    uisets,
                    spread_u,
                    kernels,
                    _candidate_tile(ints, grid),
                    grid,
                    scoring,
                    cache,
                )
                for grid in feasible
            ]
        else:
            scores = _parallel_scores(
                uisets, spread_u, kernels, ints, feasible, scoring, cache, workers
            )
        for grid, c in zip(feasible, scores):
            tile = _candidate_tile(ints, grid)
            # Deterministic tie-break: prefer grids closest to the continuous
            # optimum (ratio distance), then lexicographic.
            dist = sum(
                abs(math.log(sd / cs)) for sd, cs in zip(tile.sides, cont) if cs > 0
            )
            key = (c, dist, grid)
            if best_key is None or key < best_key:
                best_key, best_tile, best_grid = key, tile, grid
    if best_key is None or best_tile is None or best_grid is None:
        raise OptimizationError(
            f"no feasible processor grid: P={processors}, extents={ints.tolist()}"
        )
    return RectOptResult(
        tile=best_tile,
        grid=best_grid,
        predicted_cost=best_key[0],
        continuous_sides=cont,
        coefficients=a,
    )


@dataclass(frozen=True)
class ParallelepipedOptResult:
    """Outcome of general-tile optimization.

    ``l_matrix`` is the continuous optimum; ``tile`` its integer rounding
    (rows scaled to preserve volume approximately).  ``objective`` is the
    Theorem 2 cumulative footprint at the continuous optimum.

    ``winner`` names the portfolio member whose matrix was kept
    (``rectangular`` / ``slsqp`` / ``anneal``); ``member_objectives`` and
    ``member_seconds`` record, per member that ran, its best continuous
    objective (``None`` when the member produced nothing feasible) and
    its wall time — the raw material of the ``opt.portfolio.*`` metrics.
    """

    l_matrix: np.ndarray
    tile: ParallelepipedTile
    objective: float
    rectangular_objective: float
    improvement: float = field(default=0.0)
    winner: str = "slsqp"
    member_objectives: dict = field(default_factory=dict)
    member_seconds: dict = field(default_factory=dict)


def _theorem2_objective(uisets: list[UISet], l_flat: np.ndarray, l_dim: int) -> float:
    lm = l_flat.reshape(l_dim, l_dim)
    tile_like = _FloatTile(lm)
    total = 0.0
    for s in uisets:
        total += cumulative_footprint_size(s, tile_like)
    return total


class _FloatTile:
    """Duck-typed tile carrying a float L for the continuous optimizer."""

    def __init__(self, lm: np.ndarray):
        self.l_matrix = lm


#: Portfolio members in deterministic merge-priority order: on objective
#: ties the earlier name wins, and the implicit rectangular baseline
#: always outranks both (so a member that merely matches the diagonal
#: never displaces it).
PORTFOLIO_MEMBERS = ("slsqp", "anneal")


def _slsqp_starts(
    uisets: list[UISet],
    l: int,
    v: float,
    sides: np.ndarray,
    *,
    seed: int,
    extra_starts: int,
) -> list[np.ndarray]:
    """The deterministic multi-start set of the SLSQP member.

    * the rectangular Lagrange optimum (diagonal L);
    * for each class, a skew start whose first row is aligned with the
      class spread direction mapped back to iteration space (the
      direction that internalises the inter-reference reuse, cf.
      Example 3), plus a strongly-skewed long-thin variant;
    * ``extra_starts`` seeded random perturbations.
    """
    diag_start = np.diag(sides)
    side = float(np.mean(sides))
    starts = [diag_start]
    for s in uisets:
        if s.size < 2 or not np.any(s.spread()):
            continue
        try:
            u = spread_coefficients(s)
        except SingularMatrixError:
            continue
        if not np.any(u):
            continue
        skew = diag_start.copy()
        direction = u / max(np.linalg.norm(u), 1e-12)
        norm0 = np.linalg.norm(skew[0])
        skew[0] = direction * norm0
        starts.append(skew)
        # Also a strongly-skewed variant (long thin tile along the reuse
        # direction).
        skew2 = np.eye(l)
        skew2[0] = direction * v ** (1.0 / l) * l
        for j in range(1, l):
            skew2[j, j] = (v / np.linalg.norm(skew2[0])) ** (1.0 / max(l - 1, 1))
        starts.append(skew2)
    rng = np.random.default_rng(seed)
    for _ in range(extra_starts):
        starts.append(diag_start + rng.normal(scale=0.3 * side, size=(l, l)))
    return starts


def _slsqp_member(
    uisets: list[UISet],
    l: int,
    v: float,
    sides: np.ndarray,
    max_extents: np.ndarray,
    *,
    seed: int,
    extra_starts: int,
    deadline: float | None = None,
) -> tuple[np.ndarray | None, float]:
    """Multi-start SLSQP minimisation of the Theorem 2 objective.

    Returns ``(best_x_matrix, best_f)`` or ``(None, inf)`` when no start
    converged to a point satisfying ``|det L - V|/V < 1e-3``.  With a
    ``deadline`` (``time.monotonic()`` instant), remaining starts are
    skipped once it passes — each start that does run is still complete,
    so results under a budget are a deterministic *prefix* of the
    budget-less run.
    """
    from scipy.optimize import NonlinearConstraint, minimize

    var_bounds = [
        (-float(max_extents[j]), float(max_extents[j]))
        for _i in range(l)
        for j in range(l)
    ]
    starts = _slsqp_starts(uisets, l, v, sides, seed=seed, extra_starts=extra_starts)
    det_con = NonlinearConstraint(
        lambda x: np.linalg.det(x.reshape(l, l)), v, v
    )
    best_x = None
    best_f = np.inf
    with _span("optimize.parallelepiped.minimize", starts=len(starts)):
        for s0 in starts:
            if deadline is not None and time.monotonic() >= deadline:
                break
            # Fix the determinant sign of the start.
            if np.linalg.det(s0) < 0:
                s0 = s0.copy()
                s0[0] = -s0[0]
            try:
                res = minimize(
                    lambda x: _theorem2_objective(uisets, x, l),
                    np.clip(s0.ravel(), [b[0] for b in var_bounds], [b[1] for b in var_bounds]),
                    method="SLSQP",
                    constraints=[det_con],
                    bounds=var_bounds,
                    options={"maxiter": 300, "ftol": 1e-9},
                )
            except (ValueError, FloatingPointError):  # pragma: no cover - scipy hiccups
                continue
            if res.success and res.fun < best_f:
                det = np.linalg.det(res.x.reshape(l, l))
                if abs(det - v) / v < 1e-3:
                    best_f = float(res.fun)
                    best_x = res.x.reshape(l, l).copy()
    return best_x, best_f


def _anneal_member(
    uisets: list[UISet],
    l: int,
    v: float,
    sides: np.ndarray,
    max_extents: np.ndarray,
    *,
    seed: int,
    config=None,
    deadline: float | None = None,
) -> tuple[np.ndarray | None, float]:
    """Seeded simulated annealing over ``L`` (see :mod:`repro.core.anneal`)."""
    result = anneal_parallelepiped(
        partial(_theorem2_objective, uisets, l_dim=l),
        np.diag(sides),
        v,
        max_extents=max_extents,
        seed=seed,
        config=config,
        deadline=deadline,
    )
    if result is None:
        return None, np.inf
    return result.l_matrix, float(result.objective)


def _run_portfolio_member(
    member: str,
    uisets: list[UISet],
    l: int,
    v: float,
    sides: np.ndarray,
    max_extents: np.ndarray,
    seed: int,
    extra_starts: int,
    budget_s: float | None,
    anneal_config,
) -> tuple[str, np.ndarray | None, float, float]:
    """Run one portfolio member; module-level so a process pool can pickle it.

    The budget travels as a *duration* (not an absolute deadline): a pool
    child's clock starts when the task does, so each member gets at most
    ``budget_s`` of its own wall time.  Returns
    ``(member, matrix_or_None, objective, elapsed_s)``.
    """
    deadline = time.monotonic() + budget_s if budget_s is not None else None
    t0 = time.perf_counter()
    if member == "slsqp":
        lm, obj = _slsqp_member(
            uisets, l, v, sides, max_extents,
            seed=seed, extra_starts=extra_starts, deadline=deadline,
        )
    elif member == "anneal":
        lm, obj = _anneal_member(
            uisets, l, v, sides, max_extents,
            seed=seed, config=anneal_config, deadline=deadline,
        )
    else:  # pragma: no cover - caller validates
        raise ValueError(f"unknown portfolio member {member!r}")
    return member, lm, obj, time.perf_counter() - t0


def optimize_parallelepiped(
    accesses_or_sets,
    volume: float,
    *,
    depth: int | None = None,
    extra_starts: int = 4,
    seed: int = 0,
    max_extents=None,
    members: tuple[str, ...] = PORTFOLIO_MEMBERS,
    budget_s: float | None = None,
    workers: int = 1,
    anneal_config=None,
) -> ParallelepipedOptResult:
    """Minimise the Theorem 2 objective over hyperparallelepiped tiles.

    Runs a *portfolio* of optimizers over
    ``Σ_classes [|det LG| + Σ_i |det LG_{i→â}|]`` subject to
    ``|det L| = V``:

    * ``slsqp`` — deterministic multi-start constrained minimisation
      (the path that finds the skewed tiles of Examples 3/6);
    * ``anneal`` — seeded simulated annealing over ``L`` with
      ``|det L| = V`` row-rescale projection (:mod:`repro.core.anneal`),
      the robust member when SLSQP's starts all fail at depth ≥ 3;
    * the rectangular Lagrange diagonal is always an implicit member, so
      the result is never Theorem-2-costlier than the rectangular
      baseline and ``improvement`` is never negative.

    The merge is deterministic: candidates sort by ``(objective,
    member priority)`` — rectangular baseline first on ties, then the
    ``members`` order — and the cheapest candidate that *rounds to a
    feasible integer tile* (``|det L|`` within tolerance of ``V``) wins.

    ``budget_s`` caps each member's wall time (the ``--opt-budget``
    knob).  Members stop at deterministic checkpoints (between SLSQP
    starts, every few annealing steps), so a budget can truncate the
    search — budget-less runs are bit-reproducible.  ``workers > 1``
    fans the members out over a process pool (one task per member;
    results are merged in the same deterministic order as the serial
    path).

    ``max_extents`` bounds each entry of ``L`` (tile edges cannot exceed
    the iteration-space extents — without this, objectives like Example
    3's improve without limit as the skew grows).  Defaults to
    ``3·V^(1/l)`` per dimension.

    Returns the best continuous ``L`` plus an integer rounding, with the
    winning member and per-member objectives/timings recorded on the
    result and in the ``opt.portfolio.*`` metrics.
    """
    uisets = _as_uisets(accesses_or_sets)
    if depth is None:
        depth = uisets[0].g.shape[0]
    l = depth
    v = float(volume)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    unknown = [m for m in members if m not in PORTFOLIO_MEMBERS]
    if unknown:
        raise ValueError(
            f"unknown portfolio member(s) {unknown}; known: {PORTFOLIO_MEMBERS}"
        )
    if budget_s is not None and budget_s <= 0:
        raise ValueError(f"budget_s must be positive, got {budget_s}")
    if max_extents is None:
        max_extents = np.full(l, 3.0 * v ** (1.0 / l))
    else:
        max_extents = np.asarray(max_extents, dtype=float)

    # Rectangular baseline: the validated Lagrange sides seed every
    # member's start and anchor the reported improvement.
    try:
        a = rect_cost_coefficients(uisets, l)
    except OptimizationError:
        a = np.ones(l)
    if not np.any(a):
        a = np.ones(l)
    # Communication-free dims (a_i = 0) would zero the naive s_i ∝ a_i
    # start; the Lagrange solver widens them to the full extent instead.
    sides = _continuous_lagrange(a, max_extents, v)
    diag_start = np.diag(sides)
    rect_obj = _theorem2_objective(uisets, diag_start.ravel(), l)

    # Run the members — in parallel (one pool task each) or serially in
    # the declared order, each under its own wall-time budget.
    ordered = [m for m in PORTFOLIO_MEMBERS if m in members]
    outcomes: dict[str, tuple[np.ndarray | None, float, float]] = {}
    with _span(
        "optimize.portfolio", members=len(ordered), workers=workers
    ):
        if workers > 1 and len(ordered) > 1:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=min(workers, len(ordered))) as pool:
                futures = [
                    pool.submit(
                        _run_portfolio_member,
                        m, uisets, l, v, sides, max_extents,
                        seed, extra_starts, budget_s, anneal_config,
                    )
                    for m in ordered
                ]
                for future in futures:
                    name, lm, obj, elapsed = future.result()
                    outcomes[name] = (lm, obj, elapsed)
        else:
            for m in ordered:
                name, lm, obj, elapsed = _run_portfolio_member(
                    m, uisets, l, v, sides, max_extents,
                    seed, extra_starts, budget_s, anneal_config,
                )
                outcomes[name] = (lm, obj, elapsed)

    if "slsqp" in outcomes and outcomes["slsqp"][0] is None:
        # Graceful degradation (the pre-portfolio failure mode): a valid
        # nest must still partition, and the rectangular baseline — plus
        # the anneal member, when enabled — keeps the portfolio feasible.
        logger.warning(
            "parallelepiped optimization: no SLSQP start converged; "
            "portfolio falls back to the remaining members"
        )

    # Deterministic merge: cheapest objective wins; ties go to the
    # rectangular baseline, then to earlier member priority.  A candidate
    # only wins if it rounds to a feasible integer tile.
    candidates: list[tuple[float, int, str, np.ndarray]] = [
        (rect_obj, 0, "rectangular", diag_start)
    ]
    for priority, name in enumerate(ordered, start=1):
        lm, obj, _elapsed = outcomes[name]
        if lm is not None and np.isfinite(obj):
            candidates.append((obj, priority, name, lm))
    candidates.sort(key=lambda t: (t[0], t[1]))

    winner = None
    tile = None
    best_obj = np.inf
    best_lm = None
    round_error: OptimizationError | None = None
    for obj, _priority, name, lm in candidates:
        try:
            tile = _round_tile(lm, uisets=uisets, volume=v)
        except OptimizationError as e:
            round_error = e
            continue
        winner, best_obj, best_lm = name, obj, lm
        break
    if winner is None or tile is None or best_lm is None:
        raise OptimizationError(
            f"no portfolio member produced a feasible integer tile "
            f"(members: rectangular + {', '.join(ordered)}): {round_error}"
        )

    reg = get_registry()
    reg.counter("opt.portfolio.winner", member=winner).inc()
    for name in ordered:
        _lm, _obj, elapsed = outcomes[name]
        reg.counter("opt.portfolio.member_runs", member=name).inc()
        reg.counter("opt.portfolio.member_ms", member=name).inc(
            int(elapsed * 1000)
        )

    member_objectives = {"rectangular": float(rect_obj)}
    member_seconds = {}
    for name in ordered:
        lm, obj, elapsed = outcomes[name]
        member_objectives[name] = float(obj) if lm is not None else None
        member_seconds[name] = float(elapsed)

    return ParallelepipedOptResult(
        l_matrix=best_lm,
        tile=tile,
        objective=float(best_obj),
        rectangular_objective=rect_obj,
        # The rectangular diagonal is a portfolio member, so a worse
        # member can only win when the diagonal itself failed to round —
        # never report a negative improvement for returning it.
        improvement=max(0.0, (rect_obj - best_obj) / rect_obj) if rect_obj else 0.0,
        winner=winner,
        member_objectives=member_objectives,
        member_seconds=member_seconds,
    )


def _round_tile(
    lm: np.ndarray,
    *,
    uisets: list[UISet] | None = None,
    volume: float | None = None,
    tol: float = 0.5,
) -> ParallelepipedTile:
    """Round a float ``L`` to an integer tile honouring load balance.

    Naive per-entry rounding can silently drift ``|det L|`` arbitrarily
    far from the load-balance volume ``V`` — or turn singular and give
    up.  Instead, search the integer neighbourhood of ``lm``: every
    floor/ceil corner for ``l <= 3`` plus the plain rounding and its
    diagonal bumps.  Candidates must be nonsingular and, when ``volume``
    is given, keep ``|det L|`` within ``tol·V`` of ``V``; among those the
    Theorem-2 objective decides (entry distance to ``lm`` breaks ties,
    and stands in for the objective when no classes are supplied).
    Raises :class:`OptimizationError` only when no neighbour satisfies
    the volume tolerance.
    """
    l = lm.shape[0]
    rounded = np.round(lm).astype(np.int64)
    candidates: list[np.ndarray] = [rounded]
    if l <= 3:
        lo = np.floor(lm).astype(np.int64).ravel()
        hi = np.ceil(lm).astype(np.int64).ravel()
        choices = [sorted({int(x), int(y)}) for x, y in zip(lo, hi)]
        for combo in product(*choices):
            candidates.append(np.array(combo, dtype=np.int64).reshape(l, l))
    # Diagonal bumps in both directions: rounding can overshoot V as well
    # as undershoot it, and an overshot |det| needs a −1 step to recover.
    for bump in range(1, 4):
        candidates.append(rounded + bump * np.eye(l, dtype=np.int64))
        candidates.append(rounded - bump * np.eye(l, dtype=np.int64))

    best: tuple | None = None
    best_cand: np.ndarray | None = None
    seen: set[bytes] = set()
    for cand in candidates:
        key = cand.tobytes()
        if key in seen:
            continue
        seen.add(key)
        det = abs(float(np.linalg.det(cand.astype(float))))
        if det < 0.5:
            continue
        if volume is not None and abs(det - volume) > tol * volume:
            continue
        if uisets:
            try:
                score = _theorem2_objective(uisets, cand.astype(float).ravel(), l)
            except SingularMatrixError:  # pragma: no cover - defensive
                continue
        else:
            score = 0.0
        vol_err = abs(det - volume) if volume is not None else 0.0
        rank = (score, vol_err, float(np.abs(cand - lm).sum()), key)
        if best is None or rank < best:
            best, best_cand = rank, cand
    if best_cand is None:
        raise OptimizationError(
            f"could not round {lm} to a nonsingular integer tile with "
            f"|det L| within {tol:.0%} of V={volume}"
        )
    return ParallelepipedTile(best_cand)


def sharing_directions(accesses_or_sets) -> np.ndarray:
    """Iteration-space directions along which tiles share data.

    Rows are (a) the integer kernel basis of each class's ``G``
    (self-reuse) and (b) one particular solution ``x0`` per intersecting
    reference pair (``x0·G = a_s − a_r``).  Any partition that never
    separates two iterations differing by a row (or an integer combination
    of rows plus kernel moves) is communication-free.
    """
    uisets = _as_uisets(accesses_or_sets)
    rows: list[np.ndarray] = []
    for s in uisets:
        rows.extend(integer_kernel_basis(s.g))
        offs = s.offsets
        for r_i, s_i in combinations(range(s.size), 2):
            x0 = solve_integer(s.g, offs[s_i] - offs[r_i])
            if x0 is not None and np.any(x0):
                rows.append(x0)
    if not rows:
        depth = uisets[0].g.shape[0] if uisets else 0
        return np.empty((0, depth), dtype=np.int64)
    return np.vstack(rows)


def communication_free_partition(accesses_or_sets, depth: int) -> np.ndarray:
    """Hyperplane directions that induce zero inter-tile traffic.

    Two iterations ``i1, i2`` share data through class members ``r, s``
    iff ``i1 − i2 ∈ x0_{rs} + ker_Z(G)`` where ``x0_{rs}·G = a_s − a_r``.
    A family of parallel cutting hyperplanes ``h·i = c`` is
    communication-free iff ``h`` is orthogonal to *every* such sharing
    direction — the particular solutions for all intersecting pairs and
    the kernel basis of every class's ``G``.

    Returns a ``(k, depth)`` integer matrix whose rows are independent
    communication-free hyperplane normals (empty when none exist, e.g.
    Example 10).  Cutting along all ``k`` rows yields the
    Ramanujam–Sadayappan communication-free partition; ``k = 0``
    reproduces their "no communication-free partition exists" verdict,
    where this framework still optimises (Section 5).
    """
    c = sharing_directions(_as_uisets(accesses_or_sets))
    if c.shape[0] == 0:
        # Everything is private per iteration: every direction is free.
        return np.eye(depth, dtype=np.int64)
    # h must satisfy c · hᵀ = 0  ⇔  h ∈ integer kernel of cᵀ (as rows act
    # from the left): x·(cᵀ) = 0.
    return integer_kernel_basis(c.T)
