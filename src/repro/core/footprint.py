"""Footprint of a tile with respect to a single reference (Section 3.4).

The footprint (Definition 3) is the set of array elements touched through
one reference by the iterations of one tile.  Its *size* is what the
partitioning cost model needs.  This module provides:

* :func:`footprint_size_exact` — the enumeration oracle (any tile, any G).
* :func:`footprint_det_size` — the continuous estimate ``|det L·G′|``
  (Equation 2) after column reduction.
* :func:`footprint_size` — the best exact/closed form the paper's theory
  licenses for the given ``(G, tile)``:

  ======================  =========================================
  condition               method
  ======================  =========================================
  rows of G independent   Theorem 5: footprint = tile point count
  rect tile, d = 1        Section 3.8 closed forms / enumeration
  G unimodular            Theorem 1: integer points of S(LG)
  otherwise               exact enumeration
  ======================  =========================================

Zero columns are always dropped first (Example 1), and dependent columns
reduced per Section 3.4.1 / Example 7.
"""

from __future__ import annotations

import numpy as np

from .._util import int_det, int_rank
from ..lattice.points import DEFAULT_LATTICE_CACHE
from .affine import AffineRef
from .tiles import ParallelepipedTile, RectangularTile

__all__ = [
    "footprint_size",
    "footprint_size_exact",
    "footprint_det_size",
    "footprint_points",
]


def footprint_points(ref: AffineRef, tile: ParallelepipedTile, *, closed: bool | None = None) -> np.ndarray:
    """All distinct data points of the footprint (enumeration, Def 3).

    ``closed`` selects the tile boundary convention; defaults to the
    natural one per tile type (half-open for :class:`RectangularTile`
    whose ``sides`` already count iterations, closed for general
    parallelepipeds as in the paper's figures).
    """
    if closed is None:
        closed = not isinstance(tile, RectangularTile)
    iters = tile.enumerate_iterations(closed=closed)
    return np.unique(ref.map_points(iters), axis=0)


def footprint_size_exact(ref: AffineRef, tile: ParallelepipedTile, *, closed: bool | None = None) -> int:
    """Exact footprint size by enumeration — the validation oracle."""
    return int(footprint_points(ref, tile, closed=closed).shape[0])


def footprint_det_size(ref: AffineRef, tile: ParallelepipedTile) -> float:
    """Equation 2: ``|det(L·G′)|`` — the continuous-volume estimate.

    ``G′`` is the reference matrix after zero-column drop and
    dependent-column reduction (Section 3.4.1), making ``L·G′`` square.
    Boundary points are not included ("for brevity, we will drop explicit
    mention of the integer points on the boundary", Section 3.4).
    """
    r = ref.drop_zero_columns()
    r = r.reduce_columns()
    lg = tile.l_matrix @ r.g
    if lg.shape[0] != lg.shape[1]:
        # rank(G) < l: the parallelepiped is degenerate in data space; its
        # d′-volume is not a footprint estimate the paper defines.  Fall
        # back to the exact count.
        return float(footprint_size_exact(ref, tile))
    return float(abs(int_det(lg)))


def footprint_size(ref: AffineRef, tile: ParallelepipedTile) -> int:
    """Best exact footprint size available for ``(ref, tile)``.

    Dispatches per the table in the module docstring; always exact
    (falls back to enumeration rather than approximate).
    """
    r = ref.drop_zero_columns()
    g = r.g
    l = g.shape[0]

    # Theorem 5: independent rows => G injective => footprint size equals
    # the number of iterations in the tile.
    if int_rank(g) == l:
        if isinstance(tile, RectangularTile):
            return tile.iterations
        return int(tile.enumerate_iterations(closed=True).shape[0])

    # Rows dependent: the map collapses iterations.
    if isinstance(tile, RectangularTile):
        r = r.reduce_columns()
        g = r.g
        if g.shape[1] == 1:
            # 1-D array case (Section 3.8): exact closed forms for l<=2 and
            # large boxes, memoised enumeration (the paper's "table
            # lookup") otherwise.
            from ..lattice.points import DEFAULT_FOOTPRINT_TABLE

            return DEFAULT_FOOTPRINT_TABLE.lookup(g[:, 0], tile.extents)
        if int_rank(g) == 1:
            # All rows are multiples of one primitive direction: the image
            # lies on a line and the count is a 1-D problem (Section 3.8's
            # l = 2 closed-form case, for any d).  Write g_k = c_k * v with
            # v the primitive direction; distinct points = distinct sums
            # of the c_k over the tile box.
            from .._util import vector_gcd
            from ..lattice.points import DEFAULT_FOOTPRINT_TABLE as _TABLE

            pivot = next(row for row in g if row.any())
            v = pivot // vector_gcd(pivot)
            j = int(np.nonzero(v)[0][0])
            coeffs = [int(row[j]) // int(v[j]) for row in g]
            return _TABLE.lookup(coeffs, tile.extents)
        return DEFAULT_LATTICE_CACHE.count_distinct_images(g, tile.extents)

    # General parallelepiped with dependent rows: enumerate.
    return footprint_size_exact(r, tile)


def footprint_size_theorem1(ref: AffineRef, tile: ParallelepipedTile) -> int:
    """Theorem 1 count: integer points on or inside ``S(L·G)``.

    Valid (equal to the true footprint) when ``G`` is unimodular; exposed
    separately so tests can exercise the theorem's sufficiency and its
    failure modes for non-unimodular ``G``.
    """
    r = ref.drop_zero_columns().reduce_columns()
    lg = tile.l_matrix @ r.g
    if lg.shape[0] != lg.shape[1]:
        raise ValueError("Theorem 1 needs a square L·G (full-rank reference)")
    return DEFAULT_LATTICE_CACHE.parallelepiped_lattice_points(lg)


__all__.append("footprint_size_theorem1")
