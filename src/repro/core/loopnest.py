"""Loop-nest intermediate representation (Figure 1 / Figure 9).

A :class:`LoopNest` is the single most general structure the paper
considers: a perfect nest of ``Doall`` loops, optionally wrapped in
sequential ``Doseq`` loops (Figure 9), whose body makes affine array
accesses.  Bounds are integer constants (rectangular iteration space,
Section 2.1) and strides are one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import as_int_vector, box_volume
from .affine import AccessKind, AffineRef, ArrayAccess

__all__ = ["Loop", "LoopNest", "IterationSpace"]


@dataclass(frozen=True)
class Loop:
    """One loop level: ``Doall (index, lower, upper)`` (inclusive bounds)."""

    index: str
    lower: int
    upper: int
    parallel: bool = True

    def __post_init__(self):
        if self.upper < self.lower:
            raise ValueError(
                f"loop {self.index}: upper bound {self.upper} < lower {self.lower}"
            )

    @property
    def trip_count(self) -> int:
        return self.upper - self.lower + 1


@dataclass(frozen=True)
class IterationSpace:
    """The rectangular integer box swept by the parallel loops."""

    lower: np.ndarray
    upper: np.ndarray

    def __init__(self, lower, upper):
        lower = as_int_vector(lower, name="lower")
        upper = as_int_vector(upper, name="upper")
        if lower.shape != upper.shape:
            raise ValueError("lower/upper must have equal length")
        if np.any(upper < lower):
            raise ValueError("empty iteration space")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @property
    def depth(self) -> int:
        return int(self.lower.shape[0])

    @property
    def extents(self) -> np.ndarray:
        """Trip count per dimension."""
        return self.upper - self.lower + 1

    @property
    def volume(self) -> int:
        """Total number of iterations."""
        return box_volume(self.lower, self.upper)

    def contains(self, point) -> bool:
        p = as_int_vector(point, name="point")
        return bool(np.all(p >= self.lower) and np.all(p <= self.upper))


@dataclass(frozen=True)
class LoopNest:
    """A perfect parallel loop nest with affine body accesses.

    Parameters
    ----------
    loops:
        The ``Doall`` levels, outermost first.  These define the
        partitionable iteration space.
    accesses:
        The affine array accesses of the loop body.
    sequential_loops:
        Optional enclosing ``Doseq`` levels (Figure 9).  They do not enter
        the iteration space being partitioned, but their presence means the
        body re-executes, turning first-time misses into steady-state
        coherence traffic (Section 3.6).
    """

    loops: tuple[Loop, ...]
    accesses: tuple[ArrayAccess, ...]
    sequential_loops: tuple[Loop, ...] = field(default=())

    def __init__(self, loops, accesses, sequential_loops=()):
        loops = tuple(loops)
        if not loops:
            raise ValueError("a loop nest needs at least one parallel loop")
        accesses = tuple(
            a if isinstance(a, ArrayAccess) else ArrayAccess(a) for a in accesses
        )
        depth = len(loops)
        for acc in accesses:
            if acc.ref.loop_depth != depth:
                raise ValueError(
                    f"reference {acc.ref!r} has G with {acc.ref.loop_depth} rows "
                    f"but the nest has depth {depth}"
                )
        object.__setattr__(self, "loops", loops)
        object.__setattr__(self, "accesses", accesses)
        object.__setattr__(self, "sequential_loops", tuple(sequential_loops))

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def index_names(self) -> tuple[str, ...]:
        return tuple(l.index for l in self.loops)

    @property
    def space(self) -> IterationSpace:
        return IterationSpace(
            [l.lower for l in self.loops], [l.upper for l in self.loops]
        )

    @property
    def references(self) -> tuple[AffineRef, ...]:
        return tuple(a.ref for a in self.accesses)

    @property
    def has_sequential_wrapper(self) -> bool:
        return bool(self.sequential_loops)

    def arrays(self) -> tuple[str, ...]:
        """Distinct array names in source order."""
        seen: dict[str, None] = {}
        for a in self.accesses:
            seen.setdefault(a.ref.array, None)
        return tuple(seen)

    def accesses_to(self, array: str) -> tuple[ArrayAccess, ...]:
        return tuple(a for a in self.accesses if a.ref.array == array)

    def writes(self) -> tuple[ArrayAccess, ...]:
        """Write-like accesses (writes + sync accumulates, Appendix A)."""
        return tuple(a for a in self.accesses if a.kind.is_write_like)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        heads = [f"Doseq({l.index},{l.lower},{l.upper})" for l in self.sequential_loops]
        heads += [f"Doall({l.index},{l.lower},{l.upper})" for l in self.loops]
        body = "; ".join(repr(a) for a in self.accesses)
        return " ".join(heads) + " { " + body + " }"

    # -- convenience constructors ---------------------------------------
    @staticmethod
    def from_subscripts(
        bounds: dict[str, tuple[int, int]],
        body: list[tuple[str, list[dict[str, int] | int], str]],
        sequential: dict[str, tuple[int, int]] | None = None,
    ) -> "LoopNest":
        """Build a nest without going through the parser.

        ``bounds`` maps index name → (lower, upper) in nesting order
        (Python 3.7+ dicts preserve order).  ``body`` lists accesses as
        ``(array, subscripts, kind)``, each subscript being either a dict
        ``{index_name: coeff, "": constant}`` or a plain int constant.

        Example — the Example 9 nest::

            LoopNest.from_subscripts(
                {"i": (1, N), "j": (1, N)},
                [("A", [{"i": 1}, {"j": 1}], "write"),
                 ("B", [{"i": 1, "": -2}, {"j": 1}], "read")],
            )
        """
        names = list(bounds)
        loops = [Loop(n, bounds[n][0], bounds[n][1]) for n in names]
        seq = [
            Loop(n, lo, hi, parallel=False)
            for n, (lo, hi) in (sequential or {}).items()
        ]
        accesses = []
        for array, subscripts, kind in body:
            d = len(subscripts)
            g = np.zeros((len(names), d), dtype=np.int64)
            a = np.zeros(d, dtype=np.int64)
            for c, sub in enumerate(subscripts):
                if isinstance(sub, int):
                    a[c] = sub
                    continue
                for key, coeff in sub.items():
                    if key == "":
                        a[c] = coeff
                    else:
                        g[names.index(key), c] = coeff
            accesses.append(ArrayAccess(AffineRef(array, g, a), AccessKind(kind)))
        return LoopNest(loops, accesses, sequential_loops=seq)
