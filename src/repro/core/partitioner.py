"""Top-level loop partitioning driver (the compiler pass of Section 4).

:class:`LoopPartitioner` glues the pipeline together:

1. classify the body references into uniformly intersecting sets;
2. detect communication-free hyperplane directions (R&S subsumption);
3. optimise the tile shape — rectangular closed form by default (the
   Alewife implementation's scope), general hyperparallelepipeds on
   request;
4. report predictions alongside the partition so callers (codegen,
   simulator, benchmarks) can check them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import OptimizationError, PartitionError
from ..obs.log import get_logger
from ..obs.tracing import span
from .classify import UISet, partition_references
from .cost import TrafficEstimate, estimate_traffic
from .loopnest import LoopNest
from .optimize import (
    ParallelepipedOptResult,
    RectOptResult,
    communication_free_partition,
    optimize_parallelepiped,
    optimize_rectangular,
    sharing_directions,
)
from .tiles import ParallelepipedTile, RectangularTile, Tiling

__all__ = ["PartitionResult", "LoopPartitioner"]

logger = get_logger("core.partitioner")


@dataclass(frozen=True)
class PartitionResult:
    """A chosen loop partition plus the analysis that produced it.

    Attributes
    ----------
    tile:
        The tile at the origin (Definition 2) — rectangular unless the
        general optimizer was requested and won.
    grid:
        Processor grid per dimension for rectangular tiles (``None`` for
        parallelepipeds).
    uisets:
        The uniformly intersecting classes of the body.
    comm_free_basis:
        Integer normals of communication-free hyperplane families
        (possibly empty) — nonempty reproduces Ramanujam & Sadayappan.
    estimate:
        Predicted per-tile traffic for the chosen tile.
    method:
        Which optimizer produced the tile.
    """

    tile: ParallelepipedTile
    grid: tuple[int, ...] | None
    uisets: tuple[UISet, ...]
    comm_free_basis: np.ndarray
    sharing: np.ndarray
    estimate: TrafficEstimate
    method: str
    rect_result: RectOptResult | None = None
    pepiped_result: ParallelepipedOptResult | None = None

    @property
    def is_communication_free(self) -> bool:
        """True when no array element is touched from two different tiles.

        A sharing direction ``d`` crosses tile boundaries iff some cutting
        dimension separates iterations ``i`` and ``i + d``.  For
        rectangular grids, dimension ``k`` cuts iff ``grid[k] > 1``, so the
        partition is communication-free exactly when every sharing
        direction is zero on all cut dimensions.  (The dilation terms of
        :attr:`estimate` are an interior-tile proxy and over-report for
        strip partitions spanning a whole dimension — e.g. Example 2's
        partition (a).)
        """
        if self.sharing.shape[0] == 0:
            return True
        if self.grid is not None:
            cut = [k for k, p in enumerate(self.grid) if p > 1]
            return bool(np.all(self.sharing[:, cut] == 0))
        # General parallelepiped: every direction is cut; free only if the
        # sharing rows are all zero (handled above).
        return False


class LoopPartitioner:
    """Partition a :class:`LoopNest` for ``processors`` processors.

    Parameters
    ----------
    nest:
        The loop nest to partition.
    processors:
        Number of equal-size tiles to produce (``P``).

    Examples
    --------
    >>> from repro.core import LoopNest
    >>> nest = LoopNest.from_subscripts(
    ...     {"i": (1, 32), "j": (1, 32)},
    ...     [("A", [{"i": 1}, {"j": 1}], "write"),
    ...      ("B", [{"i": 1, "": -1}, {"j": 1}], "read"),
    ...      ("B", [{"i": 1, "": 1}, {"j": 1}], "read")],
    ... )
    >>> result = LoopPartitioner(nest, processors=16).partition()
    >>> result.tile.sides.tolist()   # all spread is along i
    [2, 32]
    """

    def __init__(self, nest: LoopNest, processors: int):
        if processors < 1:
            raise PartitionError(f"need at least 1 processor, got {processors}")
        self.nest = nest
        self.processors = int(processors)
        with span("partition.classify", references=len(nest.accesses)):
            self.uisets = tuple(partition_references(nest.accesses))

    # ------------------------------------------------------------------
    def comm_free_basis(self) -> np.ndarray:
        """Communication-free hyperplane normals for this nest."""
        return communication_free_partition(list(self.uisets), self.nest.depth)

    def partition(
        self,
        *,
        method: str = "rectangular",
        scoring: str = "theorem4",
        workers: int = 1,
        cache=None,
        plan_cache=None,
        opt_budget_s: float | None = None,
    ) -> PartitionResult:
        """Compute the partition.

        ``method``:

        * ``'rectangular'`` — closed-form + grid search (the implemented
          Alewife subset; Section 4).
        * ``'parallelepiped'`` — general Theorem 2 minimisation.
        * ``'auto'`` — run both, keep the better *exact* predicted cost.

        ``workers`` parallelises the rectangular grid search
        (:func:`optimize_rectangular`'s process pool); ``cache`` is an
        optional shared :class:`~repro.lattice.points.LatticeCountCache`
        for its exact enumerations (e.g. the CLI's warm-start cache);
        ``plan_cache`` is an optional :class:`~repro.core.plan.PlanCache`
        consulted before the rectangular grid search (solved structure
        plans instantiate in O(1); inapplicable plans fall back here).
        ``opt_budget_s`` caps each parallelepiped portfolio member's
        wall time (the ``--opt-budget`` knob; ``workers`` also fans the
        portfolio members over the process pool).
        """
        space = self.nest.space
        with span("partition.comm_free"):
            basis = self.comm_free_basis()
        rect_res = None
        pe_res = None
        candidates: list[tuple[float, str, ParallelepipedTile, tuple[int, ...] | None]] = []

        if method in ("rectangular", "auto"):
            with span("optimize.rectangular", processors=self.processors):
                rect_res = optimize_rectangular(
                    list(self.uisets),
                    space,
                    self.processors,
                    scoring=scoring,
                    workers=workers,
                    cache=cache,
                    plan_cache=plan_cache,
                )
                est = estimate_traffic(list(self.uisets), rect_res.tile, method="exact")
            candidates.append(
                (est.cold_misses, "rectangular", rect_res.tile, rect_res.grid)
            )
        if method in ("parallelepiped", "auto"):
            volume = space.volume / self.processors
            try:
                with span("optimize.parallelepiped", processors=self.processors):
                    pe_res = optimize_parallelepiped(
                        list(self.uisets),
                        volume,
                        depth=self.nest.depth,
                        max_extents=space.extents,
                        budget_s=opt_budget_s,
                        workers=workers,
                    )
                    est = estimate_traffic(
                        list(self.uisets), pe_res.tile, method="exact"
                    )
                candidates.append((est.cold_misses, "parallelepiped", pe_res.tile, None))
            except OptimizationError:
                if method == "parallelepiped":
                    raise
        if not candidates:
            raise PartitionError(f"unknown method {method!r}")
        candidates.sort(key=lambda t: t[0])
        cost, chosen_method, tile, grid = candidates[0]
        logger.debug(
            "chose %s tile (predicted %.1f misses/tile) among %d candidates",
            chosen_method,
            cost,
            len(candidates),
        )
        with span("partition.estimate"):
            estimate = estimate_traffic(list(self.uisets), tile, method="exact")
        return PartitionResult(
            tile=tile,
            grid=grid,
            uisets=self.uisets,
            comm_free_basis=basis,
            sharing=sharing_directions(list(self.uisets)),
            estimate=estimate,
            method=chosen_method,
            rect_result=rect_res,
            pepiped_result=pe_res,
        )

    def tiling(self, result: PartitionResult) -> Tiling:
        """The concrete tiling of the nest's iteration space."""
        return Tiling(self.nest.space, result.tile)
