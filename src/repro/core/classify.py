"""Reference classification (Definitions 4-6, Example 5, Appendix B).

* Two references *intersect* when some pair of iterations touches the same
  array element (Definition 4) — an integer feasibility question solved
  exactly with the Smith normal form.
* Two references are *uniformly generated* when they share the ``G``
  matrix (Definition 5).
* *Uniformly intersecting* = both (Definition 6).  The loop body is
  partitioned into maximal classes of uniformly intersecting references
  (:func:`partition_references`); footprints of distinct classes overlap
  little or not at all, so their traffic adds (Section 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lattice.snf import solve_integer
from .affine import AccessKind, AffineRef, ArrayAccess
from .spread import spread_vector

__all__ = [
    "references_intersect",
    "uniformly_generated",
    "uniformly_intersecting",
    "UISet",
    "partition_references",
]


def references_intersect(r: AffineRef, s: AffineRef) -> bool:
    """Definition 4: do integer iterations ``i1, i2`` exist with
    ``g_r(i1) = g_s(i2)``?

    Solves ``i1·G_r − i2·G_s = a_s − a_r`` for integer ``(i1, i2)`` by
    stacking the two reference matrices.  References to different arrays
    never intersect (aliasing resolved, Section 3.3).

    Examples
    --------
    >>> import numpy as np
    >>> a = AffineRef("A", [[2]], [0])   # A[2i]
    >>> b = AffineRef("A", [[2]], [1])   # A[2i+1]
    >>> references_intersect(a, b)
    False
    """
    if r.array != s.array:
        return False
    if r.array_dim != s.array_dim:
        return False
    stacked = np.vstack([r.g, -s.g])
    rhs = s.offset - r.offset
    return solve_integer(stacked, rhs) is not None


def uniformly_generated(r: AffineRef, s: AffineRef) -> bool:
    """Definition 5: same array, same ``G`` matrix."""
    return (
        r.array == s.array
        and r.g.shape == s.g.shape
        and bool(np.all(r.g == s.g))
    )


def uniformly_intersecting(r: AffineRef, s: AffineRef) -> bool:
    """Definition 6: uniformly generated *and* intersecting.

    For uniformly generated references the intersection test reduces to
    ``a_s − a_r`` lying in the row lattice of ``G`` (the iteration-space
    difference ``x`` with ``x·G = a_s − a_r`` — cf. Theorem 3 with
    unbounded coefficients, since Definition 4 places no bounds).
    """
    if not uniformly_generated(r, s):
        return False
    return solve_integer(r.g, s.offset - r.offset) is not None


@dataclass(frozen=True)
class UISet:
    """A maximal class of uniformly intersecting references.

    Attributes
    ----------
    accesses:
        The member accesses (reference + read/write kind).
    """

    accesses: tuple[ArrayAccess, ...]

    def __post_init__(self):
        if not self.accesses:
            raise ValueError("a UISet needs at least one access")

    @property
    def array(self) -> str:
        return self.accesses[0].ref.array

    @property
    def g(self) -> np.ndarray:
        """The shared reference matrix ``G``."""
        return self.accesses[0].ref.g

    @property
    def refs(self) -> tuple[AffineRef, ...]:
        return tuple(a.ref for a in self.accesses)

    @property
    def offsets(self) -> np.ndarray:
        """``(R, d)`` matrix of the members' offset vectors."""
        return np.vstack([r.offset for r in self.refs])

    @property
    def size(self) -> int:
        return len(self.accesses)

    def spread(self) -> np.ndarray:
        """The class's spread vector ``â`` (Definition 8)."""
        return spread_vector(self.offsets)

    def has_write(self) -> bool:
        """Does any member write (or sync-accumulate, Appendix A)?"""
        return any(a.kind.is_write_like for a in self.accesses)

    def base_ref(self) -> AffineRef:
        """A canonical member (minimal offset lexicographically)."""
        order = np.lexsort(self.offsets.T[::-1])
        return self.refs[int(order[0])]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UISet{" + ", ".join(repr(a.ref) for a in self.accesses) + "}"


def partition_references(
    accesses, *, merge_policy: str = "transitive"
) -> list[UISet]:
    """Partition body accesses into maximal uniformly intersecting classes.

    ``merge_policy='transitive'`` (default) takes the transitive closure of
    the pairwise uniformly-intersecting relation, matching the paper's
    "divide the references into multiple disjoint sets".  Since the
    uniformly generated + same-coset relation *is* an equivalence (offsets
    differing by row-lattice vectors), transitivity costs nothing here.

    Duplicate references (same ``(G, a)`` and kind) are kept: they occupy
    one footprint but both appear, which matters only for access counting,
    not footprint size.

    Returns classes in first-appearance order.

    Examples
    --------
    Example 10's five references split into four classes: {B, B}, {C(i,2i,
    i+2j-1), C(i,2i,i+2j+1)}, {C(i+1,2i+2,i+2j+1)}, {A}.
    """
    accs = [a if isinstance(a, ArrayAccess) else ArrayAccess(a) for a in accesses]
    classes: list[list[ArrayAccess]] = []
    for acc in accs:
        placed = False
        for cls in classes:
            if merge_policy == "transitive":
                hit = any(uniformly_intersecting(acc.ref, m.ref) for m in cls)
            else:
                hit = all(uniformly_intersecting(acc.ref, m.ref) for m in cls)
            if hit:
                cls.append(acc)
                placed = True
                break
        if not placed:
            classes.append([acc])
    return [UISet(tuple(cls)) for cls in classes]
