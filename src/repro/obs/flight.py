"""Per-request flight recorder for the partition service.

A :class:`FlightRecorder` keeps a bounded in-memory record of recent
requests — one :class:`FlightRecord` per request (id, endpoint, status,
queue/compute/total latency breakdown, cache disposition, worker pid) in
a fixed-capacity ring — plus a bounded store of *full stitched traces*
for a subset of requests worth keeping whole: the slowest K and the most
recent K errors are pinned so the interesting exemplars survive even
when traffic is heavy.  ``GET /debug/requests``, ``/debug/requests/<id>``
and ``/debug/inflight`` in :mod:`repro.serve.server` are thin views over
this object.

:func:`stitch_trace` joins the server-side timing of one request with
the span trees shipped back from a pool worker into a single
Dapper-style tree rooted at a synthetic ``request`` span, and
:func:`format_span_tree` pretty-prints any such tree (``repro trace
show``).
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

__all__ = [
    "FlightRecord",
    "FlightRecorder",
    "stitch_trace",
    "format_span_tree",
]


@dataclass
class FlightRecord:
    """What the recorder remembers about one request."""

    request_id: str
    endpoint: str
    ts: float  # wall-clock start (unix seconds)
    status: int | None = None
    cache: str | None = None  # miss | hit | coalesced
    queue_ms: float | None = None
    compute_ms: float | None = None
    total_ms: float | None = None
    worker_pid: int | None = None
    error_code: str | None = None
    replica: str | None = None  # routed backend (router-side records only)

    def to_dict(self) -> dict:
        out: dict = {
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "ts": round(self.ts, 3),
        }
        for key in ("status", "cache", "worker_pid", "error_code", "replica"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        for key in ("queue_ms", "compute_ms", "total_ms"):
            value = getattr(self, key)
            if value is not None:
                out[key] = round(value, 3)
        return out


class FlightRecorder:
    """Bounded ring of per-request records with pinned trace exemplars.

    ``capacity`` bounds the record ring; ``trace_capacity`` bounds the
    stitched-trace store (must exceed ``slowest + errors`` so pinning
    never starves eviction); the slowest ``slowest`` requests and the
    ``errors`` most recent errored requests keep their traces pinned.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        trace_capacity: int = 64,
        slowest: int = 8,
        errors: int = 8,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if trace_capacity < slowest + errors + 1:
            raise ValueError(
                f"trace_capacity={trace_capacity} must exceed "
                f"slowest+errors={slowest + errors}"
            )
        self._lock = threading.Lock()
        self._records: deque[FlightRecord] = deque(maxlen=capacity)
        self._inflight: dict[str, FlightRecord] = {}
        self._traces: OrderedDict[str, dict] = OrderedDict()
        self._trace_capacity = trace_capacity
        # Min-heap of (total_ms, request_id): the root is the *fastest*
        # of the pinned-slowest set, evicted first when a slower one lands.
        self._slowest_k = slowest
        self._slowest: list[tuple[float, str]] = []
        self._errors: deque[str] = deque(maxlen=errors)

    # -- lifecycle -------------------------------------------------------
    def begin(self, request_id: str, endpoint: str) -> FlightRecord:
        record = FlightRecord(request_id=request_id, endpoint=endpoint, ts=time.time())
        with self._lock:
            self._inflight[request_id] = record
        return record

    def finish(
        self,
        record: FlightRecord,
        *,
        status: int,
        cache: str | None = None,
        queue_ms: float | None = None,
        compute_ms: float | None = None,
        total_ms: float | None = None,
        worker_pid: int | None = None,
        error_code: str | None = None,
        trace: dict | None = None,
        replica: str | None = None,
    ) -> None:
        record.status = status
        record.cache = cache
        record.queue_ms = queue_ms
        record.compute_ms = compute_ms
        record.total_ms = total_ms
        record.worker_pid = worker_pid
        record.error_code = error_code
        record.replica = replica
        with self._lock:
            self._inflight.pop(record.request_id, None)
            self._records.append(record)
            if trace is not None:
                self._store_trace(record, trace)

    def _store_trace(self, record: FlightRecord, trace: dict) -> None:
        rid = record.request_id
        self._traces[rid] = trace
        self._traces.move_to_end(rid)
        if record.error_code is not None:
            self._errors.append(rid)
        total = record.total_ms or 0.0
        if len(self._slowest) < self._slowest_k:
            heapq.heappush(self._slowest, (total, rid))
        elif self._slowest and total > self._slowest[0][0]:
            heapq.heappushpop(self._slowest, (total, rid))
        pinned = {rid for _, rid in self._slowest} | set(self._errors)
        while len(self._traces) > self._trace_capacity:
            for victim in self._traces:  # oldest-first
                if victim not in pinned:
                    del self._traces[victim]
                    break
            else:  # everything pinned (capacity check makes this unreachable)
                self._traces.popitem(last=False)

    # -- views -----------------------------------------------------------
    def recent(self, n: int = 50) -> list[dict]:
        """The most recent completed requests, newest first."""
        with self._lock:
            records = list(self._records)[-n:]
        return [r.to_dict() for r in reversed(records)]

    def get(self, request_id: str) -> dict | None:
        """Record + stitched trace for one request id, if still retained."""
        with self._lock:
            record = next(
                (r for r in reversed(self._records) if r.request_id == request_id),
                None,
            )
            trace = self._traces.get(request_id)
        if record is None and trace is None:
            return None
        out: dict = {"record": record.to_dict() if record else None}
        if trace is not None:
            out["trace"] = trace
        return out

    def inflight(self) -> list[dict]:
        """Requests currently being served, oldest first."""
        now = time.time()
        with self._lock:
            records = sorted(self._inflight.values(), key=lambda r: r.ts)
        return [
            dict(r.to_dict(), age_ms=round((now - r.ts) * 1000, 3)) for r in records
        ]

    def slowest(self) -> list[dict]:
        """The pinned slowest requests, slowest first."""
        with self._lock:
            pinned = sorted(self._slowest, reverse=True)
            by_id = {r.request_id: r for r in self._records}
        return [by_id[rid].to_dict() for _, rid in pinned if rid in by_id]

    def burn_rates(
        self,
        *,
        slo_p99_ms: float,
        slo_error_rate: float,
        window_s: float = 300.0,
    ) -> dict:
        """SLO burn rates over the trailing window.

        ``error_burn`` is observed 5xx rate over the error budget;
        ``latency_burn`` is the fraction of requests slower than the p99
        target over the 1% that the SLO allows.  1.0 = burning budget
        exactly as fast as allowed; >1 = on track to blow the SLO.
        """
        cutoff = time.time() - window_s
        with self._lock:
            window = [r for r in self._records if r.ts >= cutoff]
        n = len(window)
        errors = sum(1 for r in window if (r.status or 0) >= 500)
        slow = sum(1 for r in window if (r.total_ms or 0.0) > slo_p99_ms)
        error_rate = errors / n if n else 0.0
        slow_fraction = slow / n if n else 0.0
        return {
            "window_s": window_s,
            "window_requests": n,
            "error_rate": round(error_rate, 6),
            "error_burn": round(error_rate / slo_error_rate, 4) if slo_error_rate else 0.0,
            "slow_fraction": round(slow_fraction, 6),
            "latency_burn": round(slow_fraction / 0.01, 4),
        }


def stitch_trace(
    request_id: str,
    endpoint: str,
    *,
    total_ms: float,
    status: int,
    cache: str | None = None,
    queue_ms: float | None = None,
    compute_ms: float | None = None,
    worker_pid: int | None = None,
    worker_spans: list[dict] | None = None,
) -> dict:
    """Join server-side timing and worker span trees into one tree.

    The result is a plain span dict (the same shape
    :meth:`repro.obs.tracing.Span.to_dict` produces) rooted at a
    synthetic ``request`` span, with ``serve.queue`` and
    ``serve.compute`` children; the worker's own root spans (recorded in
    a different process) hang under ``serve.compute``.
    """
    attrs: dict = {"request_id": request_id, "endpoint": endpoint, "status": status}
    if cache is not None:
        attrs["cache"] = cache
    root: dict = {
        "name": "request",
        "duration_s": round(total_ms / 1000.0, 9),
        "attrs": attrs,
    }
    children: list[dict] = []
    if queue_ms is not None:
        children.append(
            {"name": "serve.queue", "duration_s": round(queue_ms / 1000.0, 9)}
        )
    if compute_ms is not None or worker_spans:
        compute: dict = {
            "name": "serve.compute",
            "duration_s": round((compute_ms or 0.0) / 1000.0, 9),
        }
        if worker_pid is not None:
            compute["attrs"] = {"worker_pid": worker_pid}
        if worker_spans:
            compute["children"] = list(worker_spans)
        children.append(compute)
    if children:
        root["children"] = children
    return root


def _format_one(node: dict, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "" if prefix == "" and is_last and not lines else (
        "└─ " if is_last else "├─ "
    )
    duration_ms = node.get("duration_s", 0.0) * 1000.0
    attrs = dict(node.get("attrs", {}))
    calls = attrs.pop("calls", None)
    parts = [f"{node.get('name', '?')}", f"{duration_ms:.3f} ms"]
    if calls is not None:
        parts.append(f"×{calls}")
    if attrs:
        parts.append(" ".join(f"{k}={v}" for k, v in sorted(attrs.items())))
    lines.append(f"{prefix}{connector}{'  '.join(parts)}")
    children = node.get("children", [])
    child_prefix = prefix + ("" if connector == "" else ("   " if is_last else "│  "))
    for i, child in enumerate(children):
        _format_one(child, child_prefix, i == len(children) - 1, lines)


def format_span_tree(tree) -> str:
    """Render a span dict (or list of them) as an indented text tree."""
    roots = tree if isinstance(tree, list) else [tree]
    lines: list[str] = []
    for i, root in enumerate(roots):
        _format_one(root, "", i == len(roots) - 1, lines)
    return "\n".join(lines)
