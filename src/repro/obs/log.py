"""The ``repro`` stdlib-logging hierarchy.

Every module logs under ``repro.<subsystem>`` (``repro.core``,
``repro.sim``, ``repro.cli`` …) so one call configures the whole tree::

    from repro.obs import configure_logging
    configure_logging("debug")

Library code only ever *emits*; nothing is printed unless the embedding
application (or the CLI's ``--log-level``) configures a handler.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure_logging"]

ROOT_LOGGER_NAME = "repro"
_HANDLER_TAG = "_repro_obs_handler"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger ``repro`` or ``repro.<name>``."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(level: str | int = "warning", stream=None) -> logging.Logger:
    """Attach (once) a stderr handler to the ``repro`` tree and set level.

    Idempotent: repeated calls adjust the level of the existing handler
    rather than stacking new ones.
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    handler = next(
        (h for h in root.handlers if getattr(h, _HANDLER_TAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return root
