"""Metric and trace exporters: JSONL event traces and Prometheus text.

:class:`EventTraceWriter` is a sink for the machine's access stream
(:attr:`repro.sim.machine.Machine.observer`): every ``every``-th access is
written as one JSON object per line, so a multi-million-access simulation
can leave a bounded, replayable record::

    {"seq": 0, "proc": 2, "array": "B", "coords": [7, 3], "kind": "read", "hit": false}

``seq`` is the global access sequence number (pre-sampling), so sampled
traces remain alignable with the full run.

:func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text exposition format (version 0.0.4): counters gain a
``_total`` suffix, histograms emit cumulative ``_bucket{le=...}`` series
ending at ``+Inf`` plus ``_sum``/``_count``, and fixed-bucket latency
histograms additionally emit a ``<name>_summary`` with interpolated
``quantile`` samples.  :func:`parse_prometheus_text` is the strict inverse
used by CI's scrape check — it refuses malformed names, missing TYPE
lines, non-cumulative buckets, and counters that do not end in
``_total``, so a formatting regression fails loudly rather than being
silently dropped by a real scraper.
"""

from __future__ import annotations

import json
import math
import re

__all__ = [
    "EventTraceWriter",
    "prometheus_text",
    "prometheus_text_from_snapshot",
    "parse_prometheus_text",
    "PrometheusFormatError",
]


class EventTraceWriter:
    """Write every ``every``-th access event as a JSONL line.

    Parameters
    ----------
    path_or_file:
        Output path, or any object with ``write``.
    every:
        Sampling stride (1 = every access).
    limit:
        Optional hard cap on written events (``None`` = unlimited).
    """

    def __init__(self, path_or_file, *, every: int = 1, limit: int | None = None):
        if every < 1:
            raise ValueError(f"sampling stride must be >= 1, got {every}")
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w")
            self._owns = True
        self.every = every
        self.limit = limit
        self.events_seen = 0
        self.events_written = 0

    def __call__(self, proc: int, array: str, coords, kind: str, hit: bool) -> None:
        seq = self.events_seen
        self.events_seen += 1
        if seq % self.every:
            return
        if self.limit is not None and self.events_written >= self.limit:
            return
        self._fh.write(
            json.dumps(
                {
                    "seq": seq,
                    "proc": proc,
                    "array": array,
                    "coords": list(coords),
                    "kind": kind,
                    "hit": bool(hit),
                },
                separators=(",", ":"),
            )
            + "\n"
        )
        self.events_written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "EventTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ---------------------------------------------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


class PrometheusFormatError(ValueError):
    """A text-format violation found by :func:`parse_prometheus_text`."""


def _prom_name(name: str) -> str:
    """``serve.latency_ms`` → ``repro_serve_latency_ms``."""
    clean = _SANITIZE_RE.sub("_", name)
    if not clean.startswith("repro_"):
        clean = "repro_" + clean
    return clean


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels, extra: dict | None = None) -> str:
    pairs = [(k, v) for k, v in labels]
    if extra:
        pairs += list(extra.items())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sorted(pairs))
    return "{" + inner + "}"


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _le_str(edge) -> str:
    return "+Inf" if (isinstance(edge, float) and math.isinf(edge)) else _fmt(float(edge))


def prometheus_text(registry, *, extra_gauges: dict | None = None) -> str:
    """Render a registry as Prometheus text exposition.

    ``extra_gauges`` maps metric name → numeric value for server-level
    quantities (in-flight requests, cache sizes) that live outside the
    registry.  Output is deterministic: metrics sort by (name, labels),
    one HELP/TYPE header per metric name.
    """
    from .metrics import Counter, Gauge, Histogram, LatencyHistogram

    groups: dict[str, list] = {}
    for (name, labels), m in sorted(
        registry._items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
    ):
        groups.setdefault(name, []).append((labels, m))

    lines: list[str] = []

    def header(pname: str, ptype: str, source: str) -> None:
        lines.append(f"# HELP {pname} repro metric {source}")
        lines.append(f"# TYPE {pname} {ptype}")

    for name, members in groups.items():
        base = _prom_name(name)
        kind = type(members[0][1])
        if kind is Counter:
            header(f"{base}_total", "counter", name)
            for labels, m in members:
                lines.append(f"{base}_total{_label_str(labels)} {_fmt(m.value)}")
        elif kind is Gauge:
            numeric = [
                (labels, m) for labels, m in members
                if isinstance(m.value, (int, float)) and not isinstance(m.value, bool)
            ]
            if not numeric:
                continue  # non-numeric gauges have no text representation
            header(base, "gauge", name)
            for labels, m in numeric:
                lines.append(f"{base}{_label_str(labels)} {_fmt(float(m.value))}")
        elif kind is LatencyHistogram:
            header(base, "histogram", name)
            for labels, m in members:
                for edge, cum in m.cumulative_buckets():
                    le = _label_str(labels, {"le": _le_str(edge)})
                    lines.append(f"{base}_bucket{le} {cum}")
                lines.append(f"{base}_sum{_label_str(labels)} {_fmt(m.total)}")
                lines.append(f"{base}_count{_label_str(labels)} {m.count}")
            sname = f"{base}_summary"
            header(sname, "summary", name)
            for labels, m in members:
                for q in (0.5, 0.95, 0.99):
                    ql = _label_str(labels, {"quantile": _fmt(q)})
                    lines.append(f"{sname}{ql} {_fmt(m.quantile(q))}")
                lines.append(f"{sname}_sum{_label_str(labels)} {_fmt(m.total)}")
                lines.append(f"{sname}_count{_label_str(labels)} {m.count}")
        elif kind is Histogram:
            header(base, "histogram", name)
            for labels, m in members:
                snap = m.to_dict()
                cum = 0
                for bin_value, bin_count in sorted(
                    ((int(k), v) for k, v in snap["bins"].items())
                ):
                    cum += bin_count
                    le = _label_str(labels, {"le": _fmt(float(bin_value))})
                    lines.append(f"{base}_bucket{le} {cum}")
                inf = _label_str(labels, {"le": "+Inf"})
                lines.append(f"{base}_bucket{inf} {snap['count']}")
                lines.append(f"{base}_sum{_label_str(labels)} {_fmt(float(snap['sum']))}")
                lines.append(f"{base}_count{_label_str(labels)} {snap['count']}")

    for name, value in sorted((extra_gauges or {}).items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        base = _prom_name(name)
        header(base, "gauge", name)
        lines.append(f"{base} {_fmt(float(value))}")

    return "\n".join(lines) + "\n"


def prometheus_text_from_snapshot(entries, *, extra_gauges: dict | None = None) -> str:
    """Render registry *snapshot* entries as Prometheus text exposition.

    The input is the JSON shape :meth:`MetricsRegistry.snapshot`
    produces (``{"name", "labels", "type", ...}`` dicts) rather than
    live instruments, so a process can render metrics it only holds as
    data — the cluster router uses this to emit one merged scrape from
    its own snapshot plus every replica's, each entry labeled with its
    ``replica``.  Entries are grouped by metric name first (one
    HELP/TYPE header per name, which the strict parser requires even
    when the same metric arrives from several replicas).  Exact-bin
    histograms (``bins``) and fixed-bucket latency histograms
    (``buckets`` + quantiles) render in the same shapes
    :func:`prometheus_text` uses; entries whose type disagrees with the
    first seen for that name are skipped rather than corrupting the
    exposition.
    """
    groups: dict[str, list[dict]] = {}
    for entry in entries:
        name = entry.get("name")
        if name:
            groups.setdefault(name, []).append(entry)

    lines: list[str] = []

    def header(pname: str, ptype: str, source: str) -> None:
        lines.append(f"# HELP {pname} repro metric {source}")
        lines.append(f"# TYPE {pname} {ptype}")

    def labels_of(entry: dict) -> list[tuple]:
        return sorted((entry.get("labels") or {}).items())

    for name in sorted(groups):
        members = sorted(groups[name], key=lambda e: str(labels_of(e)))
        base = _prom_name(name)
        etype = members[0].get("type")
        members = [e for e in members if e.get("type") == etype]
        if etype == "counter":
            header(f"{base}_total", "counter", name)
            for e in members:
                lines.append(f"{base}_total{_label_str(labels_of(e))} {_fmt(e.get('value', 0))}")
        elif etype == "gauge":
            numeric = [
                e for e in members
                if isinstance(e.get("value"), (int, float))
                and not isinstance(e.get("value"), bool)
            ]
            if not numeric:
                continue
            header(base, "gauge", name)
            for e in numeric:
                lines.append(f"{base}{_label_str(labels_of(e))} {_fmt(float(e['value']))}")
        elif etype == "histogram" and "buckets" in members[0]:
            header(base, "histogram", name)
            for e in members:
                ls = labels_of(e)
                for bucket in e.get("buckets", []):
                    le = bucket.get("le")
                    le_text = "+Inf" if le == "+Inf" else _le_str(le)
                    lines.append(
                        f"{base}_bucket{_label_str(ls, {'le': le_text})} "
                        f"{bucket.get('count', 0)}"
                    )
                lines.append(f"{base}_sum{_label_str(ls)} {_fmt(float(e.get('sum', 0.0)))}")
                lines.append(f"{base}_count{_label_str(ls)} {e.get('count', 0)}")
            sname = f"{base}_summary"
            header(sname, "summary", name)
            for e in members:
                ls = labels_of(e)
                for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                    ql = _label_str(ls, {"quantile": _fmt(q)})
                    lines.append(f"{sname}{ql} {_fmt(float(e.get(key, 0.0)))}")
                lines.append(f"{sname}_sum{_label_str(ls)} {_fmt(float(e.get('sum', 0.0)))}")
                lines.append(f"{sname}_count{_label_str(ls)} {e.get('count', 0)}")
        elif etype == "histogram":
            header(base, "histogram", name)
            for e in members:
                ls = labels_of(e)
                cum = 0
                for bin_value, bin_count in sorted(
                    (int(k), v) for k, v in (e.get("bins") or {}).items()
                ):
                    cum += bin_count
                    le = _label_str(ls, {"le": _fmt(float(bin_value))})
                    lines.append(f"{base}_bucket{le} {cum}")
                inf = _label_str(ls, {"le": "+Inf"})
                lines.append(f"{base}_bucket{inf} {e.get('count', 0)}")
                lines.append(f"{base}_sum{_label_str(ls)} {_fmt(float(e.get('sum', 0)))}")
                lines.append(f"{base}_count{_label_str(ls)} {e.get('count', 0)}")

    for name, value in sorted((extra_gauges or {}).items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        base = _prom_name(name)
        header(base, "gauge", name)
        lines.append(f"{base} {_fmt(float(value))}")

    return "\n".join(lines) + "\n"


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PrometheusFormatError(f"{where}: unparseable value {text!r}") from None


def _parse_labels(text: str, where: str) -> dict:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        eq = text.index("=", pos) if "=" in text[pos:] else -1
        if eq < 0:
            raise PrometheusFormatError(f"{where}: malformed labels at {text[pos:]!r}")
        lname = text[pos:eq]
        if not _LABEL_NAME_RE.match(lname):
            raise PrometheusFormatError(f"{where}: bad label name {lname!r}")
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise PrometheusFormatError(f"{where}: label value must be quoted")
        value = []
        i = eq + 2
        while i < len(text):
            ch = text[i]
            if ch == "\\" and i + 1 < len(text):
                esc = text[i + 1]
                value.append({"n": "\n", '"': '"', "\\": "\\"}.get(esc, esc))
                i += 2
                continue
            if ch == '"':
                break
            value.append(ch)
            i += 1
        else:
            raise PrometheusFormatError(f"{where}: unterminated label value")
        labels[lname] = "".join(value)
        pos = i + 1
        if pos < len(text) and text[pos] == ",":
            pos += 1
    return labels


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)


def parse_prometheus_text(text: str) -> dict:
    """Strictly parse Prometheus text exposition.

    Returns ``{metric_name: {"type": ..., "samples": [(labels, value), ...]}}``
    keyed by the *declared* (TYPE-line) metric name; histogram/summary
    child series (``_bucket``/``_sum``/``_count``/quantiles) attach to
    their parent.  Raises :class:`PrometheusFormatError` on any
    violation of the format contract (see module doc).
    """
    metrics: dict[str, dict] = {}
    types: dict[str, str] = {}

    def owner(sample_name: str, where: str) -> tuple[str, str]:
        """Resolve a sample to its declared metric name and sample role."""
        if sample_name in types:
            t = types[sample_name]
            if t == "counter":
                if not sample_name.endswith("_total"):
                    raise PrometheusFormatError(
                        f"{where}: counter {sample_name!r} must end in _total"
                    )
                declared = sample_name[: -len("_total")]
                return (declared if declared in metrics else sample_name), "value"
            return sample_name, "value"
        for suffix, role in (("_bucket", "bucket"), ("_sum", "sum"), ("_count", "count")):
            parent = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if parent and parent in types and types[parent] in ("histogram", "summary"):
                return parent, role
        if sample_name.endswith("_total") and sample_name[: -len("_total")] in types:
            parent = sample_name[: -len("_total")]
            if types[parent] == "counter":
                return parent, "value"
        raise PrometheusFormatError(f"{where}: sample {sample_name!r} has no TYPE line")

    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        where = f"line {lineno}"
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise PrometheusFormatError(f"{where}: malformed TYPE line")
                _, _, mname, mtype = parts
                if not _NAME_RE.match(mname):
                    raise PrometheusFormatError(f"{where}: bad metric name {mname!r}")
                if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise PrometheusFormatError(f"{where}: bad metric type {mtype!r}")
                declared = mname[: -len("_total")] if (
                    mtype == "counter" and mname.endswith("_total")
                ) else mname
                if declared in types:
                    raise PrometheusFormatError(f"{where}: duplicate TYPE for {declared!r}")
                types[declared] = mtype
                types[mname] = mtype
                metrics[declared] = {"type": mtype, "samples": []}
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise PrometheusFormatError(f"{where}: malformed HELP line")
            # other comments are permitted by the format
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise PrometheusFormatError(f"{where}: unparseable sample {line!r}")
        sample_name = m.group("name")
        labels = _parse_labels(m.group("labels") or "", where)
        value = _parse_value(m.group("value"), where)
        parent, role = owner(sample_name, where)
        entry = metrics[parent]
        if entry["type"] == "counter" and value < 0:
            raise PrometheusFormatError(f"{where}: negative counter {sample_name!r}")
        if role == "bucket" and entry["type"] == "histogram" and "le" not in labels:
            raise PrometheusFormatError(f"{where}: histogram bucket missing 'le' label")
        entry["samples"].append({"name": sample_name, "role": role,
                                 "labels": labels, "value": value})

    for mname, entry in metrics.items():
        if entry["type"] != "histogram":
            continue
        series: dict[tuple, list] = {}
        for s in entry["samples"]:
            if s["role"] != "bucket":
                continue
            key = tuple(sorted((k, v) for k, v in s["labels"].items() if k != "le"))
            series.setdefault(key, []).append(
                (_parse_value(s["labels"]["le"], f"metric {mname}"), s["value"])
            )
        if not series:
            raise PrometheusFormatError(f"histogram {mname!r} has no _bucket samples")
        for key, buckets in series.items():
            edges = [e for e, _ in buckets]
            counts = [c for _, c in buckets]
            if edges != sorted(edges):
                raise PrometheusFormatError(f"histogram {mname!r}: unsorted buckets")
            if counts != sorted(counts):
                raise PrometheusFormatError(f"histogram {mname!r}: non-cumulative buckets")
            if not math.isinf(edges[-1]):
                raise PrometheusFormatError(f"histogram {mname!r}: missing +Inf bucket")
        roles = {s["role"] for s in entry["samples"]}
        if "sum" not in roles or "count" not in roles:
            raise PrometheusFormatError(f"histogram {mname!r}: missing _sum or _count")

    return metrics
