"""Sampled per-access JSONL event traces.

:class:`EventTraceWriter` is a sink for the machine's access stream
(:attr:`repro.sim.machine.Machine.observer`): every ``every``-th access is
written as one JSON object per line, so a multi-million-access simulation
can leave a bounded, replayable record::

    {"seq": 0, "proc": 2, "array": "B", "coords": [7, 3], "kind": "read", "hit": false}

``seq`` is the global access sequence number (pre-sampling), so sampled
traces remain alignable with the full run.
"""

from __future__ import annotations

import json

__all__ = ["EventTraceWriter"]


class EventTraceWriter:
    """Write every ``every``-th access event as a JSONL line.

    Parameters
    ----------
    path_or_file:
        Output path, or any object with ``write``.
    every:
        Sampling stride (1 = every access).
    limit:
        Optional hard cap on written events (``None`` = unlimited).
    """

    def __init__(self, path_or_file, *, every: int = 1, limit: int | None = None):
        if every < 1:
            raise ValueError(f"sampling stride must be >= 1, got {every}")
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "w")
            self._owns = True
        self.every = every
        self.limit = limit
        self.events_seen = 0
        self.events_written = 0

    def __call__(self, proc: int, array: str, coords, kind: str, hit: bool) -> None:
        seq = self.events_seen
        self.events_seen += 1
        if seq % self.every:
            return
        if self.limit is not None and self.events_written >= self.limit:
            return
        self._fh.write(
            json.dumps(
                {
                    "seq": seq,
                    "proc": proc,
                    "array": array,
                    "coords": list(coords),
                    "kind": kind,
                    "hit": bool(hit),
                },
                separators=(",", ":"),
            )
            + "\n"
        )
        self.events_written += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "EventTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
