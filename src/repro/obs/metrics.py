"""Named counters, gauges and histograms for the simulator (and beyond).

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
``(name, labels)``; the simulator's components (:mod:`repro.sim.cache`,
``directory``, ``network``, ``machine``) create their counters here, and
the pre-existing stats dataclasses (:class:`~repro.sim.cache.CacheStats`,
:class:`~repro.sim.directory.CoherenceStats`) are thin *views* over the
same instruments.

To keep every existing caller working (``stats.read_misses += 1``,
``assert stats.read_misses == 3``, ``a.read_hits + a.read_misses``),
:class:`Counter` implements the integer protocol: it compares, adds,
formats and converts like the int it wraps, and ``+=`` mutates in place.

Scoping: each :class:`~repro.sim.machine.Machine` owns a private registry
(``machine.metrics``) so concurrent simulations in one process never mix
counts; :func:`get_registry` returns the process-local default registry
used for pipeline-level metrics.

Thread safety: instrument *mutations* (``inc``, ``+=``, ``observe``,
``set``, ``reset``) and registry operations (get-or-create, snapshot)
are serialised under one module lock, so concurrent requests in the
``repro serve`` process cannot lose updates — a bare ``self._value += n``
is a read-modify-write that the interpreter may interleave between
threads.  A single shared lock keeps per-instrument memory at zero and
cannot deadlock (no instrument calls another while holding it); reads of
a single value stay lock-free, which is safe because an ``int`` load is
atomic and these are monitoring quantities.
"""

from __future__ import annotations

import threading
from typing import Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry"]

#: One lock for every instrument and registry in the process (see module doc).
_LOCK = threading.Lock()


def _as_number(other):
    if isinstance(other, (Counter, Gauge)):
        return other.value
    return other


class Counter:
    """A monotonically *usable* integer metric (int-like; see module doc).

    Counters normally only go up; ``reset()`` and ``__isub__`` exist for
    the simulator's between-run resets.
    """

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: tuple = (), initial: int = 0):
        self.name = name
        self.labels = labels
        self._value = int(initial)

    # -- metric interface ------------------------------------------------
    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        with _LOCK:
            self._value += n

    def reset(self) -> None:
        with _LOCK:
            self._value = 0

    # -- int protocol (keeps stats-dataclass callers unchanged) ----------
    def __int__(self) -> int:
        return self._value

    __index__ = __int__

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return bool(self._value)

    def __eq__(self, other) -> bool:
        return self._value == _as_number(other)

    def __ne__(self, other) -> bool:
        return self._value != _as_number(other)

    def __lt__(self, other):
        return self._value < _as_number(other)

    def __le__(self, other):
        return self._value <= _as_number(other)

    def __gt__(self, other):
        return self._value > _as_number(other)

    def __ge__(self, other):
        return self._value >= _as_number(other)

    def __add__(self, other):
        return self._value + _as_number(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._value - _as_number(other)

    def __rsub__(self, other):
        return _as_number(other) - self._value

    def __mul__(self, other):
        return self._value * _as_number(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._value / _as_number(other)

    def __rtruediv__(self, other):
        return _as_number(other) / self._value

    def __neg__(self):
        return -self._value

    def __iadd__(self, n):
        with _LOCK:
            self._value += _as_number(n)
        return self

    def __isub__(self, n):
        with _LOCK:
            self._value -= _as_number(n)
        return self

    __hash__ = object.__hash__  # identity: counters are mutable

    def __format__(self, spec: str) -> str:
        return format(self._value, spec)

    def __repr__(self) -> str:
        lbl = f", {dict(self.labels)}" if self.labels else ""
        return f"Counter({self.name}={self._value}{lbl})"

    def __str__(self) -> str:
        return str(self._value)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = (), initial=0):
        self.name = name
        self.labels = labels
        self.value = initial

    def set(self, value) -> None:
        with _LOCK:
            self.value = value

    def reset(self) -> None:
        with _LOCK:
            self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution of observed integer values (exact small-domain bins).

    Designed for protocol quantities with small integer support (sharer
    counts, invalidations per write); each distinct value keeps its own
    bin, which is exact and JSON-friendly.
    """

    __slots__ = ("name", "labels", "bins", "count", "total")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.bins: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        v = int(value)
        with _LOCK:
            self.bins[v] = self.bins.get(v, 0) + 1
            self.count += 1
            self.total += v

    def observe_bulk(self, value, n: int) -> None:
        """Record ``n`` observations of the same ``value`` at once.

        Equivalent to ``n`` calls to :meth:`observe`; used by bulk
        accounting paths (e.g. the fast simulator engine) where looping
        per observation would dominate.
        """
        if n <= 0:
            return
        v = int(value)
        with _LOCK:
            self.bins[v] = self.bins.get(v, 0) + n
            self.count += n
            self.total += v * n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with _LOCK:
            self.bins.clear()
            self.count = 0
            self.total = 0

    def to_dict(self) -> dict:
        with _LOCK:  # a consistent (count, sum, bins) triple
            count, total = self.count, self.total
            bins = dict(self.bins)
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "bins": {str(k): v for k, v in sorted(bins.items())},
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Get-or-create store of instruments keyed by ``(name, labels)``."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._metrics: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        with _LOCK:
            m = self._metrics.get(key)
            if m is None:
                m = cls(name, key[1])
                self._metrics[key] = m
        if not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r}{labels or ''} already registered as "
                f"{type(m).__name__}, requested {cls.__name__}"
            )
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def _items(self) -> list:
        """A consistent point-in-time copy of the instrument map."""
        with _LOCK:
            return list(self._metrics.items())

    def __iter__(self) -> Iterator:
        return iter(m for _, m in self._items())

    def __len__(self) -> int:
        return len(self._metrics)

    def total(self, name: str) -> int:
        """Sum of a counter across every label combination."""
        return sum(
            m.value
            for _, m in self._items()
            if isinstance(m, Counter) and m.name == name
        )

    def by_label(self, name: str, label: str) -> dict:
        """``label value → counter value`` for one counter name."""
        out: dict = {}
        for _, m in self._items():
            if isinstance(m, Counter) and m.name == name:
                lbl = dict(m.labels).get(label)
                if lbl is not None:
                    out[lbl] = out.get(lbl, 0) + m.value
        return out

    def reset(self) -> None:
        for _, m in self._items():
            m.reset()

    def snapshot(self) -> list[dict]:
        """JSON-ready dump of every instrument (stable order)."""
        out = []
        for (name, labels), m in sorted(
            self._items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        ):
            entry: dict = {"name": name}
            if labels:
                entry["labels"] = {k: v for k, v in labels}
            if isinstance(m, Counter):
                entry["type"] = "counter"
                entry["value"] = m.value
            elif isinstance(m, Gauge):
                entry["type"] = "gauge"
                entry["value"] = m.value
            else:
                entry["type"] = "histogram"
                entry.update(m.to_dict())
            out.append(entry)
        return out


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry (pipeline-level metrics)."""
    return _registry
