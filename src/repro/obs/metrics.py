"""Named counters, gauges and histograms for the simulator (and beyond).

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
``(name, labels)``; the simulator's components (:mod:`repro.sim.cache`,
``directory``, ``network``, ``machine``) create their counters here, and
the pre-existing stats dataclasses (:class:`~repro.sim.cache.CacheStats`,
:class:`~repro.sim.directory.CoherenceStats`) are thin *views* over the
same instruments.

To keep every existing caller working (``stats.read_misses += 1``,
``assert stats.read_misses == 3``, ``a.read_hits + a.read_misses``),
:class:`Counter` implements the integer protocol: it compares, adds,
formats and converts like the int it wraps, and ``+=`` mutates in place.

Scoping: each :class:`~repro.sim.machine.Machine` owns a private registry
(``machine.metrics``) so concurrent simulations in one process never mix
counts; :func:`get_registry` returns the process-local default registry
used for pipeline-level metrics.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry"]


def _as_number(other):
    if isinstance(other, (Counter, Gauge)):
        return other.value
    return other


class Counter:
    """A monotonically *usable* integer metric (int-like; see module doc).

    Counters normally only go up; ``reset()`` and ``__isub__`` exist for
    the simulator's between-run resets.
    """

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: tuple = (), initial: int = 0):
        self.name = name
        self.labels = labels
        self._value = int(initial)

    # -- metric interface ------------------------------------------------
    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        self._value += n

    def reset(self) -> None:
        self._value = 0

    # -- int protocol (keeps stats-dataclass callers unchanged) ----------
    def __int__(self) -> int:
        return self._value

    __index__ = __int__

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return bool(self._value)

    def __eq__(self, other) -> bool:
        return self._value == _as_number(other)

    def __ne__(self, other) -> bool:
        return self._value != _as_number(other)

    def __lt__(self, other):
        return self._value < _as_number(other)

    def __le__(self, other):
        return self._value <= _as_number(other)

    def __gt__(self, other):
        return self._value > _as_number(other)

    def __ge__(self, other):
        return self._value >= _as_number(other)

    def __add__(self, other):
        return self._value + _as_number(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._value - _as_number(other)

    def __rsub__(self, other):
        return _as_number(other) - self._value

    def __mul__(self, other):
        return self._value * _as_number(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._value / _as_number(other)

    def __rtruediv__(self, other):
        return _as_number(other) / self._value

    def __neg__(self):
        return -self._value

    def __iadd__(self, n):
        self._value += _as_number(n)
        return self

    def __isub__(self, n):
        self._value -= _as_number(n)
        return self

    __hash__ = object.__hash__  # identity: counters are mutable

    def __format__(self, spec: str) -> str:
        return format(self._value, spec)

    def __repr__(self) -> str:
        lbl = f", {dict(self.labels)}" if self.labels else ""
        return f"Counter({self.name}={self._value}{lbl})"

    def __str__(self) -> str:
        return str(self._value)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = (), initial=0):
        self.name = name
        self.labels = labels
        self.value = initial

    def set(self, value) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution of observed integer values (exact small-domain bins).

    Designed for protocol quantities with small integer support (sharer
    counts, invalidations per write); each distinct value keeps its own
    bin, which is exact and JSON-friendly.
    """

    __slots__ = ("name", "labels", "bins", "count", "total")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.bins: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        v = int(value)
        self.bins[v] = self.bins.get(v, 0) + 1
        self.count += 1
        self.total += v

    def observe_bulk(self, value, n: int) -> None:
        """Record ``n`` observations of the same ``value`` at once.

        Equivalent to ``n`` calls to :meth:`observe`; used by bulk
        accounting paths (e.g. the fast simulator engine) where looping
        per observation would dominate.
        """
        if n <= 0:
            return
        v = int(value)
        self.bins[v] = self.bins.get(v, 0) + n
        self.count += n
        self.total += v * n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.bins.clear()
        self.count = 0
        self.total = 0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "bins": {str(k): v for k, v in sorted(self.bins.items())},
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Get-or-create store of instruments keyed by ``(name, labels)``."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._metrics: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, key[1])
            self._metrics[key] = m
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r}{labels or ''} already registered as "
                f"{type(m).__name__}, requested {cls.__name__}"
            )
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def total(self, name: str) -> int:
        """Sum of a counter across every label combination."""
        return sum(
            m.value
            for m in self._metrics.values()
            if isinstance(m, Counter) and m.name == name
        )

    def by_label(self, name: str, label: str) -> dict:
        """``label value → counter value`` for one counter name."""
        out: dict = {}
        for m in self._metrics.values():
            if isinstance(m, Counter) and m.name == name:
                lbl = dict(m.labels).get(label)
                if lbl is not None:
                    out[lbl] = out.get(lbl, 0) + m.value
        return out

    def reset(self) -> None:
        for m in self._metrics.values():
            m.reset()

    def snapshot(self) -> list[dict]:
        """JSON-ready dump of every instrument (stable order)."""
        out = []
        for (name, labels), m in sorted(
            self._metrics.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        ):
            entry: dict = {"name": name}
            if labels:
                entry["labels"] = {k: v for k, v in labels}
            if isinstance(m, Counter):
                entry["type"] = "counter"
                entry["value"] = m.value
            elif isinstance(m, Gauge):
                entry["type"] = "gauge"
                entry["value"] = m.value
            else:
                entry["type"] = "histogram"
                entry.update(m.to_dict())
            out.append(entry)
        return out


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry (pipeline-level metrics)."""
    return _registry
