"""Named counters, gauges and histograms for the simulator (and beyond).

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
``(name, labels)``; the simulator's components (:mod:`repro.sim.cache`,
``directory``, ``network``, ``machine``) create their counters here, and
the pre-existing stats dataclasses (:class:`~repro.sim.cache.CacheStats`,
:class:`~repro.sim.directory.CoherenceStats`) are thin *views* over the
same instruments.

To keep every existing caller working (``stats.read_misses += 1``,
``assert stats.read_misses == 3``, ``a.read_hits + a.read_misses``),
:class:`Counter` implements the integer protocol: it compares, adds,
formats and converts like the int it wraps, and ``+=`` mutates in place.

Scoping: each :class:`~repro.sim.machine.Machine` owns a private registry
(``machine.metrics``) so concurrent simulations in one process never mix
counts; :func:`get_registry` returns the process-local default registry
used for pipeline-level metrics.

Thread safety: instrument *mutations* (``inc``, ``+=``, ``observe``,
``set``, ``reset``) and registry operations (get-or-create, snapshot)
are serialised under one module lock, so concurrent requests in the
``repro serve`` process cannot lose updates — a bare ``self._value += n``
is a read-modify-write that the interpreter may interleave between
threads.  A single shared lock keeps per-instrument memory at zero and
cannot deadlock (no instrument calls another while holding it); reads of
a single value stay lock-free, which is safe because an ``int`` load is
atomic and these are monitoring quantities.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_registry",
]

#: One lock for every instrument and registry in the process (see module doc).
_LOCK = threading.Lock()


def _as_number(other):
    if isinstance(other, (Counter, Gauge)):
        return other.value
    return other


class Counter:
    """A monotonically *usable* integer metric (int-like; see module doc).

    Counters normally only go up; ``reset()`` and ``__isub__`` exist for
    the simulator's between-run resets.
    """

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: tuple = (), initial: int = 0):
        self.name = name
        self.labels = labels
        self._value = int(initial)

    # -- metric interface ------------------------------------------------
    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        with _LOCK:
            self._value += n

    def reset(self) -> None:
        with _LOCK:
            self._value = 0

    # -- int protocol (keeps stats-dataclass callers unchanged) ----------
    def __int__(self) -> int:
        return self._value

    __index__ = __int__

    def __float__(self) -> float:
        return float(self._value)

    def __bool__(self) -> bool:
        return bool(self._value)

    def __eq__(self, other) -> bool:
        return self._value == _as_number(other)

    def __ne__(self, other) -> bool:
        return self._value != _as_number(other)

    def __lt__(self, other):
        return self._value < _as_number(other)

    def __le__(self, other):
        return self._value <= _as_number(other)

    def __gt__(self, other):
        return self._value > _as_number(other)

    def __ge__(self, other):
        return self._value >= _as_number(other)

    def __add__(self, other):
        return self._value + _as_number(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._value - _as_number(other)

    def __rsub__(self, other):
        return _as_number(other) - self._value

    def __mul__(self, other):
        return self._value * _as_number(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._value / _as_number(other)

    def __rtruediv__(self, other):
        return _as_number(other) / self._value

    def __neg__(self):
        return -self._value

    def __iadd__(self, n):
        with _LOCK:
            self._value += _as_number(n)
        return self

    def __isub__(self, n):
        with _LOCK:
            self._value -= _as_number(n)
        return self

    __hash__ = object.__hash__  # identity: counters are mutable

    def __format__(self, spec: str) -> str:
        return format(self._value, spec)

    def __repr__(self) -> str:
        lbl = f", {dict(self.labels)}" if self.labels else ""
        return f"Counter({self.name}={self._value}{lbl})"

    def __str__(self) -> str:
        return str(self._value)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = (), initial=0):
        self.name = name
        self.labels = labels
        self.value = initial

    def set(self, value) -> None:
        with _LOCK:
            self.value = value

    def reset(self) -> None:
        with _LOCK:
            self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Distribution of observed integer values (exact small-domain bins).

    Designed for protocol quantities with small integer support (sharer
    counts, invalidations per write); each distinct value keeps its own
    bin, which is exact and JSON-friendly.
    """

    __slots__ = ("name", "labels", "bins", "count", "total")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.bins: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        v = int(value)
        with _LOCK:
            self.bins[v] = self.bins.get(v, 0) + 1
            self.count += 1
            self.total += v

    def observe_bulk(self, value, n: int) -> None:
        """Record ``n`` observations of the same ``value`` at once.

        Equivalent to ``n`` calls to :meth:`observe`; used by bulk
        accounting paths (e.g. the fast simulator engine) where looping
        per observation would dominate.
        """
        if n <= 0:
            return
        v = int(value)
        with _LOCK:
            self.bins[v] = self.bins.get(v, 0) + n
            self.count += n
            self.total += v * n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with _LOCK:
            self.bins.clear()
            self.count = 0
            self.total = 0

    def to_dict(self) -> dict:
        with _LOCK:  # a consistent (count, sum, bins) triple
            count, total = self.count, self.total
            bins = dict(self.bins)
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "bins": {str(k): v for k, v in sorted(bins.items())},
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


#: Log-spaced latency bucket upper edges in milliseconds: sub-millisecond
#: cache hits through minute-long exact-engine computes, ~2.2x apart.
#: 17 buckets (+overflow) bound the memory of a histogram that previously
#: grew one exact bin per distinct observed millisecond.
DEFAULT_LATENCY_EDGES_MS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0, 120000.0,
)


class LatencyHistogram:
    """Distribution over *fixed* log-spaced buckets (for latencies).

    Unlike :class:`Histogram` (one exact bin per distinct integer —
    unbounded for latencies, which take arbitrarily many distinct
    values over a long-running server), this keeps a constant-size
    cumulative bucket array plus interpolated quantiles, trading exact
    bins for bounded memory.  Values are milliseconds by convention but
    nothing enforces a unit.
    """

    __slots__ = ("name", "labels", "edges", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, labels: tuple = (), edges=DEFAULT_LATENCY_EDGES_MS):
        self.name = name
        self.labels = labels
        self.edges = tuple(float(e) for e in edges)
        if list(self.edges) != sorted(set(self.edges)):
            raise ValueError("bucket edges must be strictly increasing")
        self.counts = [0] * (len(self.edges) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = 0.0

    def observe(self, value) -> None:
        v = float(value)
        with _LOCK:
            self.counts[bisect_left(self.edges, v)] += 1
            self.count += 1
            self.total += v
            if v < self.vmin:
                self.vmin = v
            if v > self.vmax:
                self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (q in [0, 1]); 0.0 when empty."""
        with _LOCK:
            count, counts = self.count, list(self.counts)
            vmin, vmax = self.vmin, self.vmax
        if not count:
            return 0.0
        rank = q * count
        cum = 0.0
        prev_edge = 0.0
        for edge, c in zip(self.edges, counts):
            if c and cum + c >= rank:
                lower = max(prev_edge, min(vmin, edge))
                upper = min(edge, vmax)
                frac = (rank - cum) / c
                return lower + frac * max(upper - lower, 0.0)
            cum += c
            prev_edge = edge
        return vmax  # rank landed in the overflow bucket

    def reset(self) -> None:
        with _LOCK:
            self.counts = [0] * (len(self.edges) + 1)
            self.count = 0
            self.total = 0.0
            self.vmin = math.inf
            self.vmax = 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, ending at (+inf, count)."""
        with _LOCK:
            counts = list(self.counts)
        out = []
        cum = 0
        for edge, c in zip(self.edges, counts):
            cum += c
            out.append((edge, cum))
        out.append((math.inf, cum + counts[-1]))
        return out

    def to_dict(self) -> dict:
        with _LOCK:
            count, total, vmax = self.count, self.total, self.vmax
        return {
            "count": count,
            "sum": round(total, 6),
            "mean": round(total / count, 6) if count else 0.0,
            "p50": round(self.quantile(0.50), 3),
            "p95": round(self.quantile(0.95), 3),
            "p99": round(self.quantile(0.99), 3),
            "max": round(vmax, 3),
            "buckets": [
                {"le": ("+Inf" if math.isinf(edge) else edge), "count": cum}
                for edge, cum in self.cumulative_buckets()
            ],
        }

    def __repr__(self) -> str:
        return f"LatencyHistogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Get-or-create store of instruments keyed by ``(name, labels)``."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._metrics: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        with _LOCK:
            m = self._metrics.get(key)
            if m is None:
                m = cls(name, key[1])
                self._metrics[key] = m
        if not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r}{labels or ''} already registered as "
                f"{type(m).__name__}, requested {cls.__name__}"
            )
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def latency_histogram(self, name: str, **labels) -> LatencyHistogram:
        return self._get(LatencyHistogram, name, labels)

    def _items(self) -> list:
        """A consistent point-in-time copy of the instrument map."""
        with _LOCK:
            return list(self._metrics.items())

    def __iter__(self) -> Iterator:
        return iter(m for _, m in self._items())

    def __len__(self) -> int:
        return len(self._metrics)

    def total(self, name: str) -> int:
        """Sum of a counter across every label combination."""
        return sum(
            m.value
            for _, m in self._items()
            if isinstance(m, Counter) and m.name == name
        )

    def by_label(self, name: str, label: str) -> dict:
        """``label value → counter value`` for one counter name."""
        out: dict = {}
        for _, m in self._items():
            if isinstance(m, Counter) and m.name == name:
                lbl = dict(m.labels).get(label)
                if lbl is not None:
                    out[lbl] = out.get(lbl, 0) + m.value
        return out

    def reset(self) -> None:
        for _, m in self._items():
            m.reset()

    def snapshot(self) -> list[dict]:
        """JSON-ready dump of every instrument (stable order)."""
        out = []
        for (name, labels), m in sorted(
            self._items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        ):
            entry: dict = {"name": name}
            if labels:
                entry["labels"] = {k: v for k, v in labels}
            if isinstance(m, Counter):
                entry["type"] = "counter"
                entry["value"] = m.value
            elif isinstance(m, Gauge):
                entry["type"] = "gauge"
                entry["value"] = m.value
            else:
                # Histogram and LatencyHistogram both report type
                # "histogram"; the exact-bin form carries "bins", the
                # fixed-bucket form "buckets" + quantiles.
                entry["type"] = "histogram"
                entry.update(m.to_dict())
            out.append(entry)
        return out


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry (pipeline-level metrics)."""
    return _registry
