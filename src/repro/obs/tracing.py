"""Nested-span tracing for the partitioning pipeline.

A :class:`Span` measures the wall time of one pipeline phase; spans nest,
so a phase's children (e.g. ``optimize.rectangular`` inside
``partition.partition``) appear under it in the finished trace.  Usage::

    from repro.obs import span

    with span("optimize.rectangular", processors=16):
        ...

Timing uses :func:`time.perf_counter` (monotonic), so a parent's duration
always bounds the sum of its children's.  With profiling enabled
(:meth:`Tracer.enable_memory_profiling` or the CLI's ``--profile``), each
span additionally records the process peak RSS at span exit (a high-water
mark — monotone across spans, useful for spotting *which* phase first
pushed memory up).

The process-local default tracer is always on; completed root spans are
kept in an explicit ring (``max_roots``) so long-running processes (the
benchmark suite simulates thousands of nests, a ``repro serve`` worker
lives for days) never accumulate unbounded trace state.  Evictions are
*counted* — :attr:`Tracer.roots_evicted` and the ``tracing.roots_evicted``
registry counter — so a serve run that loses recent traces does it with a
signal, not silently.

Hot call sites (the exact lattice enumeration kernels run thousands of
times inside one ``optimize.rectangular``) use *aggregated* spans
(``span("lattice.count_images", aggregate=True)``): repeated occurrences
under the same parent merge into one child whose duration accumulates and
whose ``calls`` attribute counts occurrences, keeping traces bounded while
still attributing the time.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

try:  # POSIX only; absent on some platforms — RSS capture degrades to None.
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = ["Span", "Tracer", "get_tracer", "span"]


def _agg_map(parent: Span) -> dict[str, "Span"]:
    """Per-parent registry of aggregated children (lazily attached)."""
    m = getattr(parent, "_agg", None)
    if m is None:
        m = {}
        parent._agg = m
    return m


def _evictions_counter():
    # Imported lazily: metrics never imports tracing, but keeping the
    # dependency out of module import time lets either load first.
    from .metrics import get_registry

    return get_registry().counter("tracing.roots_evicted")


def _peak_rss_kb() -> int | None:
    if _resource is None:  # pragma: no cover
        return None
    # ru_maxrss is KiB on Linux, bytes on macOS; normalise to KiB.
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover
        peak //= 1024
    return int(peak)


@dataclass
class Span:
    """One timed phase; ``children`` are the spans opened inside it."""

    name: str
    start: float
    attrs: dict = field(default_factory=dict)
    end: float | None = None
    children: list["Span"] = field(default_factory=list)
    peak_rss_kb: int | None = None

    @property
    def duration(self) -> float:
        """Seconds from entry to exit (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for c in self.children:
            yield from c.walk()

    def to_dict(self) -> dict:
        d: dict = {"name": self.name, "duration_s": round(self.duration, 9)}
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.peak_rss_kb is not None:
            d["peak_rss_kb"] = self.peak_rss_kb
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d


class Tracer:
    """Collects a process-local tree of completed spans.

    ``max_roots`` bounds retention as an explicit ring: when a new root
    completes past the bound, the *oldest* root is evicted (children live
    inside their root) and the eviction is counted — locally in
    :attr:`roots_evicted` and in the process registry's
    ``tracing.roots_evicted`` counter — so long serve runs cannot lose
    recent traces without a signal.
    """

    def __init__(self, *, profile_memory: bool = False, max_roots: int = 4096):
        if max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self.profile_memory = profile_memory and _resource is not None
        self.max_roots = max_roots
        self.roots: deque[Span] = deque()
        self.roots_evicted = 0
        self._stack: list[Span] = []
        self._root_agg: dict[str, Span] = {}

    @contextmanager
    def span(self, name: str, aggregate: bool = False, **attrs):
        s = Span(name=name, start=time.perf_counter(), attrs=attrs)
        self._stack.append(s)
        try:
            yield s
        finally:
            s.end = time.perf_counter()
            if self.profile_memory:
                s.peak_rss_kb = _peak_rss_kb()
            # Pop *this* span even if a child leaked (defensive).
            while self._stack and self._stack[-1] is not s:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
            parent = self._stack[-1] if self._stack else None
            if aggregate and self._merge_aggregate(parent, s):
                pass  # folded into an existing sibling of the same name
            elif parent is not None:
                parent.children.append(s)
            else:
                self._append_root(s)

    def _merge_aggregate(self, parent: Span | None, s: Span) -> bool:
        """Fold ``s`` into an existing aggregated sibling; False = first."""
        agg_map = self._root_agg if parent is None else _agg_map(parent)
        existing = agg_map.get(s.name)
        if existing is not None:
            existing.end = (existing.end or existing.start) + s.duration
            existing.attrs["calls"] += 1
            if s.peak_rss_kb is not None:
                existing.peak_rss_kb = max(existing.peak_rss_kb or 0, s.peak_rss_kb)
            return True
        s.attrs["calls"] = 1
        agg_map[s.name] = s
        return False

    def _append_root(self, s: Span) -> None:
        self.roots.append(s)
        while len(self.roots) > self.max_roots:
            evicted = self.roots.popleft()
            self._root_agg.pop(evicted.name, None)
            self.roots_evicted += 1
            _evictions_counter().inc()

    def enable_memory_profiling(self, on: bool = True) -> None:
        self.profile_memory = bool(on) and _resource is not None

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self._root_agg.clear()

    def walk(self) -> Iterator[Span]:
        """Every completed span, depth-first across roots."""
        for r in list(self.roots):
            yield from r.walk()

    def find(self, name: str) -> list[Span]:
        """All completed spans with the given name, in completion order."""
        return [s for s in self.walk() if s.name == name]

    def to_dicts(self) -> list[dict]:
        """JSON-ready list of root span trees (most recent last)."""
        return [r.to_dict() for r in self.roots]

    def phase_totals(self) -> dict[str, float]:
        """Total seconds per span name, summed over every occurrence."""
        totals: dict[str, float] = {}
        for s in self.walk():
            totals[s.name] = totals.get(s.name, 0.0) + s.duration
        return totals


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-local default tracer."""
    return _tracer


def span(name: str, aggregate: bool = False, **attrs):
    """Open a span on the default tracer (context manager)."""
    return _tracer.span(name, aggregate=aggregate, **attrs)
