"""Versioned, machine-readable run reports.

The report is the single artifact of one pipeline run: what program was
partitioned, what tile was chosen, what the analytic model *predicted*
(cumulative footprints, Eq. 2 / Theorems 2–4), what the MSI machine
simulator *measured*, and how far apart the two are — the predicted-vs-
measured loop that EXPERIMENTS.md documents, as data instead of prose.

The schema is intentionally duck-typed over the repository's result
objects (``PartitionResult``, ``TrafficEstimate``, ``SimulationResult``)
so this module imports nothing outside the stdlib and can never create an
import cycle with the layers it observes.

Top-level shape (version 1)::

    {
      "schema": "repro.run-report",
      "version": 1,
      "generated_by": "repro <version>",
      "program":   {...},              # source, processors, bindings, space
      "partition": {...},              # method, tile, grid, comm-free
      "predicted": {...},              # per-tile analytic traffic
      "measured":  {...},              # simulator counts (when simulated)
      "prediction_error": {...},       # ratios predicted vs measured
      "spans":     [...],              # per-phase wall time (tracing)
      "metrics":   [...]               # raw registry snapshot
    }
"""

from __future__ import annotations

import json

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "CHECK_REPORT_SCHEMA",
    "CHECK_REPORT_VERSION",
    "ReportError",
    "build_report",
    "build_check_report",
    "predicted_section",
    "measured_section",
    "prediction_error_section",
    "dump_report",
    "load_report",
    "validate_report",
    "validate_check_report",
]

REPORT_SCHEMA = "repro.run-report"
REPORT_VERSION = 1

# Differential self-check reports (``repro check``, :mod:`repro.check`).
CHECK_REPORT_SCHEMA = "repro.check-report"
CHECK_REPORT_VERSION = 1

_REQUIRED_KEYS = ("schema", "version", "generated_by", "program", "predicted")
_REQUIRED_MEASURED_KEYS = ("total_misses", "miss_breakdown", "per_processor", "network")


class ReportError(ValueError):
    """A report violates the schema."""


def _ratio(measured: float, predicted: float) -> float | None:
    return (measured / predicted) if predicted else None


def predicted_section(estimate) -> dict:
    """Serialise a :class:`~repro.core.cost.TrafficEstimate`."""
    return {
        "cold_misses_per_tile": float(estimate.cold_misses),
        "coherence_traffic_per_tile": float(estimate.coherence_traffic),
        "tile_iterations": float(estimate.tile_iterations),
        "by_array": {k: float(v) for k, v in estimate.by_array().items()},
        "classes": [
            {
                "array": c.uiset.array,
                "references": c.uiset.size,
                "footprint": float(c.footprint),
                "single_footprint": float(c.single_footprint),
                "boundary": float(c.boundary),
            }
            for c in estimate.classes
        ],
    }


def partition_section(result) -> dict:
    """Serialise a :class:`~repro.core.partitioner.PartitionResult`."""
    out: dict = {
        "method": result.method,
        "communication_free": bool(result.is_communication_free),
        "l_matrix": result.tile.l_matrix.tolist(),
    }
    if getattr(result.tile, "sides", None) is not None:
        out["tile_sides"] = [int(s) for s in result.tile.sides]
    if result.grid is not None:
        out["grid"] = [int(g) for g in result.grid]
    return out


def _per_processor_breakdown(sim) -> dict[int, dict[str, int]]:
    """cold/coherence/replacement per processor, from the machine registry."""
    out: dict[int, dict[str, int]] = {}
    machine = getattr(sim, "machine", None)
    registry = getattr(machine, "metrics", None)
    if registry is None:
        return out
    for m in registry:
        if getattr(m, "name", "") == "sim.directory.miss_class":
            labels = dict(m.labels)
            proc, kind = labels.get("proc"), labels.get("kind")
            if proc is None or kind is None:
                continue
            out.setdefault(int(proc), {})[kind] = int(m.value)
    return out


def measured_section(sim) -> dict:
    """Serialise a :class:`~repro.sim.executor.SimulationResult`."""
    breakdown = _per_processor_breakdown(sim)
    per_proc = []
    for p in sim.processors:
        entry = {
            "processor": p.processor,
            "iterations": p.iterations,
            "accesses": p.accesses,
            "hits": p.hits,
            "misses": p.misses,
            "read_misses": p.read_misses,
            "write_misses": p.write_misses,
            "write_upgrades": p.write_upgrades,
            "local_misses": p.local_misses,
            "remote_misses": p.remote_misses,
            "memory_cost": p.memory_cost,
            "footprint": dict(p.footprint),
            "miss_breakdown": {
                "cold": 0,
                "coherence": 0,
                "replacement": 0,
                **breakdown.get(p.processor, {}),
            },
        }
        per_proc.append(entry)
    out: dict = {
        "sweeps": sim.sweeps,
        "total_accesses": sim.total_accesses,
        "total_misses": sim.total_misses,
        "miss_rate": sim.miss_rate,
        "mean_misses_per_processor": sim.mean_misses_per_processor(),
        "max_misses_per_processor": sim.max_misses_per_processor,
        "miss_breakdown": {
            "cold": int(sim.cold_misses),
            "coherence": int(sim.coherence_misses),
            "replacement": int(sim.capacity_misses),
        },
        "invalidations": int(sim.invalidations),
        "network": {
            "messages": int(sim.network_messages),
            "hops": int(sim.network_hops),
        },
        "shared_elements": dict(sim.shared_elements),
        "per_processor": per_proc,
    }
    engine = getattr(sim, "engine", None)
    if engine is not None:
        out["engine"] = {
            "used": engine,
            "fallback_reason": getattr(sim, "engine_fallback", None),
        }
    machine = getattr(sim, "machine", None)
    if machine is not None:
        out["sharer_histogram"] = {
            str(k): v for k, v in sorted(machine.directory.sharer_histogram().items())
        }
        recv = sum(int(c.stats.invalidations_received) for c in machine.caches)
        probe = sum(int(c.stats.probe_invalidations) for c in machine.caches)
        out["invalidation_reconciliation"] = {
            "directory_sent": int(sim.invalidations),
            "caches_received": recv,
            "probe_misses": probe,
            "reconciled": recv + probe == int(sim.invalidations),
        }
    return out


def prediction_error_section(estimate, sim, processors: int) -> dict:
    """Predicted-vs-measured ratios (the repository's yardstick numbers).

    ``ratio`` is measured / predicted (1.0 = the model is exact);
    ``rel_error`` is ``(measured - predicted) / predicted``.
    """

    def entry(predicted: float, measured: float) -> dict:
        return {
            "predicted": predicted,
            "measured": measured,
            "ratio": _ratio(measured, predicted),
            "rel_error": ((measured - predicted) / predicted) if predicted else None,
        }

    predicted_per_tile = float(estimate.cold_misses)
    out = {
        "misses_per_processor": entry(
            predicted_per_tile, sim.mean_misses_per_processor()
        ),
        "total_misses": entry(predicted_per_tile * processors, float(sim.total_misses)),
    }
    if sim.sweeps > 1:
        # Steady-state sweeps: the Figure 9 regime — boundary terms only.
        extra_sweeps = sim.sweeps - 1
        out["coherence_misses_per_sweep"] = entry(
            float(estimate.coherence_traffic) * processors,
            float(sim.coherence_misses) / extra_sweeps,
        )
    return out


def build_report(
    *,
    processors: int,
    partition=None,
    estimate=None,
    sim=None,
    program: dict | None = None,
    spans: list[dict] | None = None,
    metrics: list[dict] | None = None,
    caches: dict | None = None,
    meta: dict | None = None,
) -> dict:
    """Assemble a schema-versioned report from pipeline artifacts.

    ``partition`` is a ``PartitionResult`` (its estimate is used when
    ``estimate`` is not given); ``sim`` a ``SimulationResult``; ``spans``
    defaults to the process tracer's completed spans; ``metrics`` defaults
    to the simulated machine's registry snapshot.  ``caches`` is an
    optional hit/miss/load snapshot of the analytic caches
    (:func:`repro.lattice.analytic_cache_stats` — passed in by the caller
    to keep this module stdlib-only).
    """
    try:
        from .. import __version__ as _version
    except Exception:  # pragma: no cover
        _version = "unknown"
    if estimate is None and partition is not None:
        estimate = partition.estimate
    if estimate is None:
        raise ReportError("build_report needs an estimate or a partition result")
    if spans is None:
        from .tracing import get_tracer

        spans = get_tracer().to_dicts()
    if metrics is None and sim is not None:
        registry = getattr(getattr(sim, "machine", None), "metrics", None)
        metrics = registry.snapshot() if registry is not None else []
    report: dict = {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "generated_by": f"repro {_version}",
        "program": dict(program or {}),
        "predicted": predicted_section(estimate),
        "spans": spans or [],
        "metrics": metrics or [],
    }
    report["program"].setdefault("processors", int(processors))
    if partition is not None:
        report["partition"] = partition_section(partition)
    if sim is not None:
        report["measured"] = measured_section(sim)
        report["prediction_error"] = prediction_error_section(
            estimate, sim, processors
        )
    if caches is not None:
        report["caches"] = dict(caches)
    if meta:
        report["meta"] = dict(meta)
    return validate_report(report)


def validate_report(report: dict) -> dict:
    """Check the schema contract; returns the report for chaining."""
    if not isinstance(report, dict):
        raise ReportError(f"report must be a dict, got {type(report).__name__}")
    for key in _REQUIRED_KEYS:
        if key not in report:
            raise ReportError(f"report missing required key {key!r}")
    if report["schema"] != REPORT_SCHEMA:
        raise ReportError(f"unknown schema {report['schema']!r}")
    if report["version"] != REPORT_VERSION:
        raise ReportError(
            f"unsupported report version {report['version']!r} "
            f"(this reader handles {REPORT_VERSION})"
        )
    if "measured" in report:
        measured = report["measured"]
        for key in _REQUIRED_MEASURED_KEYS:
            if key not in measured:
                raise ReportError(f"measured section missing {key!r}")
        for key in ("cold", "coherence", "replacement"):
            if key not in measured["miss_breakdown"]:
                raise ReportError(f"miss_breakdown missing {key!r}")
    return report


def build_check_report(
    *,
    cases: int,
    seed: int,
    passed: int,
    failures: list[dict],
    invariant_evaluations: dict[str, int] | None = None,
    corpus: dict | None = None,
    config: dict | None = None,
    fault: str | None = None,
    duration_s: float | None = None,
    caches: dict | None = None,
    meta: dict | None = None,
) -> dict:
    """Assemble a ``repro.check-report`` from a differential-check run.

    ``failures`` entries are produced by :mod:`repro.check.harness` and
    carry the original + shrunk case specs, the violated invariant and
    its detail string.  ``invariant_evaluations`` records how often each
    invariant was *applicable* — an all-green run with zero evaluations
    would be vacuous, so the count travels with the verdict.
    """
    try:
        from .. import __version__ as _version
    except Exception:  # pragma: no cover
        _version = "unknown"
    report: dict = {
        "schema": CHECK_REPORT_SCHEMA,
        "version": CHECK_REPORT_VERSION,
        "generated_by": f"repro {_version}",
        "cases": int(cases),
        "seed": int(seed),
        "passed": int(passed),
        "failed": len(failures),
        "failures": list(failures),
        "invariant_evaluations": dict(invariant_evaluations or {}),
    }
    if corpus is not None:
        report["corpus"] = dict(corpus)
    if config is not None:
        report["config"] = dict(config)
    if fault is not None:
        report["injected_fault"] = fault
    if duration_s is not None:
        report["duration_s"] = float(duration_s)
    if caches is not None:
        # Note: the check harness deliberately does NOT pass this — cache
        # populations differ across worker counts, and check reports must
        # be byte-stable for a fixed seed regardless of --workers.
        report["caches"] = dict(caches)
    if meta:
        report["meta"] = dict(meta)
    return validate_check_report(report)


def validate_check_report(report: dict) -> dict:
    """Check the ``repro.check-report`` contract; returns the report."""
    if not isinstance(report, dict):
        raise ReportError(f"report must be a dict, got {type(report).__name__}")
    for key in ("schema", "version", "generated_by", "cases", "seed", "passed",
                "failed", "failures", "invariant_evaluations"):
        if key not in report:
            raise ReportError(f"check report missing required key {key!r}")
    if report["schema"] != CHECK_REPORT_SCHEMA:
        raise ReportError(f"unknown schema {report['schema']!r}")
    if report["version"] != CHECK_REPORT_VERSION:
        raise ReportError(
            f"unsupported check report version {report['version']!r} "
            f"(this reader handles {CHECK_REPORT_VERSION})"
        )
    if report["failed"] != len(report["failures"]):
        raise ReportError("check report 'failed' disagrees with failure list")
    for f in report["failures"]:
        for key in ("case_id", "invariant", "detail", "spec"):
            if key not in f:
                raise ReportError(f"check failure entry missing {key!r}")
    return report


def _validate_any(report: dict) -> dict:
    if isinstance(report, dict) and report.get("schema") == CHECK_REPORT_SCHEMA:
        return validate_check_report(report)
    return validate_report(report)


def dump_report(report: dict, path) -> None:
    """Validate and write a report as pretty-printed JSON.

    Dispatches on the ``schema`` field: both ``repro.run-report`` and
    ``repro.check-report`` documents are accepted.
    """
    _validate_any(report)
    if hasattr(path, "write"):
        json.dump(report, path, indent=2)
        path.write("\n")
    else:
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")


def load_report(path) -> dict:
    """Read and validate a report written by :func:`dump_report`."""
    if hasattr(path, "read"):
        report = json.load(path)
    else:
        with open(path) as fh:
            report = json.load(fh)
    return _validate_any(report)
