"""Unified observability layer (tracing · metrics · reporting).

Everything the repository measures flows through this package:

* :mod:`repro.obs.tracing` — nested wall-time spans (``with span("optimize.
  rectangular"): ...``) with optional peak-RSS capture, wrapped around every
  pipeline phase (lowering, classification, optimization, codegen,
  simulation);
* :mod:`repro.obs.metrics` — a registry of named counters / gauges /
  histograms the machine simulator publishes into; the public stats
  dataclasses (:class:`~repro.sim.cache.CacheStats`,
  :class:`~repro.sim.directory.CoherenceStats`) are *views* over it, so
  every pre-existing caller keeps working;
* :mod:`repro.obs.report` — a versioned, machine-readable JSON run report
  joining the paper's analytic prediction (:class:`~repro.core.cost.
  TrafficEstimate`) with the measured simulator counts, including
  prediction-error ratios;
* :mod:`repro.obs.export` — a sampled per-access JSONL event trace, plus
  the Prometheus text exposition renderer/parser behind ``/metrics``;
* :mod:`repro.obs.flight` — the per-request flight recorder behind the
  service's ``/debug`` endpoints, with cross-process trace stitching;
* :mod:`repro.obs.log` — the ``repro`` stdlib-logging hierarchy.

The package is dependency-free (stdlib only) so it can never constrain
where the analysis or simulator code runs.
"""

from .log import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
)
from .flight import FlightRecord, FlightRecorder, format_span_tree, stitch_trace
from .report import (
    CHECK_REPORT_SCHEMA,
    CHECK_REPORT_VERSION,
    build_check_report,
    validate_check_report,
    REPORT_SCHEMA,
    REPORT_VERSION,
    ReportError,
    build_report,
    dump_report,
    load_report,
    validate_report,
)
from .export import (
    EventTraceWriter,
    PrometheusFormatError,
    parse_prometheus_text,
    prometheus_text,
    prometheus_text_from_snapshot,
)
from .tracing import Span, Tracer, get_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_registry",
    "FlightRecord",
    "FlightRecorder",
    "format_span_tree",
    "stitch_trace",
    "PrometheusFormatError",
    "parse_prometheus_text",
    "prometheus_text",
    "prometheus_text_from_snapshot",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "REPORT_SCHEMA",
    "REPORT_VERSION",
    "ReportError",
    "build_report",
    "CHECK_REPORT_SCHEMA",
    "CHECK_REPORT_VERSION",
    "build_check_report",
    "validate_check_report",
    "dump_report",
    "load_report",
    "validate_report",
    "EventTraceWriter",
    "configure_logging",
    "get_logger",
]
