"""``repro top`` and ``repro trace`` — terminal views of a running server.

``python -m repro top`` polls a ``repro serve`` instance's ``/metrics``
and ``/debug`` endpoints and redraws a compact dashboard: throughput,
latency quantiles (from the server's own bounded-bucket histogram),
admission-queue depth, cache hit rates, SLO burn rates, worker health,
requests in flight, and the current slowest requests.  ``--once`` prints
a single frame and exits (used by the CI smoke job); otherwise it
redraws every ``--interval`` seconds until interrupted.

``python -m repro trace show <file|id>`` pretty-prints a stitched span
tree — from a JSON file (a run report with ``spans``, a
``/debug/requests/<id>`` payload, or a bare span tree), or fetched live
from a server by request id.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .obs.flight import format_span_tree
from .serve.client import ServeClient, ServeError

__all__ = ["top_main", "trace_main", "render_dashboard"]

_CLEAR = "\x1b[2J\x1b[H"


def _counter_total(metrics: list[dict], name: str) -> int:
    return sum(
        e.get("value", 0)
        for e in metrics
        if e.get("name") == name and e.get("type") == "counter"
    )


def _gauge(metrics: list[dict], name: str, default=None):
    for e in metrics:
        if e.get("name") == name and e.get("type") == "gauge":
            return e.get("value")
    return default


def _latency_rows(metrics: list[dict]) -> list[tuple[str, dict]]:
    rows = []
    for e in metrics:
        if e.get("name") in ("serve.latency_ms", "route.latency_ms") and e.get("count"):
            labels = e.get("labels", {})
            endpoint = labels.get("endpoint", "?")
            # A router's merged dump repeats each endpoint once per
            # replica; keep the rows distinct (and identifiable).
            if labels.get("replica"):
                endpoint = f"{endpoint} @{labels['replica']}"
            rows.append((endpoint, e))
    rows.sort(key=lambda row: row[0])
    return rows


def _fmt_ms(value) -> str:
    return f"{value:8.1f}" if isinstance(value, (int, float)) else f"{'-':>8}"


def render_dashboard(
    dump: dict,
    debug: dict,
    inflight: dict,
    *,
    prev_requests: int | None = None,
    elapsed_s: float | None = None,
) -> str:
    """One dashboard frame from the raw endpoint payloads (pure)."""
    server = dump.get("server", {})
    metrics = dump.get("metrics", [])
    lines: list[str] = []
    requests_total = _counter_total(metrics, "serve.requests")
    throughput = ""
    if prev_requests is not None and elapsed_s and elapsed_s > 0:
        throughput = f"  {max(requests_total - prev_requests, 0) / elapsed_s:8.1f} req/s"
    lines.append(
        f"repro top — {server.get('status', '?')}  "
        f"uptime {server.get('uptime_s', 0):.0f}s  "
        f"workers {server.get('workers', '?')}  "
        f"requests {requests_total}{throughput}"
    )
    lines.append(
        f"queue: {server.get('inflight', 0)}/{server.get('queue_depth', '?')} admitted"
        f"  rejected(429) {_counter_total(metrics, 'serve.rejected')}"
        f"  deadline(504) {_counter_total(metrics, 'serve.deadline_exceeded')}"
        f"  worker deaths {_counter_total(metrics, 'serve.worker_deaths')}"
    )
    hits = _counter_total(metrics, "serve.response_cache.hits")
    misses = _counter_total(metrics, "serve.response_cache.misses")
    coalesced = _counter_total(metrics, "serve.coalesced")
    total_lookups = hits + misses
    hit_rate = (hits / total_lookups * 100) if total_lookups else 0.0
    lattice = dump.get("caches", {}).get("lattice_cache", {})
    lattice_lookups = lattice.get("hits", 0) + lattice.get("misses", 0)
    lattice_rate = (
        lattice.get("hits", 0) / lattice_lookups * 100 if lattice_lookups else 0.0
    )
    caches_line = (
        f"caches: response {hits}/{total_lookups} hits ({hit_rate:.0f}%)"
        f"  coalesced {coalesced}"
        f"  lattice {lattice.get('entries', '?')} entries"
        f" ({lattice_rate:.0f}% hit)"
    )
    plan = dump.get("caches", {}).get("plan")
    if plan:
        plan_lookups = plan.get("hits", 0) + plan.get("misses", 0)
        plan_rate = plan.get("hits", 0) / plan_lookups * 100 if plan_lookups else 0.0
        caches_line += (
            f"  plan {plan.get('entries', '?')} plans"
            f" ({plan_rate:.0f}% hit, {plan.get('fallbacks', 0)} fallbacks)"
        )
    lines.append(caches_line)
    error_burn = _gauge(metrics, "serve.slo.error_burn")
    latency_burn = _gauge(metrics, "serve.slo.latency_burn")
    if error_burn is not None or latency_burn is not None:
        slo = dump.get("slo", {})
        lines.append(
            f"slo: error burn {error_burn if error_burn is not None else '-'}×"
            f"  latency burn {latency_burn if latency_burn is not None else '-'}×"
            f"  (targets: p99 {slo.get('p99_ms', '?')} ms, "
            f"errors {slo.get('error_rate', '?')})"
        )
    lat = _latency_rows(metrics)
    if lat:
        lines.append("")
        lines.append(f"{'endpoint':<24}{'count':>8}{'p50':>9}{'p95':>9}{'p99':>9}{'max':>9}")
        for endpoint, e in lat:
            lines.append(
                f"{endpoint:<24}{e['count']:>8}"
                f"{_fmt_ms(e.get('p50'))}{_fmt_ms(e.get('p95'))}"
                f"{_fmt_ms(e.get('p99'))}{_fmt_ms(e.get('max'))}"
            )
    current = inflight.get("inflight", [])
    if current:
        lines.append("")
        lines.append(f"in flight ({len(current)}):")
        for r in current[:8]:
            lines.append(
                f"  {r.get('request_id', '?'):<20} {r.get('endpoint', '?'):<16}"
                f" {r.get('age_ms', 0):>9.1f} ms"
            )
    slowest = debug.get("slowest", [])
    if slowest:
        lines.append("")
        lines.append("slowest requests (pinned exemplars):")
        for r in slowest[:8]:
            lines.append(
                f"  {r.get('request_id', '?'):<20} {r.get('endpoint', '?'):<16}"
                f" {r.get('total_ms', 0):>9.1f} ms"
                f"  cache={r.get('cache', '-')}"
                f"  status={r.get('status', '-')}"
            )
    errored = [r for r in debug.get("requests", []) if r.get("error_code")]
    if errored:
        lines.append("")
        lines.append("recent errors:")
        for r in errored[:5]:
            lines.append(
                f"  {r.get('request_id', '?'):<20} {r.get('endpoint', '?'):<16}"
                f" status={r.get('status', '?')} [{r.get('error_code')}]"
            )
    return "\n".join(lines)


def build_top_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro top",
        description="Live terminal dashboard over a running repro serve "
        "instance (/metrics + /debug/requests + /debug/inflight).",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between redraws")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (no screen clearing)")
    return p


def top_main(argv: list[str] | None = None, *, out=None) -> int:
    """Entry point for ``repro top``."""
    parser = build_top_parser()
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error(f"--interval must be > 0, got {args.interval}")
    out = out or sys.stdout
    prev_requests: int | None = None
    prev_t: float | None = None
    try:
        while True:
            try:
                with ServeClient(args.host, args.port, timeout=10.0) as client:
                    dump = client.metrics()
                    debug = client.debug_requests()
                    inflight = client.debug_inflight()
            except (ServeError, OSError) as e:
                print(f"top: cannot reach {args.host}:{args.port}: {e}", file=out)
                return 1
            now = time.perf_counter()
            frame = render_dashboard(
                dump,
                debug,
                inflight,
                prev_requests=prev_requests,
                elapsed_s=(now - prev_t) if prev_t is not None else None,
            )
            prev_requests = _counter_total(dump.get("metrics", []), "serve.requests")
            prev_t = now
            if args.once:
                print(frame, file=out)
                return 0
            print(f"{_CLEAR}{frame}", file=out, flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _extract_tree(payload):
    """Find the span tree inside any of the shapes we write to disk."""
    if isinstance(payload, list):
        return payload
    if isinstance(payload, dict):
        if "trace" in payload and isinstance(payload["trace"], (dict, list)):
            return payload["trace"]  # /debug/requests/<id> payload
        if "spans" in payload and isinstance(payload["spans"], list):
            return payload["spans"]  # repro.run-report document
        if "name" in payload:
            return payload  # bare span tree
    return None


def build_trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro trace",
        description="Pretty-print a stitched span tree from a JSON file "
        "or a running server's flight recorder.",
    )
    p.add_argument("action", choices=["show"])
    p.add_argument("target", metavar="FILE|REQUEST_ID",
                   help="a JSON file (run report, /debug payload, or span "
                   "tree) or a request id to fetch from --host/--port")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    return p


def trace_main(argv: list[str] | None = None, *, out=None) -> int:
    """Entry point for ``repro trace``."""
    parser = build_trace_parser()
    args = parser.parse_args(argv)
    out = out or sys.stdout
    import os

    if os.path.exists(args.target):
        try:
            with open(args.target, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"trace: cannot read {args.target!r}: {e}", file=out)
            return 1
    else:
        try:
            with ServeClient(args.host, args.port, timeout=10.0) as client:
                payload = client.debug_request(args.target)
        except ServeError as e:
            print(f"trace: server has no request {args.target!r}: {e}", file=out)
            return 1
        except OSError as e:
            print(
                f"trace: {args.target!r} is not a file and "
                f"{args.host}:{args.port} is unreachable: {e}",
                file=out,
            )
            return 1
        record = payload.get("record")
        if record:
            print(
                f"request {record.get('request_id')}  "
                f"endpoint {record.get('endpoint')}  "
                f"status {record.get('status')}  "
                f"cache {record.get('cache', '-')}  "
                f"total {record.get('total_ms', '-')} ms",
                file=out,
            )
    tree = _extract_tree(payload)
    if tree is None or tree == []:
        print("trace: no span tree found in payload", file=out)
        return 1
    try:
        print(format_span_tree(tree), file=out)
    except BrokenPipeError:  # piped into head etc.
        pass
    return 0
