"""repro — reproduction of Agarwal, Kranz & Natarajan (ICPP 1993),
*Automatic Partitioning of Parallel Loops for Cache-Coherent
Multiprocessors*.

Quickstart
----------
>>> from repro import compile_nest, LoopPartitioner, simulate_nest
>>> nest = compile_nest('''
... Doall (i, 1, N)
...   Doall (j, 1, N)
...     A[i,j] = B[i-1,j] + B[i+1,j]
...   EndDoall
... EndDoall
... ''', {"N": 32})
>>> result = LoopPartitioner(nest, processors=16).partition()

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's framework: affine references,
  classification, footprints, cumulative footprints, tile optimization.
* :mod:`repro.lattice` — exact integer-lattice machinery (HNF/SNF,
  bounded lattices, point counting).
* :mod:`repro.lang` — the Doall-language frontend.
* :mod:`repro.codegen` — schedules, data alignment, mesh placement,
  program execution.
* :mod:`repro.sim` — the cache-coherent multiprocessor simulator.
* :mod:`repro.baselines` — Abraham–Hudak, Ramanujam–Sadayappan, naive.
"""

from .core import (
    AccessKind,
    AffineRef,
    ArrayAccess,
    IterationSpace,
    Loop,
    LoopNest,
    LoopPartitioner,
    ParallelepipedTile,
    PartitionResult,
    RectangularTile,
    Tiling,
    UISet,
    communication_free_partition,
    cumulative_footprint_rect,
    cumulative_footprint_size,
    cumulative_footprint_size_exact,
    estimate_traffic,
    footprint_det_size,
    footprint_size,
    footprint_size_exact,
    loop_footprint_size,
    optimize_parallelepiped,
    optimize_rectangular,
    partition_references,
    references_intersect,
    spread_vector,
    uniformly_generated,
    uniformly_intersecting,
)
from .lang import compile_nest, parse_program
from .sim import Machine, MachineConfig, simulate_nest

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AccessKind",
    "AffineRef",
    "ArrayAccess",
    "IterationSpace",
    "Loop",
    "LoopNest",
    "LoopPartitioner",
    "ParallelepipedTile",
    "PartitionResult",
    "RectangularTile",
    "Tiling",
    "UISet",
    "communication_free_partition",
    "cumulative_footprint_rect",
    "cumulative_footprint_size",
    "cumulative_footprint_size_exact",
    "estimate_traffic",
    "footprint_det_size",
    "footprint_size",
    "footprint_size_exact",
    "loop_footprint_size",
    "optimize_parallelepiped",
    "optimize_rectangular",
    "partition_references",
    "references_intersect",
    "spread_vector",
    "uniformly_generated",
    "uniformly_intersecting",
    "compile_nest",
    "parse_program",
    "Machine",
    "MachineConfig",
    "simulate_nest",
]
