"""Naive partitions: rows, columns, square-ish blocks (Figure 3's shapes).

These are the strawmen every example measures against; they also seed
sweeps in the benchmarks (aspect-ratio series for the figures).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.loopnest import IterationSpace
from ..core.tiles import RectangularTile
from ..exceptions import PartitionError

__all__ = ["rows_partition", "cols_partition", "square_partition", "strip_partition"]


def strip_partition(space: IterationSpace, processors: int, dim: int) -> tuple[RectangularTile, tuple[int, ...]]:
    """Cut only along dimension ``dim`` into ``P`` strips."""
    if not 0 <= dim < space.depth:
        raise PartitionError(f"dimension {dim} out of range")
    ext = space.extents
    if processors > ext[dim]:
        raise PartitionError(
            f"cannot cut dimension of extent {ext[dim]} into {processors} strips"
        )
    sides = [int(e) for e in ext]
    sides[dim] = -(-int(ext[dim]) // processors)
    grid = [1] * space.depth
    grid[dim] = processors
    return RectangularTile(sides), tuple(grid)


def rows_partition(space: IterationSpace, processors: int) -> tuple[RectangularTile, tuple[int, ...]]:
    """Strips along the outermost dimension (each tile = bundle of rows)."""
    return strip_partition(space, processors, 0)


def cols_partition(space: IterationSpace, processors: int) -> tuple[RectangularTile, tuple[int, ...]]:
    """Strips along the innermost dimension."""
    return strip_partition(space, processors, space.depth - 1)


def square_partition(space: IterationSpace, processors: int) -> tuple[RectangularTile, tuple[int, ...]]:
    """The most-square feasible processor grid (blocks, Figure 3b).

    Chooses the grid factorisation minimising the spread of tile side
    lengths (log-ratio distance from a perfect cube).
    """
    from ..core.optimize import factorizations

    ext = space.extents
    best_key = None
    best = None
    for grid in factorizations(processors, space.depth):
        if any(p > n for p, n in zip(grid, ext)):
            continue
        sides = [-(-int(n) // int(p)) for n, p in zip(ext, grid)]
        key = (max(sides) / min(sides), tuple(grid))
        if best_key is None or key < best_key:
            best_key = key
            best = (tuple(grid), sides)
    if best is None:
        raise PartitionError(
            f"no feasible grid for P={processors} on extents {ext.tolist()}"
        )
    grid, sides = best
    return RectangularTile(sides), grid
