"""Abraham & Hudak rectangular loop partitioning (TPDS 2(3), 1991).

Their problem domain (as summarised in Section 2.1 of the reproduced
paper): a perfect ``Doall`` nest whose body references a *single* array
through subscripts of the form ``index + constant`` — i.e. every
reference has ``G = I`` and only the offset vectors differ.

Their algorithm (independent re-implementation, used as the comparison
oracle for Example 8):

1. the per-dimension *overlap* of a tile with its neighbours is the
   spread of the offsets in that dimension;
2. for a candidate processor grid ``(p_1..p_l)`` with tile sides
   ``s_k = ⌈N_k / p_k⌉``, the per-tile coherency traffic estimate is
   ``Σ_k â_k · Π_{j≠k} s_j`` (boundary slabs);
3. enumerate all factorisations of ``P`` and pick the grid minimising the
   estimate.

The reproduced paper's claim (Example 8): its framework, restricted to
this domain, selects the same tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classify import partition_references
from ..core.loopnest import LoopNest
from ..core.spread import spread_vector
from ..core.tiles import RectangularTile
from ..exceptions import PartitionError

__all__ = ["AbrahamHudakResult", "abraham_hudak_partition"]


@dataclass(frozen=True)
class AbrahamHudakResult:
    """Chosen grid/tile plus the traffic estimate that selected it."""

    tile: RectangularTile
    grid: tuple[int, ...]
    traffic: float
    spread: np.ndarray


def _check_domain(nest: LoopNest) -> str:
    """Validate the A&H restrictions; returns the single array name."""
    arrays = nest.arrays()
    if len(arrays) != 1:
        raise PartitionError(
            f"Abraham-Hudak handles a single array; nest uses {list(arrays)}"
        )
    eye = np.eye(nest.depth, dtype=np.int64)
    for acc in nest.accesses:
        if acc.ref.g.shape != (nest.depth, nest.depth) or not np.array_equal(
            acc.ref.g, eye
        ):
            raise PartitionError(
                f"Abraham-Hudak requires subscripts of the form index+constant; "
                f"{acc.ref!r} violates this"
            )
    return arrays[0]


def abraham_hudak_partition(nest: LoopNest, processors: int) -> AbrahamHudakResult:
    """Run the A&H grid search on a conforming nest.

    Raises :class:`~repro.exceptions.PartitionError` outside their domain
    (e.g. matrix multiply — the reproduced paper's Section 2.1 complaint).
    """
    _check_domain(nest)
    sets = partition_references(nest.accesses)
    # All references share G = I; classes may still split by offset cosets
    # (they do not for G = I: every offset difference is reachable).  Sum
    # spreads across classes for generality.
    a_hat = np.zeros(nest.depth, dtype=np.int64)
    for s in sets:
        a_hat += spread_vector(s.offsets)
    extents = nest.space.extents
    best: tuple[float, tuple[int, ...]] | None = None
    from ..core.optimize import factorizations

    for grid in factorizations(processors, nest.depth):
        if any(p > n for p, n in zip(grid, extents)):
            continue
        sides = [int(-(-int(n) // int(p))) for n, p in zip(extents, grid)]
        traffic = 0.0
        for k in range(nest.depth):
            others = 1.0
            for j in range(nest.depth):
                if j != k:
                    others *= sides[j]
            traffic += float(a_hat[k]) * others
        key = (traffic, grid)
        if best is None or key < best:
            best = key
    if best is None:
        raise PartitionError(
            f"no feasible grid for P={processors} on extents {extents.tolist()}"
        )
    traffic, grid = best
    sides = tuple(int(-(-int(n) // int(p))) for n, p in zip(extents, grid))
    return AbrahamHudakResult(
        tile=RectangularTile(sides), grid=grid, traffic=traffic, spread=a_hat
    )
