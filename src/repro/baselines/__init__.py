"""Baseline partitioning algorithms the paper compares against (S11).

* :mod:`repro.baselines.abraham_hudak` — Abraham & Hudak's rectangular
  partitioning for caches (TPDS 1991): single array, subscripts
  ``index + constant`` (``G = I``).  Example 8 shows the framework
  reproducing its answers.
* :mod:`repro.baselines.ramanujam_sadayappan` — Ramanujam & Sadayappan's
  communication-free hyperplane partitioning (TPDS 1991): finds
  iteration/data hyperplanes with zero cross-tile traffic when they
  exist, and reports nonexistence otherwise (Examples 2 and 10).
* :mod:`repro.baselines.naive` — rows / columns / square blocks, the
  strawman partitions of Figure 3.
"""

from .abraham_hudak import abraham_hudak_partition, AbrahamHudakResult
from .ramanujam_sadayappan import (
    communication_free_hyperplanes,
    data_hyperplane,
    RSResult,
)
from .naive import rows_partition, cols_partition, square_partition

__all__ = [
    "abraham_hudak_partition",
    "AbrahamHudakResult",
    "communication_free_hyperplanes",
    "data_hyperplane",
    "RSResult",
    "rows_partition",
    "cols_partition",
    "square_partition",
]
