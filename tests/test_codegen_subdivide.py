"""Tests for cache-driven tile subdivision (Section 2.2's small-cache remark)."""

import numpy as np
import pytest

from repro._util import box_points_array
from repro.codegen import blocked_iteration_order, subdivide_for_cache
from repro.core import (
    AffineRef,
    RectangularTile,
    cumulative_footprint_size_exact,
    partition_references,
)
from repro.exceptions import PartitionError
from repro.sim import Machine, MachineConfig


I2 = np.eye(2, dtype=np.int64)


def stencil_refs():
    return [
        AffineRef("B", I2, [0, 0]),
        AffineRef("B", I2, [2, 0]),
    ]


class TestSubdivide:
    def test_fits_capacity(self):
        refs = stencil_refs()
        sub = subdivide_for_cache(refs, RectangularTile([16, 16]), 60)
        sets = partition_references(refs)
        fp = sum(cumulative_footprint_size_exact(s, sub) for s in sets)
        assert fp <= 60

    def test_noop_when_already_fits(self):
        refs = stencil_refs()
        sub = subdivide_for_cache(refs, RectangularTile([4, 4]), 1000)
        assert sub.sides.tolist() == [4, 4]

    def test_aspect_ratio_roughly_preserved(self):
        """Halving the largest side keeps the ratio within a factor 2 —
        'the optimal loop partition aspect ratios do not change'."""
        refs = stencil_refs()
        tile = RectangularTile([32, 8])  # ratio 4
        sub = subdivide_for_cache(refs, tile, 80)
        ratio = sub.sides[0] / sub.sides[1]
        assert 1.9 <= ratio <= 8.1

    def test_impossible_capacity(self):
        refs = stencil_refs()
        # unit-tile footprint of {B[i,j], B[i+2,j]} is 2 elements
        with pytest.raises(PartitionError):
            subdivide_for_cache(refs, RectangularTile([4, 4]), 1)
        with pytest.raises(PartitionError):
            subdivide_for_cache(refs, RectangularTile([4, 4]), 0)

    def test_accepts_uisets(self):
        sets = partition_references(stencil_refs())
        sub = subdivide_for_cache(sets, RectangularTile([16, 16]), 60)
        assert sub.iterations <= 60


class TestBlockedOrder:
    def test_permutation(self):
        its = box_points_array([0, 0], [7, 7])
        out = blocked_iteration_order(its, RectangularTile([4, 4]))
        assert out.shape == its.shape
        assert np.array_equal(
            np.unique(out, axis=0), np.unique(its, axis=0)
        )

    def test_groups_contiguous(self):
        its = box_points_array([0, 0], [7, 7])
        out = blocked_iteration_order(its, RectangularTile([4, 4]))
        blocks = (out // 4)
        # block index changes at most 3 times (4 blocks)
        changes = np.sum(np.any(np.diff(blocks, axis=0) != 0, axis=1))
        assert changes == 3

    def test_empty(self):
        its = np.empty((0, 2), dtype=np.int64)
        out = blocked_iteration_order(its, RectangularTile([2, 2]))
        assert out.shape == (0, 2)

    def test_respects_origin(self):
        its = box_points_array([1, 1], [4, 4])
        out = blocked_iteration_order(its, RectangularTile([2, 2]), origin=[1, 1])
        assert out[0].tolist() == [1, 1]

    def test_reduces_capacity_misses(self):
        """When the stencil's streaming window exceeds the cache, the
        sub-tile order thrashes far less than plain row-major order —
        the point of the Section 2.2 small-cache adjustment."""
        refs = stencil_refs()
        its = box_points_array([0, 0], [15, 15])
        cap = 24  # smaller than the 3-row window (48) row-major needs
        sub = subdivide_for_cache(refs, RectangularTile([16, 16]), cap)

        def run(order) -> int:
            m = Machine(MachineConfig(processors=1, cache_capacity=cap))
            for it in order:
                for r in refs:
                    c = tuple(int(x) for x in r(it))
                    m.access(0, "B", c, "read")
            return m.directory.stats.capacity_misses

        blocked = run(blocked_iteration_order(its, sub))
        rowmajor = run(its)
        assert blocked < rowmajor
