"""Tests for the Smith normal form and integer solving (repro.lattice.snf)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import int_det, int_rank
from repro.lattice.snf import (
    integer_kernel_basis,
    lattice_index,
    smith_normal_form,
    solve_integer,
)


def matrices(rows, cols, lo=-5, hi=5):
    return st.lists(
        st.lists(st.integers(lo, hi), min_size=cols, max_size=cols),
        min_size=rows,
        max_size=rows,
    )


class TestSNFStructure:
    def test_known(self):
        assert smith_normal_form([[2, 0], [0, 3]]).invariant_factors == (1, 6)

    def test_transform_relation(self):
        a = np.array([[2, 4, 4], [-6, 6, 12], [10, 4, 16]])
        res = smith_normal_form(a)
        assert np.array_equal(res.u @ a @ res.v, res.d)
        assert abs(int_det(res.u)) == 1
        assert abs(int_det(res.v)) == 1

    def test_divisibility_chain(self):
        a = np.array([[2, 4, 4], [-6, 6, 12], [10, 4, 16]])
        f = smith_normal_form(a).invariant_factors
        for i in range(len(f) - 1):
            if f[i + 1] != 0:
                assert f[i + 1] % f[i] == 0

    def test_zero_matrix(self):
        res = smith_normal_form(np.zeros((2, 2), dtype=int))
        assert res.invariant_factors == (0, 0)
        assert res.rank == 0

    def test_rectangular(self):
        res = smith_normal_form([[2, 0, 0], [0, 3, 0]])
        assert res.rank == 2
        assert np.array_equal(
            res.u @ np.array([[2, 0, 0], [0, 3, 0]]) @ res.v, res.d
        )

    def test_nonnegative_factors(self):
        res = smith_normal_form([[-5]])
        assert res.invariant_factors == (5,)

    @given(matrices(3, 3))
    def test_properties_random(self, m):
        a = np.array(m)
        res = smith_normal_form(a)
        assert np.array_equal(res.u @ a @ res.v, res.d)
        assert abs(int_det(res.u)) == 1
        assert abs(int_det(res.v)) == 1
        # diagonal (off-diagonal zero)
        d = res.d
        for i in range(d.shape[0]):
            for j in range(d.shape[1]):
                if i != j:
                    assert d[i, j] == 0
        f = res.invariant_factors
        for i in range(len(f) - 1):
            assert f[i] >= 0
            if f[i + 1] != 0 and f[i] != 0:
                assert f[i + 1] % f[i] == 0
        assert res.rank == int_rank(a)

    @given(matrices(2, 4))
    def test_properties_wide(self, m):
        a = np.array(m)
        res = smith_normal_form(a)
        assert np.array_equal(res.u @ a @ res.v, res.d)


class TestSolveInteger:
    def test_example10_decomposition(self):
        x = solve_integer([[1, 1], [1, -1]], [4, 2])
        assert x is not None and x.tolist() == [3, 1]

    def test_no_solution_parity(self):
        # x*(1,1) + y*(1,-1) = (1,0): needs x+y=1, x-y=0 -> x=1/2
        assert solve_integer([[1, 1], [1, -1]], [1, 0]) is None

    def test_nonintersecting_strides(self):
        # A[2i] vs A[2i+1]: x*2 = 1 unsolvable
        assert solve_integer([[2]], [1]) is None
        assert solve_integer([[2]], [4]) is not None

    def test_underdetermined(self):
        x = solve_integer([[1, 0], [0, 1], [1, 1]], [5, 7])
        assert x is not None
        assert (x @ np.array([[1, 0], [0, 1], [1, 1]]) == np.array([5, 7])).all()

    def test_overdetermined_inconsistent(self):
        # x*(1,2) = (1,1): x=1 and 2x=1 conflict
        assert solve_integer([[1, 2]], [1, 1]) is None

    def test_zero_rhs(self):
        x = solve_integer([[3, 6]], [0, 0])
        assert x is not None and (x @ np.array([[3, 6]]) == 0).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_integer([[1, 2]], [1, 2, 3])

    @given(matrices(2, 3), st.lists(st.integers(-4, 4), min_size=2, max_size=2))
    def test_complete_on_solvable(self, m, xs):
        """If b is constructed as x·A the solver must find a solution."""
        a = np.array(m)
        b = np.array(xs) @ a
        sol = solve_integer(a, b)
        assert sol is not None
        assert np.array_equal(sol @ a, b)

    @given(matrices(2, 2), st.lists(st.integers(-8, 8), min_size=2, max_size=2))
    def test_sound(self, m, bs):
        """Whatever the solver returns must actually solve the system."""
        a = np.array(m)
        b = np.array(bs)
        sol = solve_integer(a, b)
        if sol is not None:
            assert np.array_equal(sol @ a, b)


class TestLatticeIndex:
    def test_square(self):
        assert lattice_index([[1, 1], [1, -1]]) == 2
        assert lattice_index([[1, 0], [0, 1]]) == 1

    def test_rank_deficient(self):
        assert lattice_index([[1, 2], [2, 4]]) == 0

    def test_tall(self):
        # rows (2,0),(0,2),(1,1) generate the checkerboard lattice: index 2
        assert lattice_index([[2, 0], [0, 2], [1, 1]]) == 2

    @given(matrices(2, 2))
    def test_equals_abs_det_square_fullrank(self, m):
        a = np.array(m)
        d = abs(int_det(a))
        if d != 0:
            assert lattice_index(a) == d


class TestIntegerKernel:
    def test_full_rank_empty(self):
        k = integer_kernel_basis([[1, 0], [0, 1]])
        assert k.shape == (0, 2)

    def test_known_kernel(self):
        k = integer_kernel_basis([[1], [2]])
        assert k.shape == (1, 2)
        assert (k @ np.array([[1], [2]]) == 0).all()

    def test_zero_matrix_full_kernel(self):
        k = integer_kernel_basis(np.zeros((2, 2), dtype=int))
        assert k.shape == (2, 2)
        assert abs(int_det(k)) == 1

    @given(matrices(3, 2))
    def test_kernel_annihilates(self, m):
        a = np.array(m)
        k = integer_kernel_basis(a)
        assert k.shape[0] == 3 - int_rank(a)
        if k.size:
            assert np.all(k @ a == 0)

    @given(matrices(3, 2), st.lists(st.integers(-3, 3), min_size=3, max_size=3))
    def test_kernel_complete(self, m, xs):
        """Any integer kernel vector is an integer combination of the basis."""
        a = np.array(m)
        x = np.array(xs)
        if np.any(x @ a != 0):
            return
        k = integer_kernel_basis(a)
        if np.all(x == 0):
            return
        assert k.size > 0
        assert solve_integer(k, x) is not None
