"""Tests for symbolic footprint polynomials against the paper's formulas."""

import numpy as np
import pytest

from repro.core import RectangularTile, cumulative_footprint_rect, partition_references
from repro.core.symbolic import (
    RectFootprintPolynomial,
    class_polynomial,
    loop_polynomial,
)


class TestPolynomialAlgebra:
    def test_from_dict_drops_zeros(self):
        p = RectFootprintPolynomial.from_dict({(0,): 0.0, (1,): 2.0}, ("i", "j"))
        assert p.coefficient((0,)) == 0.0
        assert p.coefficient((1,)) == 2.0

    def test_add(self):
        a = RectFootprintPolynomial.from_dict({(0, 1): 1.0, (0,): 2.0}, ("i", "j"))
        b = RectFootprintPolynomial.from_dict({(0, 1): 1.0, (1,): 3.0}, ("i", "j"))
        c = a + b
        assert c.coefficient((0, 1)) == 2.0
        assert c.coefficient((0,)) == 2.0
        assert c.coefficient((1,)) == 3.0

    def test_add_name_mismatch(self):
        a = RectFootprintPolynomial.from_dict({}, ("i",))
        b = RectFootprintPolynomial.from_dict({}, ("j",))
        with pytest.raises(ValueError):
            a + b

    def test_evaluate(self):
        p = RectFootprintPolynomial.from_dict(
            {(0, 1): 1.0, (0,): 2.0, (): 5.0}, ("i", "j")
        )
        assert p.evaluate([3, 4]) == 12 + 6 + 5

    def test_str_zero(self):
        assert str(RectFootprintPolynomial.from_dict({}, ("i",))) == "0"

    def test_str_ordering_volume_first(self):
        p = RectFootprintPolynomial.from_dict(
            {(0,): 2.0, (0, 1): 1.0}, ("i", "j")
        )
        assert str(p) == "i*j + 2*i"

    def test_partition_sensitive(self):
        p = RectFootprintPolynomial.from_dict(
            {(0, 1): 1.0, (0,): 2.0}, ("i", "j")
        )
        q = p.partition_sensitive()
        assert q.coefficient((0, 1)) == 0.0
        assert q.coefficient((0,)) == 2.0


class TestPaperPolynomials:
    def test_example8_string(self, example8_nest):
        poly = loop_polynomial(list(example8_nest.accesses), ("Li", "Lj", "Lk"))
        # A contributes one volume term, B another + the spread terms.
        assert str(poly) == "2*Li*Lj*Lk + 4*Li*Lj + 3*Li*Lk + 2*Lj*Lk"

    def test_example8_b_class_matches_paper(self, example8_nest):
        sets = partition_references(example8_nest.accesses)
        b = next(s for s in sets if s.array == "B")
        poly = class_polynomial(b, ("Li", "Lj", "Lk"))
        assert str(poly) == "Li*Lj*Lk + 4*Li*Lj + 3*Li*Lk + 2*Lj*Lk"

    def test_example9_total(self, example9_nest):
        """The determinant-consistent total: 3 volume terms + 4L11 + 4L22."""
        poly = loop_polynomial(list(example9_nest.accesses), ("L11", "L22"))
        assert poly.coefficient((0, 1)) == 3.0  # A, B, C volume terms
        assert poly.coefficient((0,)) == 4.0
        assert poly.coefficient((1,)) == 4.0

    def test_example10_objective(self, example10_nest):
        poly = loop_polynomial(list(example10_nest.accesses), ("Li", "Lj"))
        sens = poly.partition_sensitive()
        # paper: minimise 2(L_i+1) + 3(L_j+1) -> coefficients (2, 3) on the
        # *sides*: term in s_i comes from u_j and vice versa.
        assert sens.coefficient((0,)) == 2.0
        assert sens.coefficient((1,)) == 3.0

    def test_evaluate_matches_theorem4(self, example10_nest):
        sets = partition_references(example10_nest.accesses)
        poly = loop_polynomial(sets, ("i", "j"))
        for sides in ([6, 4], [18, 12]):
            t = RectangularTile(sides)
            direct = sum(cumulative_footprint_rect(s, t) for s in sets)
            assert poly.evaluate(sides) == direct

    def test_singular_class_volume_only(self):
        """A[i+j] has no Theorem-4 polynomial: volume term only."""
        from repro.core import AffineRef

        refs = [
            AffineRef("A", [[1], [1]], [0]),
            AffineRef("A", [[1], [1]], [1]),
        ]
        poly = loop_polynomial(refs, ("i", "j"))
        assert str(poly) == "i*j"
