"""Tests for the differential self-check subsystem (:mod:`repro.check`)."""

import numpy as np
import pytest

from repro.check import (
    CaseSpec,
    ClassSpec,
    CheckConfig,
    check_main,
    generate_case,
    load_corpus,
    run_case,
    run_check,
    save_corpus,
    shrink,
    spec_from_dict,
    spec_to_dict,
)
from repro.check.harness import inject_fault
from repro.lang.parser import parse_program
from repro.obs.report import (
    CHECK_REPORT_SCHEMA,
    build_check_report,
    dump_report,
    load_report,
    validate_check_report,
)

CORPUS = "tests/data/check_corpus.json"


class TestGenerator:
    def test_deterministic(self):
        for cid in range(10):
            a = generate_case(cid, seed=7)
            b = generate_case(cid, seed=7)
            assert a == b

    def test_seed_changes_cases(self):
        assert any(
            generate_case(cid, seed=0) != generate_case(cid, seed=1)
            for cid in range(10)
        )

    def test_declared_ranges(self):
        saw_depths, saw_lines = set(), set()
        for cid in range(60):
            s = generate_case(cid, seed=0)
            assert 1 <= s.depth <= 3
            assert 2 <= s.processors <= 16
            assert s.line_size in (1, 2, 4, 8)
            assert s.total_accesses <= 6000
            assert any(k != "read" for c in s.classes for k in c.kinds)
            for c in s.classes:
                assert len(c.g) == s.depth
            saw_depths.add(s.depth)
            saw_lines.add(s.line_size)
        assert saw_depths == {1, 2, 3}
        assert len(saw_lines) > 1

    def test_access_cap_respected(self):
        s = generate_case(0, seed=0, max_accesses=200)
        assert s.total_accesses <= 200

    def test_source_parses(self):
        for cid in range(20):
            s = generate_case(cid, seed=3)
            program = parse_program(s.source())
            assert len(program.nests) == 1


class TestRunCheck:
    def test_small_run_green(self):
        report = run_check(cases=10, seed=0)
        assert report["failed"] == 0
        assert report["passed"] == 10
        validate_check_report(report)
        # Every oracle family actually fired.
        evals = report["invariant_evaluations"]
        for name in (
            "parse-roundtrip",
            "engine-parity",
            "union-bound",
            "rect-integerisation",
            "codegen-coverage",
            "fills-ge-distinct-lines",
        ):
            assert evals.get(name, 0) > 0, name

    def test_corpus_replay_green(self):
        """Tier-1 regression: every pinned corpus case keeps passing."""
        report = run_check(cases=0, seed=0, corpus_path=CORPUS)
        assert report["failed"] == 0, report["failures"]
        assert report["cases"] == len(load_corpus(CORPUS))

    def test_report_schema_roundtrip(self, tmp_path):
        report = run_check(cases=2, seed=0)
        assert report["schema"] == CHECK_REPORT_SCHEMA
        path = tmp_path / "check.json"
        dump_report(report, path)
        assert load_report(path) == report

    def test_check_main_cli(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = check_main(
            ["--cases", "3", "--seed", "0", "--json-report", str(out)]
        )
        assert rc == 0
        assert "3 passed, 0 failed" in capsys.readouterr().out
        assert load_report(out)["passed"] == 3


class TestFaultInjection:
    def test_spread_fault_caught_and_shrunk(self):
        """A deliberately perturbed spread coefficient must be detected and
        the witness shrunk to a <= 2-deep nest (acceptance criterion)."""
        report = run_check(
            cases=12,
            seed=0,
            fault="spread",
            config=CheckConfig(shrink_budget=120),
        )
        assert report["failed"] >= 1
        assert report["injected_fault"] == "spread"
        f = report["failures"][0]
        assert f["invariant"] == "theorem4-ge-exact"
        assert f["shrunk_depth"] <= 2
        assert f["shrink_steps"] >= 1
        parse_program(f["shrunk_source"])  # witness is a valid program

    def test_exact_count_fault_caught(self):
        report = run_check(
            cases=2,
            seed=0,
            fault="exact-count",
            config=CheckConfig(shrink_budget=40),
        )
        assert report["failed"] >= 1

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            with inject_fault("nope"):
                pass

    def test_fault_is_scoped(self):
        """The patch is undone when the context exits."""
        from repro.core import cumulative as _cum

        orig = _cum.spread_coefficients
        with inject_fault("spread"):
            assert _cum.spread_coefficients is not orig
        assert _cum.spread_coefficients is orig


class TestShrink:
    def test_shrinks_to_minimal_volume(self):
        """Artificial predicate: fails while the volume is >= 12."""
        spec = generate_case(4, seed=0)

        def fails(s):
            return "big" if s.volume >= 12 else None

        small, steps = shrink(spec, fails)
        assert steps > 0
        assert 12 <= small.volume < spec.volume
        # Fixpoint: no candidate shrinks further.
        again, more = shrink(small, fails)
        assert more == 0 or again.volume >= 12

    def test_passing_spec_untouched(self):
        spec = generate_case(0, seed=0)
        same, steps = shrink(spec, lambda s: None)
        assert same == spec and steps == 0

    def test_budget_caps_evaluations(self):
        spec = generate_case(4, seed=0)
        evals = []

        def fails(s):
            evals.append(1)
            return "always"

        shrink(spec, fails, budget=5)
        assert len(evals) <= 6  # initial check + budget

    def test_keeps_a_write(self):
        """Mutations never produce an all-read nest."""
        spec = generate_case(4, seed=0)
        small, _ = shrink(spec, lambda s: "always", budget=80)
        assert any(k != "read" for c in small.classes for k in c.kinds)


class TestCorpusFormat:
    def test_spec_dict_roundtrip(self):
        for cid in range(8):
            spec = generate_case(cid, seed=0)
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_save_load(self, tmp_path):
        path = tmp_path / "corpus.json"
        spec = CaseSpec(
            case_id=1,
            depth=1,
            extents=(4,),
            processors=2,
            line_size=1,
            sweeps=1,
            classes=(
                ClassSpec(
                    array="A", g=((1,),), offsets=((0,),), kinds=("write",)
                ),
            ),
        )
        save_corpus(path, [{"spec": spec_to_dict(spec), "note": "tiny"}])
        entries = load_corpus(path)
        assert len(entries) == 1
        assert spec_from_dict(entries[0]["spec"]) == spec

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other", "version": 1, "entries": []}')
        with pytest.raises(ValueError, match="not a check corpus"):
            load_corpus(path)


class TestCheckReport:
    def test_build_and_validate(self):
        report = build_check_report(
            cases=3,
            seed=1,
            passed=2,
            failures=[
                {
                    "case_id": 2,
                    "invariant": "union-bound",
                    "detail": "x",
                    "spec": {},
                }
            ],
        )
        validate_check_report(report)

    def test_failure_count_mismatch_rejected(self):
        report = build_check_report(cases=1, seed=0, passed=1, failures=[])
        report["failed"] = 3
        with pytest.raises(ValueError):
            validate_check_report(report)


class TestLineFootprintOracle:
    def test_exact_line_footprints_match_simulated_fills(self, example8_nest):
        """With line_size > 1 the per-processor line fills (misses minus
        upgrades) equal the exact cumulative *line* footprints evaluated at
        each processor's tile origin — alignment differences included
        (line_size 8 does not divide the tile side 12)."""
        from repro.core import RectangularTile, partition_references
        from repro.core.cumulative import cumulative_line_footprint_exact
        from repro.core.tiles import Tiling
        from repro.sim import Machine, MachineConfig, simulate_nest
        from repro.sim.trace import assign_tiles_to_processors

        nest = example8_nest
        tile = RectangularTile([12, 12, 12])
        line_size = 8
        uisets = partition_references(nest.accesses)
        blocks = assign_tiles_to_processors(Tiling(nest.space, tile), 8)
        result = simulate_nest(
            nest,
            tile,
            8,
            machine=Machine(MachineConfig(processors=8, line_size=line_size)),
        )
        origins = {p: blocks[p].min(axis=0) for p in blocks}
        predictions = set()
        for p in result.processors:
            expected = sum(
                cumulative_line_footprint_exact(
                    s, tile, line_size, origin=origins[p.processor]
                )
                for s in uisets
            )
            fills = int(p.misses) - int(p.write_upgrades)
            assert fills == expected
            predictions.add(expected)
        # The misalignment really exercised the origin dependence.
        assert len(predictions) > 1

    def test_unit_lines_reduce_to_element_footprint(self, example2_nest):
        from repro.core import RectangularTile, partition_references
        from repro.core.cumulative import (
            cumulative_footprint_size_exact,
            cumulative_line_footprint_exact,
        )

        tile = RectangularTile([10, 10])
        for s in partition_references(example2_nest.accesses):
            assert cumulative_line_footprint_exact(
                s, tile, 1, origin=np.array([1, 1])
            ) == cumulative_footprint_size_exact(s, tile)
