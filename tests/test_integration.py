"""End-to-end integration: parse → classify → partition → simulate.

The contract under test is the paper's central identity (Section 3.3):
for infinite caches and a single sweep, the number of cache misses a tile
incurs equals the size of its cumulative footprint — so the partitioner's
*prediction* must equal the simulator's *measurement*, reference class by
reference class, for every example in the paper.
"""

import numpy as np
import pytest

from repro.core import (
    LoopPartitioner,
    RectangularTile,
    estimate_traffic,
)
from repro.lang import compile_nest
from repro.sim import simulate_nest


ALL_EXAMPLES = [
    "example2_nest",
    "example3_nest",
    "example6_nest",
    "example8_nest",
    "example9_nest",
    "example10_nest",
    "matmul_nest",
]


@pytest.mark.parametrize("fixture_name", ALL_EXAMPLES)
def test_predicted_misses_equal_measured(fixture_name, request):
    nest = request.getfixturevalue(fixture_name)
    p = 4
    part = LoopPartitioner(nest, p).partition()
    est = estimate_traffic(nest, part.tile, method="exact")
    sim = simulate_nest(nest, part.tile, p)
    assert sim.mean_misses_per_processor() == pytest.approx(est.cold_misses)


@pytest.mark.slow
@pytest.mark.parametrize("fixture_name", ALL_EXAMPLES)
def test_optimal_beats_naive(fixture_name, request):
    """The chosen partition is never worse than rows/cols/square blocks."""
    from repro.baselines.naive import cols_partition, rows_partition, square_partition

    nest = request.getfixturevalue(fixture_name)
    p = 4
    part = LoopPartitioner(nest, p).partition()
    chosen = simulate_nest(nest, part.tile, p).total_misses
    for baseline in (rows_partition, cols_partition, square_partition):
        try:
            tile, _grid = baseline(nest.space, p)
        except Exception:
            continue
        base = simulate_nest(nest, tile, p).total_misses
        assert chosen <= base, (fixture_name, baseline.__name__)


class TestExample2EndToEnd:
    def test_full_story(self, example2_nest):
        """The complete Example 2 narrative, mechanically verified."""
        part = LoopPartitioner(example2_nest, 100).partition()
        # The framework picks partition (a): 100x1 strips.
        assert part.tile.sides.tolist() == [100, 1]
        assert part.is_communication_free
        # Partition (a): 104 B-misses per tile, no sharing.
        a = simulate_nest(example2_nest, part.tile, 100)
        assert a.mean_footprint("B") == 104
        assert a.shared_elements["B"] == 0
        # Partition (b): 140 B-misses per tile, heavy sharing.
        b = simulate_nest(example2_nest, RectangularTile([10, 10]), 100)
        assert b.mean_footprint("B") == 140
        assert b.shared_elements["B"] > 0

    def test_repeat_sweeps_amplify_gap(self, example2_nest):
        """Re-executing the loop (Doseq regime) leaves partition (a)
        hitting in cache while (b) keeps missing only if data changes;
        with read-only B both stop missing — traffic gap is first-sweep."""
        a2 = simulate_nest(example2_nest, RectangularTile([100, 1]), 100, sweeps=2)
        a1 = simulate_nest(example2_nest, RectangularTile([100, 1]), 100, sweeps=1)
        assert a2.total_misses == a1.total_misses  # second sweep all hits


class TestScaling:
    def test_more_processors_smaller_tiles(self, example8_nest):
        prev = None
        for p in (2, 4, 8):
            part = LoopPartitioner(example8_nest, p).partition()
            vol = part.tile.iterations
            if prev is not None:
                assert vol < prev
            prev = vol

    def test_miss_totals_grow_with_processors(self, example8_nest):
        """More tiles -> more cumulative boundary -> more total misses."""
        m2 = simulate_nest(example8_nest, LoopPartitioner(example8_nest, 2).partition().tile, 2)
        m8 = simulate_nest(example8_nest, LoopPartitioner(example8_nest, 8).partition().tile, 8)
        assert m8.total_misses >= m2.total_misses


class TestFiniteCaches:
    @pytest.mark.slow
    def test_optimal_shape_unchanged(self, example8_nest):
        """Section 2.2: small caches change totals, not the optimal aspect
        ratio ordering."""
        t_opt = RectangularTile([12, 12, 12])
        t_bad = RectangularTile([24, 24, 3])
        inf_opt = simulate_nest(example8_nest, t_opt, 8).total_misses
        inf_bad = simulate_nest(example8_nest, t_bad, 8).total_misses
        fin_opt = simulate_nest(example8_nest, t_opt, 8, cache_capacity=2048).total_misses
        fin_bad = simulate_nest(example8_nest, t_bad, 8, cache_capacity=2048).total_misses
        assert inf_opt < inf_bad
        assert fin_opt < fin_bad
