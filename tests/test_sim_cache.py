"""Tests for the per-processor cache model."""

import pytest

from repro.sim.cache import Cache, LineState


class TestReads:
    def test_miss_then_hit(self):
        c = Cache()
        assert not c.lookup_read("x")
        c.fill("x", LineState.SHARED)
        assert c.lookup_read("x")
        assert c.stats.read_misses == 1 and c.stats.read_hits == 1

    def test_contains(self):
        c = Cache()
        c.fill("x", LineState.SHARED)
        assert "x" in c and "y" not in c
        assert len(c) == 1


class TestWrites:
    def test_write_miss(self):
        c = Cache()
        assert c.lookup_write("x") == "miss"
        assert c.stats.write_misses == 1

    def test_write_upgrade_from_shared(self):
        c = Cache()
        c.fill("x", LineState.SHARED)
        assert c.lookup_write("x") == "upgrade"
        assert c.stats.write_upgrades == 1

    def test_write_hit_on_modified(self):
        c = Cache()
        c.fill("x", LineState.MODIFIED)
        assert c.lookup_write("x") == "hit"
        assert c.stats.write_hits == 1

    def test_misses_counts_upgrades(self):
        c = Cache()
        c.fill("x", LineState.SHARED)
        c.lookup_write("x")
        assert c.stats.misses == 1  # the upgrade is memory-visible


class TestStateChanges:
    def test_invalidate(self):
        c = Cache()
        c.fill("x", LineState.SHARED)
        assert c.invalidate("x")
        assert "x" not in c
        assert c.stats.invalidations_received == 1
        assert not c.invalidate("x")

    def test_downgrade(self):
        c = Cache()
        c.fill("x", LineState.MODIFIED)
        assert c.downgrade("x")
        assert c.state("x") is LineState.SHARED
        assert not c.downgrade("x")  # already shared

    def test_set_state_requires_presence(self):
        c = Cache()
        with pytest.raises(KeyError):
            c.set_state("x", LineState.SHARED)

    def test_flush(self):
        c = Cache()
        c.fill("x", LineState.SHARED)
        c.flush()
        assert len(c) == 0


class TestLRU:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Cache(capacity=0)

    def test_eviction_order(self):
        c = Cache(capacity=2)
        c.fill("a", LineState.SHARED)
        c.fill("b", LineState.SHARED)
        evicted = c.fill("c", LineState.SHARED)
        assert evicted == ["a"]
        assert c.stats.evictions == 1

    def test_touch_on_read_prevents_eviction(self):
        c = Cache(capacity=2)
        c.fill("a", LineState.SHARED)
        c.fill("b", LineState.SHARED)
        c.lookup_read("a")  # now b is LRU
        evicted = c.fill("c", LineState.SHARED)
        assert evicted == ["b"]

    def test_refill_same_addr_no_eviction(self):
        c = Cache(capacity=1)
        c.fill("a", LineState.SHARED)
        evicted = c.fill("a", LineState.MODIFIED)
        assert evicted == []
        assert c.state("a") is LineState.MODIFIED

    def test_infinite_by_default(self):
        c = Cache()
        for i in range(1000):
            c.fill(i, LineState.SHARED)
        assert len(c) == 1000
        assert c.stats.evictions == 0
