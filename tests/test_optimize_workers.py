"""Parallel grid-search scoring must match the serial optimizer exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classify import partition_references
from repro.core.optimize import optimize_rectangular
from repro.lang import compile_nest
from repro.lattice.points import LatticeCountCache

STENCIL = """
Doall (i, 1, N)
  Doall (j, 1, N)
    Doall (k, 1, N)
      A(i,j,k) = B(i-1,j,k+1) + B(i,j+1,k) + B(i+1,j-2,k-3)
    EndDoall
  EndDoall
EndDoall
"""

COLLAPSING = """
Doall (i, 1, N)
  Doall (j, 1, N)
    A(i,j) = B(i+j) + B(i+j+3) + C(i+j,i-j)
  EndDoall
EndDoall
"""


def _opt(source, n, processors, **kw):
    nest = compile_nest(source, {"N": n})
    uisets = partition_references(nest.accesses)
    return optimize_rectangular(uisets, nest.space, processors, **kw)


@pytest.mark.parametrize("scoring", ["theorem4", "exact"])
@pytest.mark.parametrize("source,n,p", [(STENCIL, 24, 12), (COLLAPSING, 30, 6)])
def test_workers_match_serial(source, n, p, scoring):
    serial = _opt(source, n, p, scoring=scoring)
    fanned = _opt(source, n, p, scoring=scoring, workers=2)
    assert fanned.grid == serial.grid
    assert fanned.predicted_cost == serial.predicted_cost
    assert np.array_equal(fanned.tile.sides, serial.tile.sides)


def test_workers_share_cache_entries():
    cache = LatticeCountCache()
    _opt(STENCIL, 24, 12, scoring="exact", cache=cache, workers=2)
    # Workers computed in child processes and shipped their fresh entries
    # back; the parent absorbs them (hits/misses happen child-side).
    entries = len(cache)
    assert entries > 0
    # A warm second run seeds the workers with every entry, so nothing
    # fresh comes back and the cache is unchanged.
    _opt(STENCIL, 24, 12, scoring="exact", cache=cache, workers=2)
    assert len(cache) == entries
    # Serial warm run over the same grid search hits the shared cache.
    _opt(STENCIL, 24, 12, scoring="exact", cache=cache)
    assert cache.hits > 0 and cache.misses == 0


def test_workers_validated():
    with pytest.raises(ValueError):
        _opt(STENCIL, 24, 12, workers=0)


def test_few_candidates_fall_back_to_serial():
    # P prime and large relative to the space: the feasible grid list is
    # tiny, so the pool is skipped entirely — result must still be exact.
    serial = _opt(STENCIL, 24, 23)
    fanned = _opt(STENCIL, 24, 23, workers=4)
    assert fanned.grid == serial.grid
    assert fanned.predicted_cost == serial.predicted_cost
