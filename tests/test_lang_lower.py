"""Tests for AST → loop-nest IR lowering."""

import numpy as np
import pytest

from repro.core.affine import AccessKind
from repro.exceptions import LoweringError
from repro.lang import compile_nest, parse_program
from repro.lang.lower import lower_nest, lower_program


class TestLowering:
    def test_example1_matrix(self):
        """Example 1: A(i3+2, 5, i2-1, 4) in a triply nested loop."""
        nest = compile_nest(
            """
            Doall (i1, 1, 4)
             Doall (i2, 1, 4)
              Doall (i3, 1, 4)
               X(i1,i2,i3) = A(i3+2, 5, i2-1, 4)
              EndDoall
             EndDoall
            EndDoall
            """
        )
        a = nest.accesses[1].ref
        assert a.g.tolist() == [
            [0, 0, 0, 0],
            [0, 0, 1, 0],
            [1, 0, 0, 0],
        ]
        assert a.offset.tolist() == [2, 5, -1, 4]

    def test_kinds(self):
        nest = compile_nest("Doall (i, 1, 4)\n A[i] = B[i] + l$C[i]\nEndDoall\n")
        kinds = [acc.kind for acc in nest.accesses]
        assert kinds == [AccessKind.WRITE, AccessKind.READ, AccessKind.SYNC]

    def test_sync_lhs(self):
        nest = compile_nest("Doall (i, 1, 4)\n l$C[i] = C[i]\nEndDoall\n")
        assert nest.accesses[0].kind is AccessKind.SYNC

    def test_bindings(self):
        nest = compile_nest("Doall (i, 1, N)\n A[i] = B[i]\nEndDoall\n", {"N": 7})
        assert nest.loops[0].upper == 7

    def test_unbound_size_raises(self):
        with pytest.raises(LoweringError):
            compile_nest("Doall (i, 1, N)\n A[i] = B[i]\nEndDoall\n")

    def test_unbound_subscript_symbol(self):
        with pytest.raises(LoweringError):
            compile_nest("Doall (i, 1, 4)\n A[i+m] = B[i]\nEndDoall\n")

    def test_bound_subscript_symbol_folds(self):
        nest = compile_nest(
            "Doall (i, 1, 4)\n A[i+m] = B[i]\nEndDoall\n", {"m": 3}
        )
        assert nest.accesses[0].ref.offset.tolist() == [3]

    def test_doseq_outermost(self):
        nest = compile_nest(
            "Doseq (t, 1, 3)\n Doall (i, 1, 4)\n  A[i] = B[i]\n EndDoall\nEndDoseq\n"
        )
        assert nest.has_sequential_wrapper
        assert nest.depth == 1

    def test_doseq_inside_doall_rejected(self):
        with pytest.raises(LoweringError):
            compile_nest(
                "Doall (i, 1, 4)\n Doseq (t, 1, 3)\n  A[i] = B[i]\n EndDoseq\nEndDoall\n"
            )

    def test_doseq_index_in_subscript_rejected(self):
        with pytest.raises(LoweringError):
            compile_nest(
                "Doseq (t, 1, 3)\n Doall (i, 1, 4)\n  A[i+t] = B[i]\n EndDoall\nEndDoseq\n"
            )

    def test_imperfect_nest_rejected(self):
        src = """
        Doall (i, 1, 4)
          A[i] = B[i]
          Doall (j, 1, 4)
            C[i,j] = D[i,j]
          EndDoall
        EndDoall
        """
        with pytest.raises(LoweringError):
            compile_nest(src)

    def test_two_inner_loops_rejected(self):
        src = """
        Doall (i, 1, 4)
          Doall (j, 1, 4)
            A[i,j] = B[i,j]
          EndDoall
          Doall (k, 1, 4)
            C[i,k] = D[i,k]
          EndDoall
        EndDoall
        """
        with pytest.raises(LoweringError):
            compile_nest(src)

    def test_multiple_statements(self):
        nest = compile_nest(
            "Doall (i, 1, 4)\n A[i] = B[i]\n C[i] = A[i+1]\nEndDoall\n"
        )
        assert len(nest.accesses) == 4

    def test_empty_body_rejected(self):
        with pytest.raises(LoweringError):
            compile_nest("Doall (i, 1, 4)\nEndDoall\n")

    def test_doseq_only_rejected(self):
        with pytest.raises(LoweringError):
            compile_nest("Doseq (t, 1, 4)\n A[t] = B[t]\nEndDoseq\n")

    def test_compile_nest_single_nest_only(self):
        with pytest.raises(LoweringError):
            compile_nest(
                "Doall (i, 1, 2)\n A[i] = B[i]\nEndDoall\n"
                "Doall (j, 1, 2)\n C[j] = D[j]\nEndDoall\n"
            )

    def test_lower_program_multiple(self):
        prog = parse_program(
            "Doall (i, 1, 2)\n A[i] = B[i]\nEndDoall\n"
            "Doall (j, 1, 3)\n C[j] = D[j]\nEndDoall\n"
        )
        nests = lower_program(prog)
        assert len(nests) == 2
        assert nests[1].loops[0].upper == 3

    def test_bound_evaluation_with_expressions(self):
        nest = compile_nest(
            "Doall (i, N-1, 2*N)\n A[i] = B[i]\nEndDoall\n", {"N": 5}
        )
        assert (nest.loops[0].lower, nest.loops[0].upper) == (4, 10)

    def test_matmul_figure11(self):
        nest = compile_nest(
            """
            Doall (i, 1, 4)
             Doall (j, 1, 4)
              Doall (k, 1, 4)
               l$C[i,j] = l$C[i,j] + A[i,k] * B[k,j]
              EndDoall
             EndDoall
            EndDoall
            """
        )
        c = nest.accesses[0].ref
        assert c.g.tolist() == [[1, 0], [0, 1], [0, 0]]
        b = nest.accesses[3].ref
        assert b.g.tolist() == [[0, 0], [0, 1], [1, 0]]
