"""Tests for the structure-keyed partition-plan tier (repro.core.plan).

Covers the canonical structure key (bounds/P invariance, reference-order
invariance, codec compatibility), exact plan-vs-numeric parity on the
paper's examples and a fuzzed sample (cost, grid, and tile must match
the numeric Theorem-4 optimizer bit-for-bit whenever a plan applies),
instantiation-time fallback taxonomy, the PlanCache counters and
cross-process stats shipping, persistence (v2 schema, v1 acceptance,
unknown-section preservation), the optimize_rectangular wiring, and the
``--inject-fault plan`` self-test plumbing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.check.generator import generate_case
from repro.core.classify import partition_references
from repro.core.optimize import optimize_rectangular
from repro.core.plan import (
    DEFAULT_PLAN_CACHE,
    SOLVER_VERSION,
    PlanCache,
    instantiate_plan,
    plan_optimize,
    solve_plan,
)
from repro.core.structure import class_descriptor, structure_key
from repro.lang import lower_nest, parse_program
from repro.lattice.persist import decode_key, encode_key

STENCIL = """\
Doall (i, 1, {n})
  Doall (j, 1, {n})
    A[i,j] = B[i+1,j] + B[i,j+2]
  EndDoall
EndDoall
"""

#: (file-relative source, bindings, processors) — the differential-test
#: example corpus, reused here as the plan-parity pinned set.
PAPER_EXAMPLES = [
    ("example2.doall", {}, 100),
    ("example3.doall", {"N": 36}, 9),
    ("example6.doall", {}, 25),
    ("example8.doall", {"N": 24}, 8),
    ("matmul.doall", {"N": 32}, 16),
]


def _classify(source: str, bindings: dict | None = None):
    nest = lower_nest(parse_program(source).nests[0], bindings or {})
    return nest, partition_references(nest.accesses)


def _example_path(name: str):
    from pathlib import Path

    return Path(__file__).resolve().parent.parent / "examples" / name


class TestStructureKey:
    def test_bounds_and_processors_abstracted(self):
        nest_a, sets_a = _classify(STENCIL.format(n=16))
        nest_b, sets_b = _classify(STENCIL.format(n=57))
        assert nest_a.space.extents.tolist() != nest_b.space.extents.tolist()
        assert structure_key(sets_a, nest_a.space.depth) == structure_key(
            sets_b, nest_b.space.depth
        )

    def test_offsets_change_key(self):
        _, sets_a = _classify(STENCIL.format(n=16))
        _, sets_b = _classify(
            STENCIL.format(n=16).replace("B[i+1,j]", "B[i+2,j]")
        )
        assert structure_key(sets_a, 2) != structure_key(sets_b, 2)

    def test_reference_order_immaterial(self):
        _, sets_a = _classify(STENCIL.format(n=16))
        _, sets_b = _classify(
            STENCIL.format(n=16).replace(
                "B[i+1,j] + B[i,j+2]", "B[i,j+2] + B[i+1,j]"
            )
        )
        assert structure_key(sets_a, 2) == structure_key(sets_b, 2)

    def test_translation_normalised(self):
        """A common offset translation never splits a family (Prop. 1)."""
        _, sets_a = _classify(STENCIL.format(n=16))
        _, sets_b = _classify(
            STENCIL.format(n=16).replace(
                "B[i+1,j] + B[i,j+2]", "B[i+4,j+3] + B[i+3,j+5]"
            )
        )
        assert structure_key(sets_a, 2) == structure_key(sets_b, 2)

    def test_key_survives_persist_codec(self):
        _, sets = _classify(STENCIL.format(n=16))
        key = structure_key(sets, 2)
        assert decode_key(encode_key(key)) == key

    def test_descriptor_covers_write_flag(self):
        _, sets = _classify(STENCIL.format(n=16))
        descs = [class_descriptor(s) for s in sets]
        assert {d[-1] for d in descs} == {0, 1}  # B read-only, A written


def _plan_vs_numeric(nest, uisets, processors):
    numeric = optimize_rectangular(
        uisets, nest.space, processors, scoring="theorem4"
    )
    planned = plan_optimize(
        uisets, nest.space, processors, cache=PlanCache()
    )
    return numeric, planned


class TestPlanParity:
    @pytest.mark.parametrize("filename,bindings,processors", PAPER_EXAMPLES)
    def test_paper_examples_exact(self, filename, bindings, processors):
        """On the paper's worked examples the plan is never a fallback
        and reproduces the numeric optimum exactly."""
        nest, uisets = _classify(_example_path(filename).read_text(), bindings)
        numeric, planned = _plan_vs_numeric(nest, uisets, processors)
        assert planned is not None, f"{filename}: unexpected plan fallback"
        assert planned.predicted_cost == numeric.predicted_cost
        assert tuple(planned.grid) == tuple(numeric.grid)
        assert planned.tile.sides.tolist() == numeric.tile.sides.tolist()
        assert np.allclose(planned.continuous_sides, numeric.continuous_sides)

    def test_fuzz_sample_parity(self):
        """Fuzzed nests: every applicable plan matches the numeric
        optimizer exactly; fallbacks only for declared reasons."""
        cache = PlanCache()
        applicable = fallbacks = 0
        for case_id in range(40):
            spec = generate_case(case_id, 0)
            nest, uisets = _classify(spec.source())
            try:
                numeric = optimize_rectangular(
                    uisets, nest.space, spec.processors, scoring="theorem4"
                )
            except Exception:
                continue
            planned = plan_optimize(
                uisets, nest.space, spec.processors, cache=cache
            )
            if planned is None:
                fallbacks += 1
                continue
            applicable += 1
            assert planned.predicted_cost == numeric.predicted_cost, spec.source()
            assert tuple(planned.grid) == tuple(numeric.grid), spec.source()
        assert applicable > 0
        # Acceptance gate: fallbacks stay a small minority.
        assert fallbacks < (applicable + fallbacks) * 0.2
        assert set(cache.fallback_reasons()) <= {
            "singular-class",
            "class-too-large",
            "line-range",
            "overflow",
            "no-feasible-grid",
        }

    def test_warm_hit_reuses_payload(self):
        nest, uisets = _classify(STENCIL.format(n=16))
        cache = PlanCache()
        first = plan_optimize(uisets, nest.space, 4, cache=cache)
        nest2, uisets2 = _classify(STENCIL.format(n=44))
        second = plan_optimize(uisets2, nest2.space, 9, cache=cache)
        assert first is not None and second is not None
        stats = cache.stats()
        assert stats == {
            "entries": 1, "hits": 1, "misses": 1, "loads": 0, "fallbacks": 0,
        }

    def test_payload_survives_json(self):
        """Plans persist as pure JSON; a round-tripped payload
        instantiates to the identical result."""
        nest, uisets = _classify(STENCIL.format(n=16))
        payload = solve_plan(uisets, nest.space.depth)
        rt = json.loads(json.dumps(payload))
        a, ra = instantiate_plan(payload, nest.space.extents, 4)
        b, rb = instantiate_plan(rt, nest.space.extents, 4)
        assert ra is None and rb is None
        assert a.predicted_cost == b.predicted_cost
        assert a.grid == b.grid


class TestInstantiationFallbacks:
    def _payload(self):
        nest, uisets = _classify(STENCIL.format(n=16))
        return solve_plan(uisets, nest.space.depth), nest

    def test_stale_payload_version(self):
        payload, nest = self._payload()
        payload = dict(payload, version=SOLVER_VERSION + 1)
        result, reason = instantiate_plan(payload, nest.space.extents, 4)
        assert result is None and reason == "stale-payload"

    def test_depth_mismatch(self):
        payload, _ = self._payload()
        result, reason = instantiate_plan(payload, [16, 16, 16], 4)
        assert result is None and reason == "depth-mismatch"

    def test_p_out_of_range(self):
        payload, nest = self._payload()
        result, reason = instantiate_plan(payload, nest.space.extents, 10**6)
        assert result is None and reason == "p-out-of-range"
        result, reason = instantiate_plan(payload, nest.space.extents, 0)
        assert result is None and reason == "p-out-of-range"

    def test_volume_overflow(self):
        payload, _ = self._payload()
        result, reason = instantiate_plan(payload, [2**21, 2**21], 4)
        assert result is None and reason == "overflow"

    def test_no_feasible_grid(self):
        payload, nest = self._payload()
        # 97 is prime and exceeds both extents: no grid factorisation
        # (but 97 < 16*16, so P itself is in range).
        result, reason = instantiate_plan(payload, [16, 16], 97)
        assert result is None and reason == "no-feasible-grid"


class TestPlanCache:
    def test_export_absorb_entries(self):
        nest, uisets = _classify(STENCIL.format(n=16))
        a = PlanCache()
        plan_optimize(uisets, nest.space, 4, cache=a)
        b = PlanCache()
        assert b.absorb_entries(a.export_entries()) == 1
        assert len(b) == 1 and b.loads == 1
        # Absorbing again (or junk) adds nothing.
        assert b.absorb_entries(a.export_entries()) == 0
        assert b.absorb_entries([("junk-key", "not-a-dict")]) == 0
        # The absorbed payload serves hits without re-solving.
        nest2, uisets2 = _classify(STENCIL.format(n=60))
        assert plan_optimize(uisets2, nest2.space, 4, cache=b) is not None
        assert b.stats()["hits"] == 1 and b.stats()["misses"] == 0

    def test_absorb_stats_delta(self):
        a = PlanCache()
        a.absorb_stats(
            {"hits": 3, "misses": 2, "fallbacks": 1,
             "fallback_reasons": {"singular-class": 1}}
        )
        assert a.stats()["hits"] == 3
        assert a.stats()["misses"] == 2
        assert a.stats()["fallbacks"] == 1
        assert a.fallback_reasons() == {"singular-class": 1}

    def test_clear_keeps_counters(self):
        nest, uisets = _classify(STENCIL.format(n=16))
        cache = PlanCache()
        plan_optimize(uisets, nest.space, 4, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    def test_default_cache_in_analytic_stats(self):
        from repro.lattice import analytic_cache_stats

        stats = analytic_cache_stats()
        assert set(stats) == {"footprint_table", "lattice_cache", "plan"}
        assert set(stats["plan"]) == {
            "entries", "hits", "misses", "loads", "fallbacks",
        }


class TestOptimizeWiring:
    def test_plan_cache_argument_matches_numeric(self):
        nest, uisets = _classify(STENCIL.format(n=20))
        cache = PlanCache()
        with_plan = optimize_rectangular(
            uisets, nest.space, 4, scoring="theorem4", plan_cache=cache
        )
        without = optimize_rectangular(uisets, nest.space, 4, scoring="theorem4")
        assert with_plan.predicted_cost == without.predicted_cost
        assert tuple(with_plan.grid) == tuple(without.grid)
        assert cache.stats()["misses"] == 1
        # Warm path: the second call is a structure hit.
        optimize_rectangular(
            uisets, nest.space, 8, scoring="theorem4", plan_cache=cache
        )
        assert cache.stats()["hits"] == 1

    def test_plan_tier_skipped_for_exact_scoring(self):
        nest, uisets = _classify(STENCIL.format(n=8))
        cache = PlanCache()
        optimize_rectangular(
            uisets, nest.space, 4, scoring="exact", plan_cache=cache
        )
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "loads": 0, "fallbacks": 0,
        }

    def test_partitioner_forwards_plan_cache(self):
        from repro.core.partitioner import LoopPartitioner

        nest, _ = _classify(STENCIL.format(n=16))
        cache = PlanCache()
        result = LoopPartitioner(nest, 4).partition(plan_cache=cache)
        assert result.grid is not None
        assert len(cache) == 1


class TestPersistence:
    def test_plan_round_trip(self, tmp_path):
        from repro.lattice.persist import load_caches, save_caches
        from repro.lattice.points import FootprintTable, LatticeCountCache

        nest, uisets = _classify(STENCIL.format(n=16))
        a = PlanCache()
        plan_optimize(uisets, nest.space, 4, cache=a)
        save_caches(
            tmp_path,
            footprint_table=FootprintTable(),
            lattice_cache=LatticeCountCache(),
            plan_cache=a,
        )
        b = PlanCache()
        loaded = load_caches(
            tmp_path,
            footprint_table=FootprintTable(),
            lattice_cache=LatticeCountCache(),
            plan_cache=b,
        )
        assert loaded == 1 and len(b) == 1
        assert b.export_entries() == a.export_entries()
        # The reloaded plan instantiates without re-solving.
        nest2, uisets2 = _classify(STENCIL.format(n=48))
        assert plan_optimize(uisets2, nest2.space, 6, cache=b) is not None
        assert b.stats()["hits"] == 1 and b.stats()["misses"] == 0

    def test_v1_file_accepted(self, tmp_path):
        """A version-1 cache file (no plan section) still warm-starts
        the count caches."""
        from repro.lattice.persist import (
            CACHE_FILENAME,
            CACHE_SCHEMA,
            load_caches,
        )
        from repro.lattice.points import FootprintTable, LatticeCountCache

        doc = {
            "schema": CACHE_SCHEMA,
            "version": 1,
            "caches": {"lattice_cache": [[{"t": ["k", 3]}, 7.0]]},
        }
        (tmp_path / CACHE_FILENAME).write_text(json.dumps(doc))
        lc = LatticeCountCache()
        assert (
            load_caches(
                tmp_path,
                footprint_table=FootprintTable(),
                lattice_cache=lc,
                plan_cache=PlanCache(),
            )
            == 1
        )
        assert lc.get_or_compute(("k", 3), lambda: 0) == 7.0

    def test_unknown_sections_preserved(self, tmp_path):
        """A section written by a newer version survives our merge-write
        verbatim (forward compatibility)."""
        from repro.lattice.persist import (
            CACHE_FILENAME,
            CACHE_SCHEMA,
            CACHE_VERSION,
            save_caches,
        )
        from repro.lattice.points import FootprintTable, LatticeCountCache

        doc = {
            "schema": CACHE_SCHEMA,
            "version": CACHE_VERSION,
            "caches": {"future_cache": [["some-key", {"v": [1, 2]}]]},
        }
        (tmp_path / CACHE_FILENAME).write_text(json.dumps(doc))
        ft, lc = FootprintTable(), LatticeCountCache()
        ft.lookup([2], [4])
        save_caches(
            tmp_path, footprint_table=ft, lattice_cache=lc, plan_cache=PlanCache()
        )
        data = json.loads((tmp_path / CACHE_FILENAME).read_text())
        assert data["caches"]["future_cache"] == [["some-key", {"v": [1, 2]}]]
        assert "plan_cache" in data["caches"]


class TestFaultSelfTest:
    def test_plan_fault_is_scoped(self):
        from repro.check.harness import inject_fault
        from repro.core import plan as _plan

        orig = _plan.instantiate_plan
        with inject_fault("plan"):
            assert _plan.instantiate_plan is not orig
        assert _plan.instantiate_plan is orig

    def test_plan_fault_breaks_parity(self):
        from repro.check.harness import inject_fault

        nest, uisets = _classify(STENCIL.format(n=16))
        numeric = optimize_rectangular(uisets, nest.space, 4, scoring="theorem4")
        with inject_fault("plan"):
            planned = plan_optimize(uisets, nest.space, 4, cache=PlanCache())
            assert planned is not None
            assert planned.predicted_cost != numeric.predicted_cost

    def test_check_detects_plan_fault(self):
        from repro.check.harness import CheckConfig, run_check

        report = run_check(
            cases=5, seed=0, fault="plan", config=CheckConfig(shrink_budget=30)
        )
        assert report["failed"] >= 1
        assert any(
            f["invariant"] == "plan-parity" for f in report["failures"]
        )


class TestDefaultCacheHygiene:
    def test_spread_fault_clears_default_plan_cache(self):
        """Faulted solve payloads must never leak out of the faulted
        region into the process-wide default cache."""
        from repro.check.harness import inject_fault

        nest, uisets = _classify(STENCIL.format(n=16))
        with inject_fault("spread"):
            plan_optimize(uisets, nest.space, 4, cache=DEFAULT_PLAN_CACHE)
            assert len(DEFAULT_PLAN_CACHE) >= 1
        assert len(DEFAULT_PLAN_CACHE) == 0
